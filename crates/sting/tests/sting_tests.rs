//! End-to-end Sting tests over an in-process Swarm cluster: POSIX-ish
//! semantics, crash recovery, cleaner integration, model equivalence.

use std::sync::Arc;

use parking_lot::Mutex;
use rand::{rngs::StdRng, Rng, SeedableRng};
use sting::{StingConfig, StingError, StingFs, StingService};
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_services::{Service, ServiceStack};
use swarm_types::{ClientId, ServerId, ServiceId};

const STING_SVC: ServiceId = ServiceId::new(2);

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn log_config(servers: u32) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(64 * 1024)
}

fn sting_config() -> StingConfig {
    StingConfig {
        service: STING_SVC,
        block_size: 4096,
        cache_blocks: 64,
    }
}

fn fresh_fs(transport: Arc<MemTransport>, servers: u32) -> Arc<StingFs> {
    let log = Arc::new(Log::create(transport, log_config(servers)).unwrap());
    StingFs::format(log, sting_config()).unwrap()
}

/// Recover a Sting instance after a "crash" (previous instance dropped).
fn recover_fs(transport: Arc<MemTransport>, servers: u32) -> Arc<StingFs> {
    let (log, replay) = recover(transport, log_config(servers), &[STING_SVC]).unwrap();
    let fs = StingFs::bare(Arc::new(log), sting_config());
    let mut svc = StingService::new(fs.clone());
    if let Some(data) = replay.checkpoint_data(STING_SVC) {
        svc.restore_checkpoint(data).unwrap();
    }
    for e in replay.records_for(STING_SVC) {
        svc.replay(e).unwrap();
    }
    fs
}

// ---------------------------------------------------------------------
// Basic POSIX-ish semantics
// ---------------------------------------------------------------------

#[test]
fn create_write_read_roundtrip() {
    let fs = fresh_fs(cluster(3), 3);
    fs.write_file("/hello.txt", 0, b"hello swarm").unwrap();
    assert_eq!(fs.read_to_end("/hello.txt").unwrap(), b"hello swarm");
    let st = fs.stat("/hello.txt").unwrap();
    assert_eq!(st.size, 11);
    assert!(!st.is_dir);
    assert_eq!(st.nlink, 1);
}

#[test]
fn multi_block_files_and_partial_overwrites() {
    let fs = fresh_fs(cluster(3), 3);
    let data: Vec<u8> = (0..20_000u32).map(|i| (i % 251) as u8).collect();
    fs.write_file("/big", 0, &data).unwrap();
    assert_eq!(fs.read_to_end("/big").unwrap(), data);

    // Overwrite a range spanning block boundaries.
    let patch = vec![0xffu8; 5000];
    fs.write_file("/big", 3000, &patch).unwrap();
    let mut expect = data.clone();
    expect[3000..8000].copy_from_slice(&patch);
    assert_eq!(fs.read_to_end("/big").unwrap(), expect);

    // Append past the end.
    fs.write_file("/big", 20_000, b"tail").unwrap();
    assert_eq!(fs.stat("/big").unwrap().size, 20_004);
    assert_eq!(fs.read_file("/big", 19_998, 10).unwrap(), {
        let mut v = expect[19_998..].to_vec();
        v.extend_from_slice(b"tail");
        v
    });
}

#[test]
fn sparse_files_read_zeros_in_holes() {
    let fs = fresh_fs(cluster(2), 2);
    fs.create("/sparse").unwrap();
    fs.write_file("/sparse", 100_000, b"far out").unwrap();
    let st = fs.stat("/sparse").unwrap();
    assert_eq!(st.size, 100_007);
    // Hole reads as zeros.
    assert_eq!(fs.read_file("/sparse", 50_000, 16).unwrap(), vec![0u8; 16]);
    assert_eq!(fs.read_file("/sparse", 100_000, 7).unwrap(), b"far out");
    // Far fewer blocks mapped than the size implies.
    assert!(
        st.blocks < 5,
        "sparse file materialized {} blocks",
        st.blocks
    );
}

#[test]
fn directories_nest_and_list() {
    let fs = fresh_fs(cluster(2), 2);
    fs.mkdir("/a").unwrap();
    fs.mkdir("/a/b").unwrap();
    fs.write_file("/a/b/c.txt", 0, b"x").unwrap();
    fs.write_file("/a/top.txt", 0, b"y").unwrap();
    let mut names: Vec<String> = fs
        .readdir("/a")
        .unwrap()
        .into_iter()
        .map(|e| e.name)
        .collect();
    names.sort();
    assert_eq!(names, vec!["b", "top.txt"]);
    let entries = fs.readdir("/a/b").unwrap();
    assert_eq!(entries.len(), 1);
    assert!(!entries[0].is_dir);
    assert!(fs.stat("/a/b").unwrap().is_dir);
}

#[test]
fn error_paths() {
    let fs = fresh_fs(cluster(2), 2);
    fs.mkdir("/d").unwrap();
    fs.write_file("/f", 0, b"data").unwrap();

    assert!(matches!(fs.stat("/nope"), Err(StingError::NotFound(_))));
    assert!(matches!(fs.mkdir("/d"), Err(StingError::AlreadyExists(_))));
    assert!(matches!(fs.create("/f"), Err(StingError::AlreadyExists(_))));
    assert!(matches!(
        fs.readdir("/f"),
        Err(StingError::NotADirectory(_))
    ));
    assert!(matches!(
        fs.read_file("/d", 0, 1),
        Err(StingError::IsADirectory(_))
    ));
    assert!(matches!(fs.unlink("/d"), Err(StingError::IsADirectory(_))));
    assert!(matches!(fs.rmdir("/f"), Err(StingError::NotADirectory(_))));
    assert!(matches!(
        fs.stat("relative"),
        Err(StingError::InvalidPath(_))
    ));
    assert!(matches!(
        fs.stat("/a/../b"),
        Err(StingError::InvalidPath(_))
    ));
    fs.write_file("/d/x", 0, b"1").unwrap();
    assert!(matches!(
        fs.rmdir("/d"),
        Err(StingError::DirectoryNotEmpty(_))
    ));
}

#[test]
fn unlink_and_rmdir() {
    let fs = fresh_fs(cluster(2), 2);
    fs.mkdir("/dir").unwrap();
    fs.write_file("/dir/f", 0, b"bye").unwrap();
    fs.unlink("/dir/f").unwrap();
    assert!(!fs.exists("/dir/f"));
    fs.rmdir("/dir").unwrap();
    assert!(!fs.exists("/dir"));
    // Inodes are actually reclaimed.
    assert_eq!(fs.inode_count(), 1, "only root remains");
}

#[test]
fn hard_links_share_content_and_nlink() {
    let fs = fresh_fs(cluster(2), 2);
    fs.write_file("/orig", 0, b"shared bytes").unwrap();
    fs.link("/orig", "/alias").unwrap();
    assert_eq!(fs.stat("/orig").unwrap().nlink, 2);
    assert_eq!(
        fs.stat("/orig").unwrap().ino,
        fs.stat("/alias").unwrap().ino
    );
    assert_eq!(fs.read_to_end("/alias").unwrap(), b"shared bytes");
    // Writing through one name is visible through the other.
    fs.write_file("/alias", 0, b"SHARED").unwrap();
    assert_eq!(&fs.read_to_end("/orig").unwrap()[..6], b"SHARED");
    // Dropping one link keeps the file.
    fs.unlink("/orig").unwrap();
    assert_eq!(fs.stat("/alias").unwrap().nlink, 1);
    assert_eq!(&fs.read_to_end("/alias").unwrap()[..6], b"SHARED");
}

#[test]
fn rename_moves_and_replaces() {
    let fs = fresh_fs(cluster(2), 2);
    fs.mkdir("/src").unwrap();
    fs.mkdir("/dst").unwrap();
    fs.write_file("/src/f", 0, b"payload").unwrap();
    fs.rename("/src/f", "/dst/g").unwrap();
    assert!(!fs.exists("/src/f"));
    assert_eq!(fs.read_to_end("/dst/g").unwrap(), b"payload");

    // Replacing an existing file.
    fs.write_file("/dst/h", 0, b"old target").unwrap();
    fs.rename("/dst/g", "/dst/h").unwrap();
    assert_eq!(fs.read_to_end("/dst/h").unwrap(), b"payload");
    assert!(!fs.exists("/dst/g"));

    // Moving a directory updates nlink bookkeeping.
    fs.mkdir("/src/sub").unwrap();
    let src_nlink = fs.stat("/src").unwrap().nlink;
    fs.rename("/src/sub", "/dst/sub").unwrap();
    assert_eq!(fs.stat("/src").unwrap().nlink, src_nlink - 1);
    assert!(fs.stat("/dst/sub").unwrap().is_dir);

    // Cannot move a directory into itself.
    fs.mkdir("/tree").unwrap();
    fs.mkdir("/tree/inner").unwrap();
    assert!(matches!(
        fs.rename("/tree", "/tree/inner/evil"),
        Err(StingError::InvalidPath(_))
    ));
}

#[test]
fn truncate_shrinks_and_extends() {
    let fs = fresh_fs(cluster(2), 2);
    let data: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    fs.write_file("/t", 0, &data).unwrap();
    fs.truncate("/t", 6000).unwrap();
    assert_eq!(fs.stat("/t").unwrap().size, 6000);
    assert_eq!(fs.read_to_end("/t").unwrap(), &data[..6000]);
    // Re-extension reads zeros past the old cut, per POSIX.
    fs.truncate("/t", 9000).unwrap();
    let got = fs.read_to_end("/t").unwrap();
    assert_eq!(&got[..6000], &data[..6000]);
    assert!(
        got[6000..].iter().all(|&b| b == 0),
        "re-extended tail must be zeros"
    );
    // Truncate to zero drops all blocks.
    fs.truncate("/t", 0).unwrap();
    assert_eq!(fs.stat("/t").unwrap().blocks, 0);
    assert!(fs.read_to_end("/t").unwrap().is_empty());
}

// ---------------------------------------------------------------------
// Crash recovery
// ---------------------------------------------------------------------

#[test]
fn recovery_from_unmount_restores_everything() {
    let transport = cluster(3);
    {
        let fs = fresh_fs(transport.clone(), 3);
        fs.mkdir("/home").unwrap();
        fs.write_file("/home/a", 0, b"alpha").unwrap();
        fs.write_file("/home/b", 0, &vec![7u8; 9000]).unwrap();
        fs.unmount().unwrap();
    }
    let fs = recover_fs(transport, 3);
    assert_eq!(fs.read_to_end("/home/a").unwrap(), b"alpha");
    assert_eq!(fs.read_to_end("/home/b").unwrap(), vec![7u8; 9000]);
}

#[test]
fn recovery_replays_operations_after_checkpoint() {
    let transport = cluster(3);
    {
        let fs = fresh_fs(transport.clone(), 3);
        fs.write_file("/before", 0, b"pre-ckpt").unwrap();
        fs.checkpoint().unwrap();
        // Post-checkpoint operations, then crash without checkpoint.
        fs.write_file("/after", 0, b"post-ckpt").unwrap();
        fs.mkdir("/newdir").unwrap();
        fs.rename("/before", "/newdir/moved").unwrap();
        fs.write_file("/after", 4, b"-PATCHED").unwrap();
        fs.flush().unwrap(); // data reaches the servers, no checkpoint
    }
    let fs = recover_fs(transport, 3);
    assert_eq!(fs.read_to_end("/newdir/moved").unwrap(), b"pre-ckpt");
    assert_eq!(fs.read_to_end("/after").unwrap(), b"post-PATCHED");
    assert!(!fs.exists("/before"));
}

#[test]
fn recovery_discards_unflushed_tail() {
    let transport = cluster(3);
    {
        let fs = fresh_fs(transport.clone(), 3);
        fs.write_file("/durable", 0, b"flushed").unwrap();
        fs.flush().unwrap();
        // These never reach the servers: crash before flush.
        fs.write_file("/lost", 0, b"never flushed").unwrap();
    }
    let fs = recover_fs(transport, 3);
    assert_eq!(fs.read_to_end("/durable").unwrap(), b"flushed");
    assert!(!fs.exists("/lost"), "unflushed file must not survive");
}

#[test]
fn recovery_with_a_failed_server_reconstructs_file_data() {
    let transport = cluster(4);
    {
        let fs = fresh_fs(transport.clone(), 4);
        fs.write_file("/precious", 0, &vec![0xabu8; 30_000])
            .unwrap();
        fs.unmount().unwrap();
    }
    transport.set_down(ServerId::new(2), true);
    let fs = recover_fs(transport, 4);
    assert_eq!(
        fs.read_to_end("/precious").unwrap(),
        vec![0xabu8; 30_000],
        "file readable via parity reconstruction"
    );
}

#[test]
fn repeated_crash_recovery_cycles_converge() {
    let transport = cluster(3);
    {
        let fs = fresh_fs(transport.clone(), 3);
        fs.write_file("/f", 0, b"v1").unwrap();
        fs.flush().unwrap();
    }
    for i in 0..3 {
        let fs = recover_fs(transport.clone(), 3);
        let content = fs.read_to_end("/f").unwrap();
        assert_eq!(content, format!("v{}", i + 1).as_bytes());
        fs.write_file("/f", 1, format!("{}", i + 2).as_bytes())
            .unwrap();
        if i % 2 == 0 {
            fs.checkpoint().unwrap();
        }
        fs.flush().unwrap();
    }
    let fs = recover_fs(transport, 3);
    assert_eq!(fs.read_to_end("/f").unwrap(), b"v4");
}

// ---------------------------------------------------------------------
// Cleaner integration
// ---------------------------------------------------------------------

#[test]
fn cleaning_under_a_live_file_system_preserves_contents() {
    let transport = cluster(3);
    let log = Arc::new(Log::create(transport, log_config(3)).unwrap());
    let fs = StingFs::format(log.clone(), sting_config()).unwrap();

    // Churn: write files, overwrite half, delete a third. `expected`
    // mirrors what each surviving file must contain.
    let mut rng = StdRng::seed_from_u64(11);
    let mut expected: std::collections::BTreeMap<String, Vec<u8>> = Default::default();
    for i in 0..30 {
        let len = rng.gen_range(1000..20_000);
        let byte = (i % 251) as u8;
        let path = format!("/f{i}");
        fs.write_file(&path, 0, &vec![byte; len]).unwrap();
        expected.insert(path, vec![byte; len]);
    }
    for i in (0..30).step_by(2) {
        let len = rng.gen_range(1000..10_000);
        let path = format!("/f{i}");
        fs.write_file(&path, 0, &vec![0xee; len]).unwrap();
        let f = expected.get_mut(&path).unwrap();
        let covered = len.min(f.len());
        f[..covered].copy_from_slice(&vec![0xee; covered]);
        if len > f.len() {
            f.resize(len, 0xee);
        }
    }
    for i in (0..30).step_by(3) {
        let path = format!("/f{i}");
        fs.unlink(&path).unwrap();
        expected.remove(&path);
    }
    fs.unmount().unwrap();

    let mut stack = ServiceStack::new();
    let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
    stack.register(svc).unwrap();
    let cleaner = Cleaner::new(log.clone(), Arc::new(stack), CleanPolicy::CostBenefit);
    let stats = cleaner.clean_pass(1000).unwrap();
    assert!(
        stats.stripes_cleaned > 0,
        "churn must leave cleanable stripes: {stats:?}"
    );

    // Every surviving file reads back correctly after cleaning.
    for i in 0..30 {
        let path = format!("/f{i}");
        match expected.get(&path) {
            None => assert!(!fs.exists(&path), "{path} should be gone"),
            Some(want) => {
                let data = fs.read_to_end(&path).unwrap();
                assert_eq!(&data, want, "{path} content after cleaning");
            }
        }
    }

    // And the cleaned state survives a crash.
    fs.unmount().unwrap();
}

// ---------------------------------------------------------------------
// Model equivalence under random operations
// ---------------------------------------------------------------------

/// A trivial in-memory reference file system.
#[derive(Default)]
struct ModelFs {
    files: std::collections::BTreeMap<String, Vec<u8>>,
}

impl ModelFs {
    fn write(&mut self, path: &str, offset: usize, data: &[u8]) {
        let f = self.files.entry(path.to_string()).or_default();
        if f.len() < offset + data.len() {
            f.resize(offset + data.len(), 0);
        }
        f[offset..offset + data.len()].copy_from_slice(data);
    }

    fn truncate(&mut self, path: &str, size: usize) {
        if let Some(f) = self.files.get_mut(path) {
            f.resize(size, 0);
        }
    }
}

#[test]
fn random_ops_match_reference_model_across_a_crash() {
    let transport = cluster(3);
    let mut model = ModelFs::default();
    let mut rng = StdRng::seed_from_u64(1234);
    let paths: Vec<String> = (0..8).map(|i| format!("/file{i}")).collect();

    {
        let fs = fresh_fs(transport.clone(), 3);
        for step in 0..200 {
            let path = &paths[rng.gen_range(0..paths.len())];
            match rng.gen_range(0..10) {
                0..=5 => {
                    let offset = rng.gen_range(0..30_000);
                    let len = rng.gen_range(1..6000);
                    let byte = rng.gen::<u8>();
                    let data = vec![byte; len];
                    fs.write_file(path, offset as u64, &data).unwrap();
                    model.write(path, offset, &data);
                }
                6..=7 => {
                    if model.files.contains_key(path) {
                        let size = rng.gen_range(0..20_000);
                        fs.truncate(path, size as u64).unwrap();
                        model.truncate(path, size);
                    }
                }
                8 => {
                    if model.files.contains_key(path) {
                        fs.unlink(path).unwrap();
                        model.files.remove(path);
                    }
                }
                _ => {
                    if step % 3 == 0 {
                        fs.checkpoint().unwrap();
                    }
                }
            }
        }
        fs.flush().unwrap(); // crash after flush, maybe long after a checkpoint
    }

    let fs = recover_fs(transport, 3);
    for path in &paths {
        match model.files.get(path) {
            None => assert!(!fs.exists(path), "{path} should not exist"),
            Some(expect) => {
                let got = fs.read_to_end(path).unwrap();
                assert_eq!(&got, expect, "content mismatch for {path}");
            }
        }
    }
}

#[test]
fn cache_serves_repeated_reads() {
    let fs = fresh_fs(cluster(2), 2);
    fs.write_file("/hot", 0, &vec![1u8; 8192]).unwrap();
    fs.flush().unwrap();
    for _ in 0..50 {
        fs.read_to_end("/hot").unwrap();
    }
    let (hits, misses) = fs.cache_stats();
    assert!(
        hits > misses * 10,
        "cache must absorb re-reads: {hits} hits / {misses} misses"
    );
}
