//! Handle-based file I/O: the `open`/`read`/`write`/`seek` face of the
//! "standard UNIX file system interface" the paper promises (§3.1),
//! layered over the path-based core.
//!
//! Handles follow the UNIX model where it matters for a local FS:
//! per-handle cursors, `O_APPEND`-style append mode, truncate-on-open,
//! and the classic "unlinked but open" behaviour *approximated* as:
//! the handle stays usable for reads of already-written data while the
//! inode survives (Sting drops inodes at nlink 0, so handle I/O after
//! unlink reports [`StingError::BadHandle`] — documented divergence).

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::{StingError, StingResult};
use crate::fs::StingFs;

/// Options controlling [`StingFs::open`]-style behaviour.
#[derive(Debug, Clone, Copy, Default)]
pub struct OpenOptions {
    /// Create the file if it does not exist.
    pub create: bool,
    /// Truncate to zero length on open.
    pub truncate: bool,
    /// Every write goes to the end of the file, ignoring the cursor.
    pub append: bool,
}

impl OpenOptions {
    /// Read/write an existing file.
    pub fn new() -> OpenOptions {
        OpenOptions::default()
    }

    /// Sets create-if-missing.
    pub fn create(mut self, yes: bool) -> OpenOptions {
        self.create = yes;
        self
    }

    /// Sets truncate-on-open.
    pub fn truncate(mut self, yes: bool) -> OpenOptions {
        self.truncate = yes;
        self
    }

    /// Sets append mode.
    pub fn append(mut self, yes: bool) -> OpenOptions {
        self.append = yes;
        self
    }
}

/// An open file: a cursor over an inode.
pub struct File {
    fs: Arc<StingFs>,
    ino: u64,
    pos: Mutex<u64>,
    append: bool,
}

impl std::fmt::Debug for File {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("File")
            .field("ino", &self.ino)
            .field("pos", &*self.pos.lock())
            .field("append", &self.append)
            .finish()
    }
}

/// Where a [`File::seek`] is measured from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Whence {
    /// From the start of the file.
    Start(u64),
    /// Relative to the current cursor.
    Current(i64),
    /// Relative to the end of the file.
    End(i64),
}

impl File {
    pub(crate) fn open_at(fs: Arc<StingFs>, path: &str, options: OpenOptions) -> StingResult<File> {
        if options.create && !fs.exists(path) {
            fs.create(path)?;
        }
        let st = fs.stat(path)?;
        if st.is_dir {
            return Err(StingError::IsADirectory(path.into()));
        }
        if options.truncate {
            fs.truncate(path, 0)?;
        }
        Ok(File {
            fs,
            ino: st.ino,
            pos: Mutex::new(0),
            append: options.append,
        })
    }

    /// The inode this handle refers to.
    pub fn ino(&self) -> u64 {
        self.ino
    }

    /// Current cursor position.
    pub fn position(&self) -> u64 {
        *self.pos.lock()
    }

    /// Current file size.
    ///
    /// # Errors
    ///
    /// [`StingError::BadHandle`] if the inode no longer exists.
    pub fn len(&self) -> StingResult<u64> {
        self.fs.ino_size(self.ino)
    }

    /// `true` if the file is empty.
    ///
    /// # Errors
    ///
    /// As [`File::len`].
    pub fn is_empty(&self) -> StingResult<bool> {
        Ok(self.len()? == 0)
    }

    /// Reads up to `len` bytes at the cursor, advancing it. Returns fewer
    /// bytes at EOF, empty at/after EOF.
    ///
    /// # Errors
    ///
    /// [`StingError::BadHandle`] and storage errors.
    pub fn read(&self, len: usize) -> StingResult<Vec<u8>> {
        let mut pos = self.pos.lock();
        let data = self.fs.read_ino(self.ino, *pos, len)?;
        *pos += data.len() as u64;
        Ok(data)
    }

    /// Reads `len` bytes at `offset` without touching the cursor.
    ///
    /// # Errors
    ///
    /// As [`File::read`].
    pub fn read_at(&self, offset: u64, len: usize) -> StingResult<Vec<u8>> {
        self.fs.read_ino(self.ino, offset, len)
    }

    /// Writes at the cursor (or at EOF in append mode), advancing the
    /// cursor past the written bytes.
    ///
    /// # Errors
    ///
    /// As [`File::read`] plus [`StingError::FileTooLarge`].
    pub fn write(&self, data: &[u8]) -> StingResult<usize> {
        let mut pos = self.pos.lock();
        let at = if self.append {
            self.fs.ino_size(self.ino)?
        } else {
            *pos
        };
        let n = self.fs.write_ino(self.ino, at, data)?;
        *pos = at + n as u64;
        Ok(n)
    }

    /// Writes at `offset` without touching the cursor.
    ///
    /// # Errors
    ///
    /// As [`File::write`].
    pub fn write_at(&self, offset: u64, data: &[u8]) -> StingResult<usize> {
        self.fs.write_ino(self.ino, offset, data)
    }

    /// Moves the cursor; returns the new position.
    ///
    /// # Errors
    ///
    /// [`StingError::InvalidPath`] if the resulting position would be
    /// negative, [`StingError::BadHandle`] for `End` on a dead inode.
    pub fn seek(&self, whence: Whence) -> StingResult<u64> {
        let mut pos = self.pos.lock();
        let new = match whence {
            Whence::Start(n) => n as i128,
            Whence::Current(d) => *pos as i128 + d as i128,
            Whence::End(d) => self.fs.ino_size(self.ino)? as i128 + d as i128,
        };
        if new < 0 {
            return Err(StingError::InvalidPath(format!(
                "seek to negative position {new}"
            )));
        }
        *pos = new as u64;
        Ok(*pos)
    }

    /// Flushes the whole file system's pending writes (Sting shares one
    /// log; `fsync` granularity is the client, as in the prototype).
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn sync(&self) -> StingResult<()> {
        self.fs.flush()
    }
}

impl std::io::Read for File {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        let data = File::read(self, buf.len()).map_err(|e| std::io::Error::other(e.to_string()))?;
        buf[..data.len()].copy_from_slice(&data);
        Ok(data.len())
    }
}

impl std::io::Write for File {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        File::write(self, buf).map_err(|e| std::io::Error::other(e.to_string()))
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.sync()
            .map_err(|e| std::io::Error::other(e.to_string()))
    }
}

impl std::io::Seek for File {
    fn seek(&mut self, pos: std::io::SeekFrom) -> std::io::Result<u64> {
        let whence = match pos {
            std::io::SeekFrom::Start(n) => Whence::Start(n),
            std::io::SeekFrom::Current(d) => Whence::Current(d),
            std::io::SeekFrom::End(d) => Whence::End(d),
        };
        File::seek(self, whence)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidInput, e.to_string()))
    }
}

impl StingFs {
    /// Opens a file with [`OpenOptions`].
    ///
    /// # Errors
    ///
    /// [`StingError::NotFound`] unless `create` is set, plus the usual
    /// path errors.
    pub fn open(self: &Arc<Self>, path: &str, options: OpenOptions) -> StingResult<File> {
        File::open_at(self.clone(), path, options)
    }

    /// Size of an inode (handle support).
    pub(crate) fn ino_size(&self, ino: u64) -> StingResult<u64> {
        let inner = self.inner.lock();
        inner
            .inodes
            .get(&ino)
            .map(|n| n.size)
            .ok_or(StingError::BadHandle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_log::{Log, LogConfig};
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ClientId, ServerId};

    fn fs() -> Arc<StingFs> {
        let transport = Arc::new(MemTransport::new());
        for i in 0..2 {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv);
        }
        let config = LogConfig::new(ClientId::new(1), vec![ServerId::new(0), ServerId::new(1)])
            .unwrap()
            .fragment_size(16 * 1024);
        let log = Arc::new(Log::create(transport, config).unwrap());
        StingFs::format(log, crate::fs::StingConfig::default()).unwrap()
    }

    #[test]
    fn cursor_read_write_roundtrip() {
        let fs = fs();
        let f = fs.open("/cursor", OpenOptions::new().create(true)).unwrap();
        assert_eq!(f.write(b"hello ").unwrap(), 6);
        assert_eq!(f.write(b"world").unwrap(), 5);
        assert_eq!(f.position(), 11);
        f.seek(Whence::Start(0)).unwrap();
        assert_eq!(f.read(5).unwrap(), b"hello");
        assert_eq!(f.read(100).unwrap(), b" world");
        assert!(f.read(10).unwrap().is_empty(), "EOF");
    }

    #[test]
    fn append_mode_ignores_cursor() {
        let fs = fs();
        let f = fs
            .open("/log.txt", OpenOptions::new().create(true).append(true))
            .unwrap();
        f.write(b"line1\n").unwrap();
        f.seek(Whence::Start(0)).unwrap();
        f.write(b"line2\n").unwrap(); // still appends
        assert_eq!(fs.read_to_end("/log.txt").unwrap(), b"line1\nline2\n");
    }

    #[test]
    fn truncate_on_open() {
        let fs = fs();
        fs.write_file("/t", 0, b"old content").unwrap();
        let f = fs.open("/t", OpenOptions::new().truncate(true)).unwrap();
        assert_eq!(f.len().unwrap(), 0);
        f.write(b"new").unwrap();
        assert_eq!(fs.read_to_end("/t").unwrap(), b"new");
    }

    #[test]
    fn seek_semantics() {
        let fs = fs();
        let f = fs.open("/s", OpenOptions::new().create(true)).unwrap();
        f.write(&[1u8; 100]).unwrap();
        assert_eq!(f.seek(Whence::End(-10)).unwrap(), 90);
        assert_eq!(f.read(100).unwrap().len(), 10);
        assert_eq!(f.seek(Whence::Current(-5)).unwrap(), 95);
        assert!(f.seek(Whence::Current(-1000)).is_err());
        // Seek past EOF then write: creates a hole that reads as zeros.
        f.seek(Whence::Start(200)).unwrap();
        f.write(b"x").unwrap();
        let data = fs.read_to_end("/s").unwrap();
        assert_eq!(data.len(), 201);
        assert!(data[100..200].iter().all(|&b| b == 0));
    }

    #[test]
    fn two_handles_share_one_file() {
        let fs = fs();
        let a = fs.open("/shared", OpenOptions::new().create(true)).unwrap();
        let b = fs.open("/shared", OpenOptions::new()).unwrap();
        a.write(b"written by a").unwrap();
        assert_eq!(b.read(12).unwrap(), b"written by a");
        // Independent cursors.
        assert_eq!(a.position(), 12);
        assert_eq!(b.position(), 12);
        b.seek(Whence::Start(0)).unwrap();
        assert_eq!(a.position(), 12, "a's cursor untouched");
    }

    #[test]
    fn handle_after_unlink_is_bad() {
        // Documented divergence from POSIX: Sting reclaims the inode at
        // unlink, so the handle dies with it.
        let fs = fs();
        let f = fs.open("/gone", OpenOptions::new().create(true)).unwrap();
        f.write(b"data").unwrap();
        fs.unlink("/gone").unwrap();
        assert!(matches!(f.read_at(0, 4), Err(StingError::BadHandle)));
        assert!(matches!(f.write(b"x"), Err(StingError::BadHandle)));
    }

    #[test]
    fn std_io_traits_work() {
        use std::io::{Read, Seek, SeekFrom, Write};
        let fs = fs();
        let mut f = fs.open("/io", OpenOptions::new().create(true)).unwrap();
        // Generic std::io code drives a Sting file directly.
        writeln!(f, "line one").unwrap();
        writeln!(f, "line two").unwrap();
        Seek::seek(&mut f, SeekFrom::Start(0)).unwrap();
        let mut text = String::new();
        f.read_to_string(&mut text).unwrap();
        assert_eq!(text, "line one\nline two\n");
        // io::copy between two Sting files.
        Seek::seek(&mut f, SeekFrom::Start(0)).unwrap();
        let mut dst = fs.open("/copy", OpenOptions::new().create(true)).unwrap();
        std::io::copy(&mut f, &mut dst).unwrap();
        assert_eq!(fs.read_to_end("/copy").unwrap(), text.as_bytes());
    }

    #[test]
    fn opening_a_directory_fails() {
        let fs = fs();
        fs.mkdir("/dir").unwrap();
        assert!(matches!(
            fs.open("/dir", OpenOptions::new()),
            Err(StingError::IsADirectory(_))
        ));
    }

    #[test]
    fn open_without_create_requires_existence() {
        let fs = fs();
        assert!(matches!(
            fs.open("/missing", OpenOptions::new()),
            Err(StingError::NotFound(_))
        ));
    }
}
