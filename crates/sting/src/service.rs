//! Sting's [`Service`] adapter: crash replay and cleaner integration.

use std::sync::Arc;

use swarm_log::{Entry, Log, ReplayEntry};
use swarm_services::Service;
use swarm_types::{BlockAddr, ByteReader, Decode, Result, ServiceId, SwarmError};

use crate::fs::{
    apply_link, apply_mknod, apply_rename, apply_rmdir, apply_setsize, apply_unlink,
    parse_create_info, record, StingFs,
};
use crate::inode::InodeKind;

/// Registers a [`StingFs`] with the service stack so the log layer's
/// recovery and the cleaner's block moves reach it.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use parking_lot::Mutex;
/// use sting::{StingConfig, StingFs, StingService};
/// use swarm_services::{Service, ServiceStack};
///
/// # fn log() -> Arc<swarm_log::Log> { unimplemented!() }
/// let fs = StingFs::format(log(), StingConfig::default())?;
/// let mut stack = ServiceStack::new();
/// let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
/// stack.register(svc)?;
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub struct StingService {
    fs: Arc<StingFs>,
}

impl StingService {
    /// Wraps a file system for stack registration.
    pub fn new(fs: Arc<StingFs>) -> StingService {
        StingService { fs }
    }

    /// The wrapped file system.
    pub fn fs(&self) -> &Arc<StingFs> {
        &self.fs
    }
}

impl Service for StingService {
    fn id(&self) -> ServiceId {
        self.fs.service()
    }

    fn name(&self) -> &str {
        "sting"
    }

    fn restore_checkpoint(&mut self, data: &[u8]) -> Result<()> {
        self.fs
            .load_checkpoint(data)
            .map_err(|e| SwarmError::corrupt(format!("sting checkpoint: {e}")))
    }

    fn replay(&mut self, entry: &ReplayEntry) -> Result<()> {
        match &entry.entry {
            Entry::Record { kind, data, .. } => replay_record(&self.fs, *kind, data),
            Entry::Block { create, .. } => {
                let Some((ino, idx)) = parse_create_info(create) else {
                    return Err(SwarmError::corrupt("sting block creation record malformed"));
                };
                let addr = entry
                    .block_addr
                    .ok_or_else(|| SwarmError::corrupt("block entry without address"))?;
                let mut inner = self.fs.inner.lock();
                if let Some(node) = inner.inodes.get_mut(&ino) {
                    if let InodeKind::File { blocks } = &mut node.kind {
                        if blocks.len() <= idx as usize {
                            blocks.resize(idx as usize + 1, None);
                        }
                        blocks[idx as usize] = Some(addr);
                    }
                }
                // Unknown inode: the file was unlinked by a later record;
                // the mapping would be dropped anyway.
                Ok(())
            }
            // Delete entries carry no (ino, idx); every state change they
            // imply is also expressed by a Block/SETSIZE/UNLINK record
            // that replays, so they are safely ignored here.
            Entry::Delete { .. } => Ok(()),
            Entry::Checkpoint { .. } => Err(SwarmError::corrupt("checkpoint routed to replay")),
        }
    }

    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
        let Some((ino, idx)) = parse_create_info(create) else {
            return Err(SwarmError::corrupt("sting block creation record malformed"));
        };
        self.fs.reader.invalidate(old);
        let mut inner = self.fs.inner.lock();
        if let Some(node) = inner.inodes.get_mut(&ino) {
            if let InodeKind::File { blocks } = &mut node.kind {
                if let Some(slot) = blocks.get_mut(idx as usize) {
                    if *slot == Some(old) {
                        *slot = Some(new);
                    }
                }
            }
        }
        // A stale move (block overwritten since the cleaner scanned) is a
        // no-op — the moved copy is already dead.
        Ok(())
    }

    fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
        let payload = self.fs.encode_checkpoint();
        log.checkpoint(self.fs.service(), &payload)?;
        Ok(())
    }
}

fn replay_record(fs: &StingFs, kind: u16, data: &[u8]) -> Result<()> {
    let mut r = ByteReader::new(data);
    let mut inner = fs.inner.lock();
    match kind {
        record::MKNOD => {
            let parent = r.get_u64()?;
            let name = r.get_str()?;
            let ino = r.get_u64()?;
            let is_dir = r.get_bool()?;
            let mtime = r.get_u64()?;
            apply_mknod(&mut inner, parent, &name, ino, is_dir, mtime);
        }
        record::UNLINK => {
            let parent = r.get_u64()?;
            let name = r.get_str()?;
            let ino = r.get_u64()?;
            let mtime = r.get_u64()?;
            apply_unlink(&mut inner, parent, &name, ino, mtime);
        }
        record::RMDIR => {
            let parent = r.get_u64()?;
            let name = r.get_str()?;
            let ino = r.get_u64()?;
            let mtime = r.get_u64()?;
            apply_rmdir(&mut inner, parent, &name, ino, mtime);
        }
        record::SETSIZE => {
            let ino = r.get_u64()?;
            let size = r.get_u64()?;
            let mtime = r.get_u64()?;
            apply_setsize(&mut inner, ino, size, mtime, fs.block_size());
        }
        record::RENAME => {
            let sparent = r.get_u64()?;
            let sname = r.get_str()?;
            let dparent = r.get_u64()?;
            let dname = r.get_str()?;
            let ino = r.get_u64()?;
            let replaced = Option::<u64>::decode(&mut r)?;
            let mtime = r.get_u64()?;
            apply_rename(
                &mut inner, sparent, &sname, dparent, &dname, ino, replaced, mtime,
            );
        }
        record::LINK => {
            let parent = r.get_u64()?;
            let name = r.get_str()?;
            let ino = r.get_u64()?;
            let mtime = r.get_u64()?;
            apply_link(&mut inner, parent, &name, ino, mtime);
        }
        other => {
            return Err(SwarmError::corrupt(format!(
                "unknown sting record kind {other}"
            )))
        }
    }
    Ok(())
}
