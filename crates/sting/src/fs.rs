//! The Sting file system proper.
//!
//! All metadata is memory-resident; every mutating operation appends one
//! record to the Swarm log before it completes, so the entire file system
//! can be rebuilt after a crash by restoring the newest checkpoint and
//! replaying records in order. File data goes into ordinary log blocks,
//! one per 4 KB file block, each tagged with `(inode, block index)` so
//! replay and cleaner moves can patch the block map.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_log::Log;
use swarm_services::CachingReader;
use swarm_types::{BlockAddr, ByteReader, ByteWriter, Bytes, Decode, Encode, ServiceId};

use crate::error::{StingError, StingResult};
use crate::inode::{Inode, InodeKind};

/// Record kinds Sting writes to the log (on-disk stable).
pub(crate) mod record {
    /// Create a file or directory.
    pub const MKNOD: u16 = 1;
    /// Remove a directory entry (and maybe the file).
    pub const UNLINK: u16 = 2;
    /// Remove an empty directory.
    pub const RMDIR: u16 = 3;
    /// Set file size (also logged by writes that extend).
    pub const SETSIZE: u16 = 4;
    /// Rename, possibly replacing the destination.
    pub const RENAME: u16 = 5;
    /// Add a hard link.
    pub const LINK: u16 = 6;
}

/// The root directory's inode number.
pub const ROOT_INO: u64 = 1;

/// Hard cap on blocks per file (4 GiB at 4 KB blocks).
const MAX_BLOCKS: u64 = 1 << 20;

/// Configuration for a Sting instance.
#[derive(Debug, Clone)]
pub struct StingConfig {
    /// Sting's service id on the log.
    pub service: ServiceId,
    /// File block size in bytes (the prototype used 4 KB I/O).
    pub block_size: usize,
    /// Client block cache capacity, in blocks ("we expect most reads to
    /// be handled by the client cache", §3.4).
    pub cache_blocks: usize,
}

impl Default for StingConfig {
    fn default() -> Self {
        StingConfig {
            service: ServiceId::new(2),
            block_size: swarm_types::DEFAULT_BLOCK_SIZE,
            cache_blocks: 1024,
        }
    }
}

/// A directory listing entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirEntry {
    /// Entry name.
    pub name: String,
    /// Target inode number.
    pub ino: u64,
    /// Is the target a directory?
    pub is_dir: bool,
}

/// Metadata returned by [`StingFs::stat`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FileStat {
    /// Inode number.
    pub ino: u64,
    /// Directory?
    pub is_dir: bool,
    /// Size in bytes.
    pub size: u64,
    /// Hard link count.
    pub nlink: u32,
    /// Logical modification stamp.
    pub mtime: u64,
    /// Data blocks currently mapped.
    pub blocks: u64,
}

pub(crate) struct FsInner {
    pub(crate) inodes: HashMap<u64, Inode>,
    pub(crate) next_ino: u64,
    pub(crate) clock: u64,
}

impl FsInner {
    fn fresh() -> FsInner {
        let mut inodes = HashMap::new();
        inodes.insert(ROOT_INO, Inode::new_dir(ROOT_INO, 0));
        FsInner {
            inodes,
            next_ino: ROOT_INO + 1,
            clock: 1,
        }
    }

    fn tick(&mut self) -> u64 {
        let t = self.clock;
        self.clock += 1;
        t
    }
}

/// The Sting local file system.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use sting::{StingConfig, StingFs};
///
/// # fn log() -> Arc<swarm_log::Log> { unimplemented!() }
/// let fs = StingFs::format(log(), StingConfig::default())?;
/// fs.mkdir("/projects")?;
/// fs.write_file("/projects/notes.txt", 0, b"hello swarm")?;
/// assert_eq!(fs.read_to_end("/projects/notes.txt")?, b"hello swarm");
/// fs.unmount()?; // checkpoint + flush, like the paper's MAB runs
/// # Ok::<(), sting::StingError>(())
/// ```
pub struct StingFs {
    pub(crate) log: Arc<Log>,
    pub(crate) reader: CachingReader,
    pub(crate) inner: Mutex<FsInner>,
    pub(crate) config: StingConfig,
}

impl std::fmt::Debug for StingFs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("StingFs")
            .field("service", &self.config.service)
            .field("inodes", &inner.inodes.len())
            .field("block_size", &self.config.block_size)
            .finish()
    }
}

pub(crate) fn block_create_info(ino: u64, idx: u64) -> [u8; 16] {
    let mut out = [0u8; 16];
    out[..8].copy_from_slice(&ino.to_le_bytes());
    out[8..].copy_from_slice(&idx.to_le_bytes());
    out
}

pub(crate) fn parse_create_info(create: &[u8]) -> Option<(u64, u64)> {
    if create.len() != 16 {
        return None;
    }
    Some((
        u64::from_le_bytes(create[..8].try_into().unwrap()),
        u64::from_le_bytes(create[8..].try_into().unwrap()),
    ))
}

impl StingFs {
    /// Creates (formats) a fresh, empty file system on `log`.
    ///
    /// # Errors
    ///
    /// Propagates log failures from the initial checkpoint.
    pub fn format(log: Arc<Log>, config: StingConfig) -> StingResult<Arc<StingFs>> {
        let fs = StingFs::bare(log, config);
        fs.checkpoint()?; // durable empty root
        Ok(fs)
    }

    /// Builds the in-memory shell without writing anything (used by
    /// recovery before checkpoint/records are applied).
    pub fn bare(log: Arc<Log>, config: StingConfig) -> Arc<StingFs> {
        let reader = CachingReader::new(log.clone(), config.cache_blocks);
        Arc::new(StingFs {
            log,
            reader,
            inner: Mutex::new(FsInner::fresh()),
            config,
        })
    }

    /// The underlying log.
    pub fn log(&self) -> &Arc<Log> {
        &self.log
    }

    /// Sting's service id.
    pub fn service(&self) -> ServiceId {
        self.config.service
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.config.block_size
    }

    // ------------------------------------------------------------------
    // Path handling
    // ------------------------------------------------------------------

    fn split_path(path: &str) -> StingResult<Vec<&str>> {
        if !path.starts_with('/') {
            return Err(StingError::InvalidPath(path.into()));
        }
        let parts: Vec<&str> = path.split('/').filter(|p| !p.is_empty()).collect();
        for p in &parts {
            if *p == "." || *p == ".." || p.contains('\0') {
                return Err(StingError::InvalidPath(path.into()));
            }
        }
        Ok(parts)
    }

    fn lookup_inner(inner: &FsInner, path: &str) -> StingResult<u64> {
        let parts = Self::split_path(path)?;
        let mut ino = ROOT_INO;
        for part in parts {
            let node = inner
                .inodes
                .get(&ino)
                .ok_or_else(|| StingError::NotFound(path.into()))?;
            let InodeKind::Dir { entries } = &node.kind else {
                return Err(StingError::NotADirectory(path.into()));
            };
            ino = *entries
                .get(part)
                .ok_or_else(|| StingError::NotFound(path.into()))?;
        }
        Ok(ino)
    }

    /// Resolves `path`'s parent directory and final component.
    fn resolve_parent<'p>(inner: &FsInner, path: &'p str) -> StingResult<(u64, &'p str)> {
        let parts = Self::split_path(path)?;
        let Some((name, dirs)) = parts.split_last() else {
            return Err(StingError::InvalidPath(path.into()));
        };
        let mut ino = ROOT_INO;
        for part in dirs {
            let node = inner
                .inodes
                .get(&ino)
                .ok_or_else(|| StingError::NotFound(path.into()))?;
            let InodeKind::Dir { entries } = &node.kind else {
                return Err(StingError::NotADirectory(path.into()));
            };
            ino = *entries
                .get(*part)
                .ok_or_else(|| StingError::NotFound(path.into()))?;
        }
        let parent = inner
            .inodes
            .get(&ino)
            .ok_or_else(|| StingError::NotFound(path.into()))?;
        if !parent.is_dir() {
            return Err(StingError::NotADirectory(path.into()));
        }
        Ok((ino, name))
    }

    /// Does `path` exist?
    pub fn exists(&self, path: &str) -> bool {
        Self::lookup_inner(&self.inner.lock(), path).is_ok()
    }

    /// Metadata for `path`.
    ///
    /// # Errors
    ///
    /// [`StingError::NotFound`] and path errors.
    pub fn stat(&self, path: &str) -> StingResult<FileStat> {
        let inner = self.inner.lock();
        let ino = Self::lookup_inner(&inner, path)?;
        let node = inner.inodes.get(&ino).expect("resolved inode exists");
        Ok(FileStat {
            ino,
            is_dir: node.is_dir(),
            size: node.size,
            nlink: node.nlink,
            mtime: node.mtime,
            blocks: match &node.kind {
                InodeKind::File { blocks } => blocks.iter().flatten().count() as u64,
                InodeKind::Dir { entries } => entries.len() as u64,
            },
        })
    }

    /// Lists a directory.
    ///
    /// # Errors
    ///
    /// [`StingError::NotFound`] / [`StingError::NotADirectory`].
    pub fn readdir(&self, path: &str) -> StingResult<Vec<DirEntry>> {
        let inner = self.inner.lock();
        let ino = Self::lookup_inner(&inner, path)?;
        let node = inner.inodes.get(&ino).expect("resolved");
        let InodeKind::Dir { entries } = &node.kind else {
            return Err(StingError::NotADirectory(path.into()));
        };
        Ok(entries
            .iter()
            .map(|(name, child)| DirEntry {
                name: name.clone(),
                ino: *child,
                is_dir: inner.inodes.get(child).map(|n| n.is_dir()).unwrap_or(false),
            })
            .collect())
    }

    // ------------------------------------------------------------------
    // Namespace operations
    // ------------------------------------------------------------------

    fn append_record(&self, kind: u16, payload: &[u8]) -> StingResult<()> {
        self.log.append_record(self.config.service, kind, payload)?;
        Ok(())
    }

    /// Creates an empty file.
    ///
    /// # Errors
    ///
    /// [`StingError::AlreadyExists`] if the path is taken, plus path and
    /// storage errors.
    pub fn create(&self, path: &str) -> StingResult<u64> {
        self.mknod(path, false)
    }

    /// Creates a directory.
    ///
    /// # Errors
    ///
    /// As [`StingFs::create`].
    pub fn mkdir(&self, path: &str) -> StingResult<u64> {
        self.mknod(path, true)
    }

    fn mknod(&self, path: &str, is_dir: bool) -> StingResult<u64> {
        let mut inner = self.inner.lock();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        if inner.inodes[&parent].entries().contains_key(name) {
            return Err(StingError::AlreadyExists(path.into()));
        }
        let ino = inner.next_ino;
        inner.next_ino += 1;
        let mtime = inner.tick();

        let mut w = ByteWriter::new();
        w.put_u64(parent);
        w.put_str(name);
        w.put_u64(ino);
        w.put_bool(is_dir);
        w.put_u64(mtime);
        self.append_record(record::MKNOD, w.as_slice())?;

        apply_mknod(&mut inner, parent, name, ino, is_dir, mtime);
        Ok(ino)
    }

    /// Removes a file (or one hard link to it).
    ///
    /// # Errors
    ///
    /// [`StingError::IsADirectory`] for directories (use
    /// [`StingFs::rmdir`]), plus lookup and storage errors.
    pub fn unlink(&self, path: &str) -> StingResult<()> {
        let mut inner = self.inner.lock();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let ino = *inner.inodes[&parent]
            .entries()
            .get(name)
            .ok_or_else(|| StingError::NotFound(path.into()))?;
        if inner.inodes[&ino].is_dir() {
            return Err(StingError::IsADirectory(path.into()));
        }
        let mtime = inner.tick();

        let mut w = ByteWriter::new();
        w.put_u64(parent);
        w.put_str(name);
        w.put_u64(ino);
        w.put_u64(mtime);
        self.append_record(record::UNLINK, w.as_slice())?;

        // Mark dying blocks dead for the cleaner.
        let node = &inner.inodes[&ino];
        if node.nlink == 1 {
            for addr in node.blocks().iter().flatten() {
                self.log.delete_block(self.config.service, *addr)?;
                self.reader.invalidate(*addr);
            }
        }
        apply_unlink(&mut inner, parent, name, ino, mtime);
        Ok(())
    }

    /// Removes an empty directory.
    ///
    /// # Errors
    ///
    /// [`StingError::DirectoryNotEmpty`], [`StingError::NotADirectory`],
    /// [`StingError::Busy`] for the root, plus lookup/storage errors.
    pub fn rmdir(&self, path: &str) -> StingResult<()> {
        let mut inner = self.inner.lock();
        let (parent, name) = Self::resolve_parent(&inner, path)?;
        let ino = *inner.inodes[&parent]
            .entries()
            .get(name)
            .ok_or_else(|| StingError::NotFound(path.into()))?;
        if ino == ROOT_INO {
            return Err(StingError::Busy(path.into()));
        }
        let node = &inner.inodes[&ino];
        if !node.is_dir() {
            return Err(StingError::NotADirectory(path.into()));
        }
        if !node.entries().is_empty() {
            return Err(StingError::DirectoryNotEmpty(path.into()));
        }
        let mtime = inner.tick();

        let mut w = ByteWriter::new();
        w.put_u64(parent);
        w.put_str(name);
        w.put_u64(ino);
        w.put_u64(mtime);
        self.append_record(record::RMDIR, w.as_slice())?;

        apply_rmdir(&mut inner, parent, name, ino, mtime);
        Ok(())
    }

    /// Adds a hard link `new_path` to the file at `existing`.
    ///
    /// # Errors
    ///
    /// [`StingError::IsADirectory`] (no directory hard links), plus
    /// lookup/storage errors.
    pub fn link(&self, existing: &str, new_path: &str) -> StingResult<()> {
        let mut inner = self.inner.lock();
        let ino = Self::lookup_inner(&inner, existing)?;
        if inner.inodes[&ino].is_dir() {
            return Err(StingError::IsADirectory(existing.into()));
        }
        let (parent, name) = Self::resolve_parent(&inner, new_path)?;
        if inner.inodes[&parent].entries().contains_key(name) {
            return Err(StingError::AlreadyExists(new_path.into()));
        }
        let mtime = inner.tick();

        let mut w = ByteWriter::new();
        w.put_u64(parent);
        w.put_str(name);
        w.put_u64(ino);
        w.put_u64(mtime);
        self.append_record(record::LINK, w.as_slice())?;

        apply_link(&mut inner, parent, name, ino, mtime);
        Ok(())
    }

    /// Renames `src` to `dst` (atomically replacing a same-kind target,
    /// POSIX style).
    ///
    /// # Errors
    ///
    /// [`StingError::DirectoryNotEmpty`] if `dst` is a non-empty
    /// directory, kind-mismatch errors, [`StingError::InvalidPath`] when
    /// moving a directory into its own subtree, plus lookup/storage
    /// errors.
    pub fn rename(&self, src: &str, dst: &str) -> StingResult<()> {
        let mut inner = self.inner.lock();
        let (sparent, sname) = Self::resolve_parent(&inner, src)?;
        let ino = *inner.inodes[&sparent]
            .entries()
            .get(sname)
            .ok_or_else(|| StingError::NotFound(src.into()))?;
        let (dparent, dname) = Self::resolve_parent(&inner, dst)?;

        if sparent == dparent && sname == dname {
            return Ok(()); // rename to itself: no-op
        }

        let moving_dir = inner.inodes[&ino].is_dir();
        if moving_dir {
            // dst's parent chain must not pass through ino.
            let mut cursor = dparent;
            loop {
                if cursor == ino {
                    return Err(StingError::InvalidPath(format!(
                        "cannot move {src} into its own subtree {dst}"
                    )));
                }
                if cursor == ROOT_INO {
                    break;
                }
                // Find cursor's parent by scanning (no parent pointers).
                let parent = inner
                    .inodes
                    .values()
                    .filter(|n| n.is_dir())
                    .find(|n| n.entries().values().any(|&c| c == cursor))
                    .map(|n| n.ino);
                match parent {
                    Some(p) => cursor = p,
                    None => break,
                }
            }
        }

        let replaced = inner.inodes[&dparent].entries().get(dname).copied();
        if let Some(rino) = replaced {
            let target = &inner.inodes[&rino];
            match (moving_dir, target.is_dir()) {
                (true, false) => return Err(StingError::NotADirectory(dst.into())),
                (false, true) => return Err(StingError::IsADirectory(dst.into())),
                (true, true) if !target.entries().is_empty() => {
                    return Err(StingError::DirectoryNotEmpty(dst.into()))
                }
                _ => {}
            }
        }
        let mtime = inner.tick();

        let mut w = ByteWriter::new();
        w.put_u64(sparent);
        w.put_str(sname);
        w.put_u64(dparent);
        w.put_str(dname);
        w.put_u64(ino);
        replaced.encode(&mut w);
        w.put_u64(mtime);
        self.append_record(record::RENAME, w.as_slice())?;

        // Replaced file's blocks die.
        if let Some(rino) = replaced {
            let node = &inner.inodes[&rino];
            if !node.is_dir() && node.nlink == 1 {
                for addr in node.blocks().iter().flatten() {
                    self.log.delete_block(self.config.service, *addr)?;
                    self.reader.invalidate(*addr);
                }
            }
        }
        apply_rename(
            &mut inner, sparent, sname, dparent, dname, ino, replaced, mtime,
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // File I/O
    // ------------------------------------------------------------------

    /// Writes `data` into the file at `path` starting at byte `offset`,
    /// creating the file if needed. Returns bytes written.
    ///
    /// # Errors
    ///
    /// [`StingError::IsADirectory`], [`StingError::FileTooLarge`], plus
    /// lookup/storage errors.
    pub fn write_file(&self, path: &str, offset: u64, data: &[u8]) -> StingResult<usize> {
        if !self.exists(path) {
            self.create(path)?;
        }
        let ino = {
            let inner = self.inner.lock();
            let ino = Self::lookup_inner(&inner, path)?;
            if inner.inodes[&ino].is_dir() {
                return Err(StingError::IsADirectory(path.into()));
            }
            ino
        };
        self.write_ino(ino, offset, data)
    }

    pub(crate) fn write_ino(&self, ino: u64, offset: u64, data: &[u8]) -> StingResult<usize> {
        if data.is_empty() {
            return Ok(0);
        }
        let bs = self.config.block_size as u64;
        let end = offset + data.len() as u64;
        if end.div_ceil(bs) > MAX_BLOCKS {
            return Err(StingError::FileTooLarge {
                requested: end,
                max: MAX_BLOCKS * bs,
            });
        }

        let first_block = offset / bs;
        let last_block = (end - 1) / bs;
        for idx in first_block..=last_block {
            let block_start = idx * bs;
            let within_start = offset.max(block_start) - block_start;
            let within_end = end.min(block_start + bs) - block_start;

            // Assemble the new block content under the lock, then do log
            // I/O, then commit the mapping under the lock again.
            let (old_addr, mut content) = {
                let inner = self.inner.lock();
                let node = inner.inodes.get(&ino).ok_or(StingError::BadHandle)?;
                let old = node.blocks().get(idx as usize).copied().flatten();
                let full_cover = within_start == 0 && within_end == bs;
                let needs_old = !full_cover && old.is_some();
                (if needs_old { old } else { None }, {
                    // Preliminary content: either zeros or (filled below
                    // after reading old outside the lock).
                    let keep_old = !full_cover && old.is_some();
                    if keep_old {
                        Vec::new() // sentinel: fill from old copy
                    } else {
                        let len = if full_cover {
                            bs as usize
                        } else {
                            within_end as usize // zero-prefix partial block
                        };
                        vec![0u8; len]
                    }
                })
            };
            if let Some(old) = old_addr {
                content = self.reader.read(old)?.to_vec();
            }
            if content.len() < within_end as usize {
                content.resize(within_end as usize, 0);
            }
            let src_start = (block_start + within_start - offset) as usize;
            let src_end = (block_start + within_end - offset) as usize;
            content[within_start as usize..within_end as usize]
                .copy_from_slice(&data[src_start..src_end]);

            let new_addr = self.log.append_block(
                self.config.service,
                &block_create_info(ino, idx),
                &content,
            )?;
            self.reader.put(new_addr, Bytes::from(content));

            // Commit mapping; the delete record marks the old copy dead.
            let prior = {
                let mut inner = self.inner.lock();
                let node = inner.inodes.get_mut(&ino).ok_or(StingError::BadHandle)?;
                let blocks = node.blocks_mut();
                if blocks.len() <= idx as usize {
                    blocks.resize(idx as usize + 1, None);
                }
                blocks[idx as usize].replace(new_addr)
            };
            if let Some(prior) = prior {
                self.log.delete_block(self.config.service, prior)?;
                self.reader.invalidate(prior);
            }
        }

        // Size + mtime via a SETSIZE record (replayed deterministically).
        let (new_size, mtime) = {
            let mut inner = self.inner.lock();
            let mtime = inner.tick();
            let node = inner.inodes.get_mut(&ino).ok_or(StingError::BadHandle)?;
            let new_size = node.size.max(end);
            (new_size, mtime)
        };
        let mut w = ByteWriter::new();
        w.put_u64(ino);
        w.put_u64(new_size);
        w.put_u64(mtime);
        self.append_record(record::SETSIZE, w.as_slice())?;
        {
            let mut inner = self.inner.lock();
            apply_setsize(&mut inner, ino, new_size, mtime, self.config.block_size);
        }
        Ok(data.len())
    }

    /// Reads up to `len` bytes from `path` at `offset` (short reads at
    /// EOF, like `pread`).
    ///
    /// # Errors
    ///
    /// [`StingError::IsADirectory`] plus lookup/storage errors.
    pub fn read_file(&self, path: &str, offset: u64, len: usize) -> StingResult<Vec<u8>> {
        let ino = {
            let inner = self.inner.lock();
            let ino = Self::lookup_inner(&inner, path)?;
            if inner.inodes[&ino].is_dir() {
                return Err(StingError::IsADirectory(path.into()));
            }
            ino
        };
        self.read_ino(ino, offset, len)
    }

    pub(crate) fn read_ino(&self, ino: u64, offset: u64, len: usize) -> StingResult<Vec<u8>> {
        let bs = self.config.block_size as u64;
        let (size, block_addrs) = {
            let inner = self.inner.lock();
            let node = inner.inodes.get(&ino).ok_or(StingError::BadHandle)?;
            (node.size, node.blocks().clone())
        };
        if offset >= size {
            return Ok(Vec::new());
        }
        let end = (offset + len as u64).min(size);
        let mut out = Vec::with_capacity((end - offset) as usize);
        let mut pos = offset;
        while pos < end {
            let idx = pos / bs;
            let within = pos % bs;
            let take = ((bs - within) as usize).min((end - pos) as usize);
            match block_addrs.get(idx as usize).copied().flatten() {
                None => out.extend(std::iter::repeat_n(0u8, take)), // hole
                Some(addr) => {
                    let block = self.reader.read(addr)?;
                    let upto = ((within as usize) + take).min(block.len());
                    if (within as usize) < upto {
                        out.extend_from_slice(&block[within as usize..upto]);
                    }
                    // Tail of a short final block reads as zeros.
                    let got = upto.saturating_sub(within as usize);
                    if got < take {
                        out.extend(std::iter::repeat_n(0u8, take - got));
                    }
                }
            }
            pos += take as u64;
        }
        Ok(out)
    }

    /// Reads the whole file.
    ///
    /// # Errors
    ///
    /// As [`StingFs::read_file`].
    pub fn read_to_end(&self, path: &str) -> StingResult<Vec<u8>> {
        let size = self.stat(path)?.size;
        self.read_file(path, 0, size as usize)
    }

    /// Truncates (or zero-extends) the file at `path` to `new_size`.
    ///
    /// # Errors
    ///
    /// [`StingError::IsADirectory`], [`StingError::FileTooLarge`], plus
    /// lookup/storage errors.
    pub fn truncate(&self, path: &str, new_size: u64) -> StingResult<()> {
        let bs = self.config.block_size as u64;
        if new_size.div_ceil(bs) > MAX_BLOCKS {
            return Err(StingError::FileTooLarge {
                requested: new_size,
                max: MAX_BLOCKS * bs,
            });
        }
        let (ino, old_size) = {
            let inner = self.inner.lock();
            let ino = Self::lookup_inner(&inner, path)?;
            let node = &inner.inodes[&ino];
            if node.is_dir() {
                return Err(StingError::IsADirectory(path.into()));
            }
            (ino, node.size)
        };

        if new_size < old_size {
            // Rewrite the partial tail block (truncated content) so a
            // later re-extension reads zeros, then drop whole blocks past
            // the end and log their deletion.
            let keep_blocks = new_size.div_ceil(bs);
            let tail_len = (new_size % bs) as usize;
            if tail_len > 0 {
                let tail_idx = keep_blocks - 1;
                let old_tail = {
                    let inner = self.inner.lock();
                    inner.inodes[&ino]
                        .blocks()
                        .get(tail_idx as usize)
                        .copied()
                        .flatten()
                };
                if let Some(old_addr) = old_tail {
                    let mut content = self.reader.read(old_addr)?.to_vec();
                    content.truncate(tail_len);
                    let new_addr = self.log.append_block(
                        self.config.service,
                        &block_create_info(ino, tail_idx),
                        &content,
                    )?;
                    self.reader.put(new_addr, Bytes::from(content));
                    {
                        let mut inner = self.inner.lock();
                        let blocks = inner
                            .inodes
                            .get_mut(&ino)
                            .ok_or(StingError::BadHandle)?
                            .blocks_mut();
                        blocks[tail_idx as usize] = Some(new_addr);
                    }
                    self.log.delete_block(self.config.service, old_addr)?;
                    self.reader.invalidate(old_addr);
                }
            }
            // Whole blocks beyond the end die.
            let doomed: Vec<BlockAddr> = {
                let inner = self.inner.lock();
                inner.inodes[&ino]
                    .blocks()
                    .iter()
                    .skip(keep_blocks as usize)
                    .flatten()
                    .copied()
                    .collect()
            };
            for addr in doomed {
                self.log.delete_block(self.config.service, addr)?;
                self.reader.invalidate(addr);
            }
        }

        let mtime = self.inner.lock().tick();
        let mut w = ByteWriter::new();
        w.put_u64(ino);
        w.put_u64(new_size);
        w.put_u64(mtime);
        self.append_record(record::SETSIZE, w.as_slice())?;
        let mut inner = self.inner.lock();
        apply_setsize(&mut inner, ino, new_size, mtime, self.config.block_size);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Pushes everything written so far to the storage servers (like
    /// `fsync` for the whole file system).
    ///
    /// # Errors
    ///
    /// Propagates log flush failures.
    pub fn flush(&self) -> StingResult<()> {
        self.log.flush()?;
        Ok(())
    }

    /// Writes a checkpoint: the complete metadata (inode table, directory
    /// trees, counters) becomes the new recovery anchor, making all older
    /// Sting records obsolete (and their stripes cleanable).
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub fn checkpoint(&self) -> StingResult<()> {
        let payload = self.encode_checkpoint();
        self.log.checkpoint(self.config.service, &payload)?;
        Ok(())
    }

    /// Unmounts: checkpoint + flush (what the paper's MAB run does so
    /// "the data written are eventually stored to disk").
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub fn unmount(&self) -> StingResult<()> {
        self.checkpoint()?;
        self.flush()
    }

    pub(crate) fn encode_checkpoint(&self) -> Vec<u8> {
        let inner = self.inner.lock();
        let mut w = ByteWriter::new();
        w.put_u64(inner.clock);
        w.put_u64(inner.next_ino);
        w.put_u64(inner.inodes.len() as u64);
        let mut inos: Vec<&Inode> = inner.inodes.values().collect();
        inos.sort_by_key(|n| n.ino);
        for node in inos {
            node.encode(&mut w);
        }
        w.into_bytes()
    }

    pub(crate) fn load_checkpoint(&self, data: &[u8]) -> StingResult<()> {
        let mut r = ByteReader::new(data);
        let clock = r.get_u64().map_err(StingError::Storage)?;
        let next_ino = r.get_u64().map_err(StingError::Storage)?;
        let n = r.get_u64().map_err(StingError::Storage)? as usize;
        let mut inodes = HashMap::with_capacity(n);
        for _ in 0..n {
            let node = Inode::decode(&mut r).map_err(StingError::Storage)?;
            inodes.insert(node.ino, node);
        }
        let mut inner = self.inner.lock();
        inner.clock = clock;
        inner.next_ino = next_ino;
        inner.inodes = inodes;
        Ok(())
    }

    /// Total number of inodes (diagnostics).
    pub fn inode_count(&self) -> usize {
        self.inner.lock().inodes.len()
    }

    /// Cache statistics (hits, misses) from the block cache.
    pub fn cache_stats(&self) -> (u64, u64) {
        self.reader.stats()
    }
}

// ----------------------------------------------------------------------
// Pure state-transition functions, shared by the live ops above and by
// crash replay (service.rs). Keeping them pure guarantees replay
// convergence: the same record sequence always produces the same state.
// ----------------------------------------------------------------------

pub(crate) fn apply_mknod(
    inner: &mut FsInner,
    parent: u64,
    name: &str,
    ino: u64,
    is_dir: bool,
    mtime: u64,
) {
    let node = if is_dir {
        Inode::new_dir(ino, mtime)
    } else {
        Inode::new_file(ino, mtime)
    };
    inner.inodes.insert(ino, node);
    if let Some(p) = inner.inodes.get_mut(&parent) {
        p.entries_mut().insert(name.to_string(), ino);
        p.mtime = mtime;
        if is_dir {
            p.nlink += 1;
        }
        p.size = p.entries().len() as u64;
    }
    inner.next_ino = inner.next_ino.max(ino + 1);
    inner.clock = inner.clock.max(mtime + 1);
}

pub(crate) fn apply_unlink(inner: &mut FsInner, parent: u64, name: &str, ino: u64, mtime: u64) {
    if let Some(p) = inner.inodes.get_mut(&parent) {
        p.entries_mut().remove(name);
        p.mtime = mtime;
        p.size = p.entries().len() as u64;
    }
    let remove = if let Some(node) = inner.inodes.get_mut(&ino) {
        node.nlink = node.nlink.saturating_sub(1);
        node.nlink == 0
    } else {
        false
    };
    if remove {
        inner.inodes.remove(&ino);
    }
    inner.clock = inner.clock.max(mtime + 1);
}

pub(crate) fn apply_rmdir(inner: &mut FsInner, parent: u64, name: &str, ino: u64, mtime: u64) {
    inner.inodes.remove(&ino);
    if let Some(p) = inner.inodes.get_mut(&parent) {
        p.entries_mut().remove(name);
        p.nlink = p.nlink.saturating_sub(1);
        p.mtime = mtime;
        p.size = p.entries().len() as u64;
    }
    inner.clock = inner.clock.max(mtime + 1);
}

pub(crate) fn apply_link(inner: &mut FsInner, parent: u64, name: &str, ino: u64, mtime: u64) {
    if let Some(node) = inner.inodes.get_mut(&ino) {
        node.nlink += 1;
    }
    if let Some(p) = inner.inodes.get_mut(&parent) {
        p.entries_mut().insert(name.to_string(), ino);
        p.mtime = mtime;
        p.size = p.entries().len() as u64;
    }
    inner.clock = inner.clock.max(mtime + 1);
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn apply_rename(
    inner: &mut FsInner,
    sparent: u64,
    sname: &str,
    dparent: u64,
    dname: &str,
    ino: u64,
    replaced: Option<u64>,
    mtime: u64,
) {
    let moving_dir = inner.inodes.get(&ino).map(|n| n.is_dir()).unwrap_or(false);
    if let Some(rino) = replaced {
        let gone = if let Some(node) = inner.inodes.get_mut(&rino) {
            if node.is_dir() {
                true // only empty dirs are replaceable
            } else {
                node.nlink = node.nlink.saturating_sub(1);
                node.nlink == 0
            }
        } else {
            false
        };
        if gone {
            let was_dir = inner.inodes.get(&rino).map(|n| n.is_dir()).unwrap_or(false);
            inner.inodes.remove(&rino);
            if was_dir {
                if let Some(d) = inner.inodes.get_mut(&dparent) {
                    d.nlink = d.nlink.saturating_sub(1);
                }
            }
        }
    }
    if let Some(s) = inner.inodes.get_mut(&sparent) {
        s.entries_mut().remove(sname);
        if moving_dir {
            s.nlink = s.nlink.saturating_sub(1);
        }
        s.mtime = mtime;
        s.size = s.entries().len() as u64;
    }
    if let Some(d) = inner.inodes.get_mut(&dparent) {
        d.entries_mut().insert(dname.to_string(), ino);
        if moving_dir {
            d.nlink += 1;
        }
        d.mtime = mtime;
        d.size = d.entries().len() as u64;
    }
    inner.clock = inner.clock.max(mtime + 1);
}

pub(crate) fn apply_setsize(
    inner: &mut FsInner,
    ino: u64,
    size: u64,
    mtime: u64,
    block_size: usize,
) {
    if let Some(node) = inner.inodes.get_mut(&ino) {
        node.size = size;
        node.mtime = mtime;
        let keep = size.div_ceil(block_size as u64) as usize;
        if let InodeKind::File { blocks } = &mut node.kind {
            if blocks.len() > keep {
                blocks.truncate(keep);
            }
        }
    }
    inner.clock = inner.clock.max(mtime + 1);
}
