//! Sting's error type: UNIX-flavoured file system errors layered over
//! Swarm storage errors.

use std::fmt;

use swarm_types::SwarmError;

/// Result alias for Sting operations.
pub type StingResult<T> = std::result::Result<T, StingError>;

/// File system errors (the usual POSIX suspects) plus storage errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum StingError {
    /// Path component or file does not exist (ENOENT).
    NotFound(String),
    /// Path already exists (EEXIST).
    AlreadyExists(String),
    /// A non-final path component is not a directory (ENOTDIR).
    NotADirectory(String),
    /// Directory where a file was expected (EISDIR).
    IsADirectory(String),
    /// rmdir of a non-empty directory (ENOTEMPTY).
    DirectoryNotEmpty(String),
    /// Malformed path (empty, no leading '/', embedded NUL, …).
    InvalidPath(String),
    /// Operation on a stale or closed file handle (EBADF).
    BadHandle,
    /// File would exceed the maximum size Sting supports.
    FileTooLarge {
        /// Requested size.
        requested: u64,
        /// Maximum supported.
        max: u64,
    },
    /// Refusing to unlink/rename "." or the root.
    Busy(String),
    /// The underlying Swarm storage failed.
    Storage(SwarmError),
}

impl fmt::Display for StingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StingError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            StingError::AlreadyExists(p) => write!(f, "file exists: {p}"),
            StingError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            StingError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            StingError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            StingError::InvalidPath(p) => write!(f, "invalid path: {p}"),
            StingError::BadHandle => write!(f, "bad file handle"),
            StingError::FileTooLarge { requested, max } => {
                write!(f, "file too large: {requested} bytes (max {max})")
            }
            StingError::Busy(p) => write!(f, "resource busy: {p}"),
            StingError::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for StingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StingError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SwarmError> for StingError {
    fn from(e: SwarmError) -> Self {
        StingError::Storage(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert!(StingError::NotFound("/a/b".into())
            .to_string()
            .contains("/a/b"));
        let e: StingError = SwarmError::corrupt("bad").into();
        assert!(e.to_string().contains("bad"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StingError>();
    }
}
