//! Sting: the Swarm-based local file system (§3.1).
//!
//! "To demonstrate that file systems can be built efficiently using Swarm,
//! we implemented a local file system called Sting. … It provides the
//! standard UNIX file system interface as if the file system were stored
//! on a local disk. The file system data are actually stored in Swarm. …
//! Sting borrows heavily from Sprite LFS, although it is smaller and
//! simpler than Sprite LFS because it doesn't have to deal with log
//! management and storage, cleaning, or reconstruction, all of which are
//! handled by lower-level Swarm services."
//!
//! Design, mirroring that quote:
//!
//! * File **data** lives in log blocks (4 KB by default); each block's
//!   creation record names its `(inode, block index)` so crash replay and
//!   cleaner moves can patch the mapping.
//! * **Metadata** (inode table, directory contents, the inode map) lives
//!   in memory, is serialized wholesale into Sting's checkpoint, and is
//!   kept crash-consistent by logging one record per mutating operation
//!   (create, unlink, rename, truncate, …) — Sprite LFS's checkpoint +
//!   rollforward, with the log layer doing all the hard parts.
//! * Sting is *local*: one client, no sharing — exactly the paper's
//!   prototype scope.
//!
//! See [`StingFs`] for the API and [`StingService`] for the
//! recovery/cleaning adapter.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod file;
pub mod fs;
pub mod inode;
pub mod service;

pub use error::{StingError, StingResult};
pub use file::{File, OpenOptions, Whence};
pub use fs::{DirEntry, FileStat, StingConfig, StingFs};
pub use inode::{Inode, InodeKind};
pub use service::StingService;
