//! Inodes and their serialization.
//!
//! A Sting inode owns either file data (a sparse vector of block
//! addresses; block `i` covers bytes `[i*bs, (i+1)*bs)`) or directory
//! entries (a sorted name → inode map). Inodes are memory-resident and
//! serialized in bulk into Sting's checkpoint, Sprite-LFS style.

use std::collections::BTreeMap;

use swarm_types::{BlockAddr, ByteReader, ByteWriter, Decode, Encode, Result, SwarmError};

/// What an inode is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InodeKind {
    /// Regular file: sparse block map (None = hole, reads as zeros).
    File {
        /// Block index → address of the block's current copy.
        blocks: Vec<Option<BlockAddr>>,
    },
    /// Directory: name → child inode number.
    Dir {
        /// Sorted entries.
        entries: BTreeMap<String, u64>,
    },
}

/// One file or directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Inode {
    /// Inode number (root is 1).
    pub ino: u64,
    /// File or directory payload.
    pub kind: InodeKind,
    /// Hard link count (files) / subdirectory convention (dirs: 2 + subdirs).
    pub nlink: u32,
    /// Size in bytes (files; dirs report entry count × nominal size).
    pub size: u64,
    /// Logical modification stamp (Sting's operation clock, not wall
    /// time — deterministic across replays).
    pub mtime: u64,
}

impl Inode {
    /// A fresh empty file.
    pub fn new_file(ino: u64, mtime: u64) -> Inode {
        Inode {
            ino,
            kind: InodeKind::File { blocks: Vec::new() },
            nlink: 1,
            size: 0,
            mtime,
        }
    }

    /// A fresh empty directory.
    pub fn new_dir(ino: u64, mtime: u64) -> Inode {
        Inode {
            ino,
            kind: InodeKind::Dir {
                entries: BTreeMap::new(),
            },
            nlink: 2,
            size: 0,
            mtime,
        }
    }

    /// Is this a directory?
    pub fn is_dir(&self) -> bool {
        matches!(self.kind, InodeKind::Dir { .. })
    }

    /// File block map (panics on directories — callers check first).
    pub fn blocks(&self) -> &Vec<Option<BlockAddr>> {
        match &self.kind {
            InodeKind::File { blocks } => blocks,
            InodeKind::Dir { .. } => panic!("blocks() on a directory"),
        }
    }

    /// Mutable file block map.
    pub fn blocks_mut(&mut self) -> &mut Vec<Option<BlockAddr>> {
        match &mut self.kind {
            InodeKind::File { blocks } => blocks,
            InodeKind::Dir { .. } => panic!("blocks_mut() on a directory"),
        }
    }

    /// Directory entries (panics on files).
    pub fn entries(&self) -> &BTreeMap<String, u64> {
        match &self.kind {
            InodeKind::Dir { entries } => entries,
            InodeKind::File { .. } => panic!("entries() on a file"),
        }
    }

    /// Mutable directory entries.
    pub fn entries_mut(&mut self) -> &mut BTreeMap<String, u64> {
        match &mut self.kind {
            InodeKind::Dir { entries } => entries,
            InodeKind::File { .. } => panic!("entries_mut() on a file"),
        }
    }
}

impl Encode for Inode {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_u64(self.ino);
        w.put_u32(self.nlink);
        w.put_u64(self.size);
        w.put_u64(self.mtime);
        match &self.kind {
            InodeKind::File { blocks } => {
                w.put_u8(0);
                // Sparse encoding: count of present blocks, then
                // (index, addr) pairs, plus the total length.
                w.put_u64(blocks.len() as u64);
                let present: Vec<(u64, BlockAddr)> = blocks
                    .iter()
                    .enumerate()
                    .filter_map(|(i, b)| b.map(|a| (i as u64, a)))
                    .collect();
                w.put_u64(present.len() as u64);
                for (i, addr) in present {
                    w.put_u64(i);
                    addr.encode(w);
                }
            }
            InodeKind::Dir { entries } => {
                w.put_u8(1);
                w.put_u64(entries.len() as u64);
                for (name, ino) in entries {
                    w.put_str(name);
                    w.put_u64(*ino);
                }
            }
        }
    }
}

impl Decode for Inode {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let ino = r.get_u64()?;
        let nlink = r.get_u32()?;
        let size = r.get_u64()?;
        let mtime = r.get_u64()?;
        let kind = match r.get_u8()? {
            0 => {
                let total = r.get_u64()? as usize;
                if total > (1 << 32) {
                    return Err(SwarmError::corrupt("inode block map too large"));
                }
                let mut blocks = vec![None; total];
                let present = r.get_u64()? as usize;
                for _ in 0..present {
                    let idx = r.get_u64()? as usize;
                    let addr = BlockAddr::decode(r)?;
                    if idx >= total {
                        return Err(SwarmError::corrupt("inode block index out of range"));
                    }
                    blocks[idx] = Some(addr);
                }
                InodeKind::File { blocks }
            }
            1 => {
                let n = r.get_u64()? as usize;
                let mut entries = BTreeMap::new();
                for _ in 0..n {
                    let name = r.get_str()?;
                    let ino = r.get_u64()?;
                    entries.insert(name, ino);
                }
                InodeKind::Dir { entries }
            }
            other => return Err(SwarmError::corrupt(format!("unknown inode kind {other}"))),
        };
        Ok(Inode {
            ino,
            kind,
            nlink,
            size,
            mtime,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::{ClientId, FragmentId};

    fn addr(seq: u64, off: u32) -> BlockAddr {
        BlockAddr::new(FragmentId::new(ClientId::new(1), seq), off, 4096)
    }

    #[test]
    fn file_inode_roundtrip_with_holes() {
        let mut ino = Inode::new_file(7, 3);
        ino.size = 20000;
        ino.nlink = 2;
        *ino.blocks_mut() = vec![Some(addr(0, 100)), None, Some(addr(1, 200)), None, None];
        let buf = ino.encode_to_vec();
        assert_eq!(Inode::decode_all(&buf).unwrap(), ino);
    }

    #[test]
    fn dir_inode_roundtrip() {
        let mut ino = Inode::new_dir(1, 0);
        ino.entries_mut().insert("etc".into(), 2);
        ino.entries_mut().insert("usr".into(), 3);
        ino.entries_mut().insert("файл".into(), 4); // non-ASCII names
        let buf = ino.encode_to_vec();
        assert_eq!(Inode::decode_all(&buf).unwrap(), ino);
    }

    #[test]
    fn corrupt_kind_rejected() {
        let mut ino = Inode::new_file(7, 3).encode_to_vec();
        ino[28] = 9; // kind byte (8+4+8+8 = offset 28)
        assert!(Inode::decode_all(&ino).is_err());
    }

    #[test]
    fn out_of_range_block_index_rejected() {
        let mut w = ByteWriter::new();
        w.put_u64(1); // ino
        w.put_u32(1); // nlink
        w.put_u64(0); // size
        w.put_u64(0); // mtime
        w.put_u8(0); // file
        w.put_u64(1); // total blocks
        w.put_u64(1); // present
        w.put_u64(5); // index out of range
        addr(0, 0).encode(&mut w);
        assert!(Inode::decode_all(&w.into_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "entries() on a file")]
    fn kind_accessors_guard() {
        let ino = Inode::new_file(7, 0);
        let _ = ino.entries();
    }
}
