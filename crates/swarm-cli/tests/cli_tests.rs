//! End-to-end tests of the CLI binaries: real `swarmd` processes on
//! localhost, driven by real `swarm-admin` invocations. Each `fs` call
//! is a separate process, so the self-hosting recovery path (mount =
//! checkpoint + rollforward from the cluster) runs every time.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

struct TempDir(std::path::PathBuf);

impl TempDir {
    fn new(tag: &str) -> Self {
        let n = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!("swarm-cli-{tag}-{}-{n}", std::process::id()));
        std::fs::create_dir_all(&path).unwrap();
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Daemon {
    child: Child,
    addr: String,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_daemon(id: u32, dir: &std::path::Path) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_swarmd"))
        .args([
            "--id",
            &id.to_string(),
            "--listen",
            "127.0.0.1:0",
            "--dir",
            dir.to_str().unwrap(),
            "--no-fsync",
        ])
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn swarmd");
    // First stdout line: "swarmd N listening on ADDR".
    let stdout = child.stdout.take().expect("stdout piped");
    let mut line = String::new();
    BufReader::new(stdout)
        .read_line(&mut line)
        .expect("read banner");
    let addr = line
        .rsplit(' ')
        .next()
        .expect("address in banner")
        .trim()
        .to_string();
    Daemon { child, addr }
}

struct Cluster {
    daemons: Vec<Daemon>,
    _dirs: Vec<TempDir>,
}

impl Cluster {
    fn start(n: u32, tag: &str) -> Cluster {
        let mut daemons = Vec::new();
        let mut dirs = Vec::new();
        for i in 0..n {
            let dir = TempDir::new(&format!("{tag}-{i}"));
            daemons.push(start_daemon(i, &dir.0));
            dirs.push(dir);
        }
        Cluster {
            daemons,
            _dirs: dirs,
        }
    }

    fn servers_spec(&self) -> String {
        self.daemons
            .iter()
            .enumerate()
            .map(|(i, d)| format!("{i}={}", d.addr))
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn admin(cluster: &Cluster, args: &[&str], stdin: Option<&[u8]>) -> (String, String, bool) {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_swarm-admin"));
    cmd.args(args).args(["--servers", &cluster.servers_spec()]);
    cmd.stdin(if stdin.is_some() {
        Stdio::piped()
    } else {
        Stdio::null()
    });
    cmd.stdout(Stdio::piped()).stderr(Stdio::piped());
    let mut child = cmd.spawn().expect("spawn swarm-admin");
    if let Some(data) = stdin {
        child
            .stdin
            .as_mut()
            .expect("stdin piped")
            .write_all(data)
            .expect("feed stdin");
    }
    let out = child.wait_with_output().expect("admin exit");
    (
        String::from_utf8_lossy(&out.stdout).to_string(),
        String::from_utf8_lossy(&out.stderr).to_string(),
        out.status.success(),
    )
}

#[test]
fn ping_and_stat_cover_all_servers() {
    let cluster = Cluster::start(3, "ping");
    let (out, _err, ok) = admin(&cluster, &["ping"], None);
    assert!(ok, "{out}");
    for i in 0..3 {
        assert!(out.contains(&format!("s{i}: ok")), "{out}");
    }
    let (out, _err, ok) = admin(&cluster, &["stat"], None);
    assert!(ok, "{out}");
    assert!(out.contains("fragments"), "{out}");
}

#[test]
fn self_hosting_fs_round_trips_across_processes() {
    let cluster = Cluster::start(3, "fs");

    let (_o, e, ok) = admin(&cluster, &["fs", "mkdir", "/docs"], None);
    assert!(ok, "{e}");

    let payload = b"stored in a striped, parity-protected log via the shell";
    let (_o, e, ok) = admin(&cluster, &["fs", "write", "/docs/note.txt"], Some(payload));
    assert!(ok, "{e}");

    // A *separate* process reads it back (full recovery path).
    let (out, e, ok) = admin(&cluster, &["fs", "read", "/docs/note.txt"], None);
    assert!(ok, "{e}");
    assert_eq!(out.as_bytes(), payload);

    let (out, e, ok) = admin(&cluster, &["fs", "ls", "/"], None);
    assert!(ok, "{e}");
    assert!(out.contains("docs/"), "{out}");

    let (out, e, ok) = admin(&cluster, &["fs", "stat", "/docs/note.txt"], None);
    assert!(ok, "{e}");
    assert!(out.contains(&format!("size {}", payload.len())), "{out}");

    // Overwrite, remove, verify.
    let (_o, e, ok) = admin(&cluster, &["fs", "write", "/docs/note.txt"], Some(b"v2"));
    assert!(ok, "{e}");
    let (out, _e, ok) = admin(&cluster, &["fs", "read", "/docs/note.txt"], None);
    assert!(ok);
    assert_eq!(out, "v2");
    let (_o, e, ok) = admin(&cluster, &["fs", "rm", "/docs/note.txt"], None);
    assert!(ok, "{e}");
    let (_o, _e, ok) = admin(&cluster, &["fs", "read", "/docs/note.txt"], None);
    assert!(!ok, "reading a removed file must fail");
}

#[test]
fn fs_survives_daemon_restart() {
    let dir0 = TempDir::new("restart-0");
    let dir1 = TempDir::new("restart-1");
    let spec;
    {
        let d0 = start_daemon(0, &dir0.0);
        let d1 = start_daemon(1, &dir1.0);
        let cluster = Cluster {
            daemons: vec![d0, d1],
            _dirs: vec![],
        };
        let (_o, e, ok) = admin(
            &cluster,
            &["fs", "write", "/durable.txt"],
            Some(b"on real disks"),
        );
        assert!(ok, "{e}");
        spec = cluster.servers_spec();
        let _ = spec;
        // Daemons die here (Drop kills them).
    }
    // Restart from the same directories (new ports).
    let d0 = start_daemon(0, &dir0.0);
    let d1 = start_daemon(1, &dir1.0);
    let cluster = Cluster {
        daemons: vec![d0, d1],
        _dirs: vec![],
    };
    let (out, e, ok) = admin(&cluster, &["fs", "read", "/durable.txt"], None);
    assert!(ok, "{e}");
    assert_eq!(out, "on real disks");
}

#[test]
fn clean_command_reports_stats() {
    let cluster = Cluster::start(3, "clean");
    // Create churn.
    admin(&cluster, &["fs", "write", "/a"], Some(&[1u8; 8000]));
    admin(&cluster, &["fs", "write", "/a"], Some(&[2u8; 8000]));
    admin(&cluster, &["fs", "rm", "/a"], None);
    let (out, e, ok) = admin(&cluster, &["clean"], None);
    assert!(ok, "{e}");
    assert!(out.contains("cleaned"), "{out}");
    // The cluster still works afterwards.
    let (_o, e, ok) = admin(&cluster, &["fs", "write", "/b"], Some(b"post-clean"));
    assert!(ok, "{e}");
    let (out, _e, ok) = admin(&cluster, &["fs", "read", "/b"], None);
    assert!(ok);
    assert_eq!(out, "post-clean");
}

#[test]
fn bad_usage_fails_cleanly() {
    let cluster = Cluster::start(1, "usage");
    let (_o, err, ok) = admin(&cluster, &["frobnicate"], None);
    assert!(!ok);
    assert!(err.contains("unknown command"), "{err}");
    let (_o, err, ok) = admin(&cluster, &["fs", "write"], None);
    assert!(!ok);
    assert!(err.contains("missing"), "{err}");
}

#[test]
fn log_dump_shows_the_recovered_log() {
    let cluster = Cluster::start(2, "dump");
    admin(&cluster, &["fs", "mkdir", "/d"], None);
    admin(&cluster, &["fs", "write", "/d/f"], Some(b"dump me"));
    let (out, e, ok) = admin(&cluster, &["log", "dump"], None);
    assert!(ok, "{e}");
    assert!(
        out.contains("CHECKPOINT") || out.contains("checkpoint"),
        "{out}"
    );
    assert!(out.contains("BLOCK"), "{out}");
    assert!(out.contains("RECORD"), "{out}");
}

#[test]
fn frag_locate_reports_stripe_membership() {
    let cluster = Cluster::start(3, "frag");
    admin(&cluster, &["fs", "write", "/x"], Some(&[7u8; 5000]));
    let (out, e, ok) = admin(&cluster, &["frag", "locate", "0"], None);
    assert!(ok, "{e}");
    assert!(out.contains("stripe"), "{out}");
    assert!(out.contains("group:"), "{out}");
    // A fragment that never existed.
    let (out, _e, ok) = admin(&cluster, &["frag", "locate", "999999"], None);
    assert!(ok);
    assert!(out.contains("not found"), "{out}");
    // Kill a daemon; its fragments report as reconstructible.
    let spec = cluster.servers_spec();
    let _ = spec;
}
