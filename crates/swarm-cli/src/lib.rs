//! Command-line tooling for Swarm: argument parsing and the shared
//! cluster-connection logic behind the `swarmd` and `swarm-admin`
//! binaries.
//!
//! * `swarmd` — runs one storage server over TCP, backed by a directory
//!   (crash-atomic [`swarm_server::FileStore`]) or memory.
//! * `swarm-admin` — drives a running cluster: ping, stats, and a fully
//!   self-hosting Sting file system (`fs` subcommands). Self-hosting
//!   means the tool keeps **no local state**: every invocation recovers
//!   the client's log from the cluster (checkpoint + rollforward), does
//!   its work, checkpoints, and exits — exactly the paper's recovery
//!   machinery, exercised every time you run a command.
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! workspace's dependency set minimal.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::Arc;

use swarm_net::tcp::TcpTransport;
use swarm_types::{Result, ServerId, SwarmError};

/// Parsed command line: positional words plus `--key value` options.
#[derive(Debug, Default, Clone)]
pub struct Args {
    /// Positional arguments in order.
    pub positional: Vec<String>,
    /// `--key value` options (later occurrences win).
    pub options: BTreeMap<String, String>,
}

impl Args {
    /// Parses `argv[1..]`. A `--flag` followed by another `--flag` (or
    /// nothing) is treated as a boolean `"true"`.
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Args {
        let mut args = Args::default();
        let mut iter = argv.into_iter().peekable();
        while let Some(word) = iter.next() {
            if let Some(key) = word.strip_prefix("--") {
                let value = match iter.peek() {
                    Some(next) if !next.starts_with("--") => iter.next().expect("peeked"),
                    _ => "true".to_string(),
                };
                args.options.insert(key.to_string(), value);
            } else {
                args.positional.push(word);
            }
        }
        args
    }

    /// Fetches a required option.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] naming the missing key.
    pub fn require(&self, key: &str) -> Result<&str> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| SwarmError::invalid(format!("missing required option --{key}")))
    }

    /// Fetches an option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(|s| s.as_str()).unwrap_or(default)
    }

    /// Parses an integer option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] on a malformed number.
    pub fn get_u64(&self, key: &str, default: u64) -> Result<u64> {
        match self.options.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| SwarmError::invalid(format!("--{key} expects a number, got {v:?}"))),
        }
    }
}

/// Parses a `--servers` spec: `0=127.0.0.1:7700,1=127.0.0.1:7701,…`
///
/// # Errors
///
/// Returns [`SwarmError::InvalidArgument`] on malformed entries.
pub fn parse_servers(spec: &str) -> Result<Vec<(ServerId, SocketAddr)>> {
    let mut out = Vec::new();
    for part in spec.split(',').filter(|p| !p.is_empty()) {
        let (id, addr) = part.split_once('=').ok_or_else(|| {
            SwarmError::invalid(format!("bad server entry {part:?} (want id=host:port)"))
        })?;
        let id: u32 = id
            .parse()
            .map_err(|_| SwarmError::invalid(format!("bad server id {id:?}")))?;
        let addr: SocketAddr = addr
            .parse()
            .map_err(|_| SwarmError::invalid(format!("bad server address {addr:?}")))?;
        out.push((ServerId::new(id), addr));
    }
    if out.is_empty() {
        return Err(SwarmError::invalid("--servers lists no servers"));
    }
    Ok(out)
}

/// Builds a TCP transport for the given `--servers` spec.
///
/// # Errors
///
/// Propagates [`parse_servers`] errors.
pub fn transport_for(spec: &str) -> Result<Arc<TcpTransport>> {
    let servers = parse_servers(spec)?;
    Ok(Arc::new(TcpTransport::with_servers(servers)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(words: &[&str]) -> Args {
        Args::parse(words.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positional_and_options_mix() {
        let a = parse(&[
            "fs",
            "write",
            "--servers",
            "0=1.2.3.4:5",
            "/path",
            "--client",
            "7",
        ]);
        assert_eq!(a.positional, vec!["fs", "write", "/path"]);
        assert_eq!(a.require("servers").unwrap(), "0=1.2.3.4:5");
        assert_eq!(a.get_u64("client", 1).unwrap(), 7);
    }

    #[test]
    fn bare_flags_become_true() {
        let a = parse(&["--mem", "--dir", "/x", "--verbose"]);
        assert_eq!(a.get_or("mem", "false"), "true");
        assert_eq!(a.get_or("verbose", "false"), "true");
        assert_eq!(a.require("dir").unwrap(), "/x");
    }

    #[test]
    fn missing_required_option_is_an_error() {
        let a = parse(&[]);
        assert!(a.require("servers").is_err());
        assert!(parse(&["--n", "abc"]).get_u64("n", 0).is_err());
    }

    #[test]
    fn server_spec_parsing() {
        let servers = parse_servers("0=127.0.0.1:7700,2=127.0.0.1:7702").unwrap();
        assert_eq!(servers.len(), 2);
        assert_eq!(servers[0].0, ServerId::new(0));
        assert_eq!(servers[1].0, ServerId::new(2));
        assert!(parse_servers("").is_err());
        assert!(parse_servers("nonsense").is_err());
        assert!(parse_servers("0=not-an-addr").is_err());
    }
}
