//! `swarmd` — one Swarm storage server over TCP.
//!
//! ```text
//! swarmd --id 0 --listen 127.0.0.1:7700 --dir /var/lib/swarm/0
//!        [--capacity N]          # fragment slots (0 = unbounded)
//!        [--cache N]             # in-memory fragment read cache
//!        [--mem]                 # memory-backed store (testing)
//!        [--durability MODE]     # strict | group[:millis] | none
//!        [--no-fsync]            # legacy alias for --durability none
//!        [--runtime R]           # blocking | epoll (default: epoll on linux)
//!        [--read-deadline-ms N]  # reap silent connections after N ms
//!                                # (0 = never; default 30000)
//! ```
//!
//! The server is exactly the paper's §2.3 component: a fragment
//! repository with atomic stores, marked-fragment queries, and ACLs.
//! Stop it with SIGINT/SIGTERM (or kill); a directory-backed server
//! recovers its fragment map from the journal on restart.

use std::sync::Arc;
use std::time::Duration;

use swarm_cli::Args;
use swarm_net::tcp::{ServerConfig, TcpServer, DEFAULT_READ_DEADLINE};
use swarm_net::Runtime;
use swarm_server::{Durability, FileStore, MemStore, StorageServer};
use swarm_types::ServerId;

fn main() {
    if let Err(e) = run() {
        eprintln!("swarmd: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args = Args::parse(std::env::args().skip(1));
    let id = ServerId::new(args.get_u64("id", 0)? as u32);
    let listen = args.get_or("listen", "127.0.0.1:0").to_string();
    let capacity = args.get_u64("capacity", 0)?;
    let cache = args.get_u64("cache", 0)? as usize;

    let mut config = ServerConfig::default();
    let runtime = args.get_or("runtime", "");
    if !runtime.is_empty() {
        config.runtime = runtime.parse::<Runtime>()?;
    }
    let deadline_ms = args.get_u64("read-deadline-ms", DEFAULT_READ_DEADLINE.as_millis() as u64)?;
    config.read_deadline = (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms));

    let server = if args.get_or("mem", "false") == "true" {
        let store = if capacity > 0 {
            MemStore::with_capacity(capacity)
        } else {
            MemStore::new()
        };
        spawn(
            id,
            &listen,
            StorageServer::new(id, store).with_read_cache(cache),
            config,
        )?
    } else {
        let dir = args.require("dir")?;
        let durability = if args.get_or("no-fsync", "false") == "true" {
            Durability::None
        } else {
            args.get_or("durability", "strict").parse::<Durability>()?
        };
        let store = FileStore::open_with_durability(dir, capacity, durability)?;
        spawn(
            id,
            &listen,
            StorageServer::new(id, store).with_read_cache(cache),
            config,
        )?
    };

    // The bound address must stay the final token: wrappers (and the
    // integration tests) parse it off the end of this line.
    println!(
        "swarmd {} ({} runtime) listening on {}",
        id.raw(),
        server.runtime(),
        server.addr()
    );
    // Flush stdout so wrappers (and the integration tests) can read the
    // bound address immediately.
    use std::io::Write;
    std::io::stdout().flush()?;

    // Serve until killed.
    loop {
        std::thread::park();
    }
}

fn spawn<S: swarm_server::FragmentStore + 'static>(
    id: ServerId,
    listen: &str,
    server: StorageServer<S>,
    config: ServerConfig,
) -> Result<TcpServer, Box<dyn std::error::Error>> {
    let handler: Arc<StorageServer<S>> = server.into_shared();
    Ok(TcpServer::spawn_with_config(id, listen, handler, config)?)
}
