//! `swarm-admin` — drive a running Swarm cluster from the shell.
//!
//! ```text
//! swarm-admin ping   --servers 0=host:port,1=host:port
//! swarm-admin stat   --servers …
//! swarm-admin stats  --servers …   # live metrics snapshot (JSON) per server
//!
//! # Self-hosting file system (no local state — every invocation
//! # recovers the client's log from the cluster, works, checkpoints):
//! swarm-admin fs mkdir  /dir          --servers … [--client N]
//! swarm-admin fs write  /path         --servers …   # stdin → file
//! swarm-admin fs read   /path         --servers …   # file → stdout
//! swarm-admin fs ls     /dir          --servers …
//! swarm-admin fs rm     /path         --servers …
//! swarm-admin fs stat   /path         --servers …
//!
//! swarm-admin clean  --servers …  [--client N]      # run the cleaner
//! swarm-admin log dump --servers … [--client N]     # print the recovered log
//!
//! Write-path commands accept `--write-window N` (default 8): how many
//! Store RPCs each server channel keeps in flight (DESIGN.md §15);
//! `--write-window 1` is the paper-faithful serial write path. Read-path
//! commands accept `--read-window N` the same way (DESIGN.md §16);
//! `--read-window 1` is the serial read path. Log-mounting commands
//! accept `--geometry K+M` to select a Reed–Solomon stripe shape
//! (DESIGN.md §17); unset (or any M=1) is the paper's XOR layout.
//! swarm-admin frag locate <seq> --servers … [--client N]   # where is a fragment?
//! ```

use std::io::{Read, Write};
use std::sync::Arc;

use parking_lot::Mutex;
use sting::{StingConfig, StingFs, StingService};
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_cli::{parse_servers, transport_for, Args};
use swarm_log::{recover, Log, LogConfig};
use swarm_net::{Request, Response, Transport};
use swarm_services::{Service, ServiceStack};
use swarm_types::{ClientId, Result, SwarmError};

const STING_SVC: swarm_types::ServiceId = swarm_types::ServiceId::new(2);

fn main() {
    if let Err(e) = run() {
        eprintln!("swarm-admin: {e}");
        std::process::exit(1);
    }
}

fn run() -> Result<()> {
    let args = Args::parse(std::env::args().skip(1));
    let command = args
        .positional
        .first()
        .map(|s| s.as_str())
        .ok_or_else(|| SwarmError::invalid("usage: swarm-admin <ping|stat|fs|clean> …"))?;
    match command {
        "ping" => ping(&args),
        "stat" => stat(&args),
        "stats" => stats(&args),
        "fs" => fs_command(&args),
        "clean" => clean(&args),
        "log" => log_command(&args),
        "frag" => frag_command(&args),
        other => Err(SwarmError::invalid(format!("unknown command {other:?}"))),
    }
}

fn client_id(args: &Args) -> Result<ClientId> {
    Ok(ClientId::new(args.get_u64("client", 1)? as u32))
}

/// `--write-window N`: per-server store pipelining depth (DESIGN.md §15).
fn write_window(args: &Args) -> Result<usize> {
    let w = args.get_u64("write-window", swarm_log::DEFAULT_WRITE_WINDOW as u64)? as usize;
    if w == 0 {
        return Err(SwarmError::invalid("--write-window must be >= 1"));
    }
    Ok(w)
}

/// `--read-window N`: per-server read pipelining depth (DESIGN.md §16).
fn read_window(args: &Args) -> Result<usize> {
    let w = args.get_u64("read-window", swarm_log::DEFAULT_READ_WINDOW as u64)? as usize;
    if w == 0 {
        return Err(SwarmError::invalid("--read-window must be >= 1"));
    }
    Ok(w)
}

/// `--geometry K+M`: stripe shape — K data plus M Reed–Solomon parity
/// members per stripe (DESIGN.md §17). Unset keeps the paper's default
/// single-XOR-parity layout over the full server list; `--geometry` with
/// M=1 is bit-identical to that default.
fn apply_geometry(args: &Args, config: LogConfig) -> Result<LogConfig> {
    match args.options.get("geometry") {
        None => Ok(config),
        Some(spec) => {
            let geometry: swarm_types::Geometry = spec.parse()?;
            config.geometry(geometry)
        }
    }
}

fn ping(args: &Args) -> Result<()> {
    let transport = transport_for(args.require("servers")?)?;
    let client = client_id(args)?;
    for server in transport.servers() {
        let outcome = transport
            .connect(server, client)
            .and_then(|mut c| c.call(&Request::Ping));
        match outcome {
            Ok(Response::Ok) => println!("{server}: ok"),
            Ok(r) => println!("{server}: unexpected reply {r:?}"),
            Err(e) => println!("{server}: DOWN ({e})"),
        }
    }
    Ok(())
}

fn stat(args: &Args) -> Result<()> {
    let transport = transport_for(args.require("servers")?)?;
    let client = client_id(args)?;
    println!(
        "{:>8} {:>10} {:>12} {:>8} {:>8} {:>8}",
        "server", "fragments", "bytes", "stores", "reads", "deletes"
    );
    for server in transport.servers() {
        match transport
            .connect(server, client)
            .and_then(|mut c| c.call(&Request::Stat))
            .and_then(Response::into_result)
        {
            Ok(Response::Stats(s)) => println!(
                "{:>8} {:>10} {:>12} {:>8} {:>8} {:>8}",
                server.to_string(),
                s.fragments,
                s.bytes,
                s.stores,
                s.reads,
                s.deletes
            ),
            Ok(r) => println!("{server}: unexpected reply {r:?}"),
            Err(e) => println!("{server}: DOWN ({e})"),
        }
    }
    Ok(())
}

/// Dumps every server's live metrics registry as JSON (the Metrics RPC
/// returns the snapshot serialized by `swarm_metrics::Snapshot::to_json`).
fn stats(args: &Args) -> Result<()> {
    let transport = transport_for(args.require("servers")?)?;
    let client = client_id(args)?;
    for server in transport.servers() {
        match transport
            .connect(server, client)
            .and_then(|mut c| c.call(&Request::Metrics))
            .and_then(Response::into_result)
        {
            Ok(Response::Metrics(json)) => println!("{server}: {json}"),
            Ok(r) => println!("{server}: unexpected reply {r:?}"),
            Err(e) => println!("{server}: DOWN ({e})"),
        }
    }
    Ok(())
}

/// Recovers the client's Sting instance from the cluster — the
/// self-hosting trick: the cluster itself is the only state.
fn mount(args: &Args) -> Result<(Arc<Log>, Arc<StingFs>)> {
    let spec = args.require("servers")?;
    let transport = transport_for(spec)?;
    let ids: Vec<_> = parse_servers(spec)?.into_iter().map(|(id, _)| id).collect();
    let config = LogConfig::new(client_id(args)?, ids)?
        .fragment_size(args.get_u64("fragment-size", 1 << 20)? as usize)
        .write_window(write_window(args)?)
        .read_window(read_window(args)?);
    let config = apply_geometry(args, config)?;
    let (log, replay) = recover(transport, config, &[STING_SVC])?;
    let log = Arc::new(log);
    let fs = StingFs::bare(log.clone(), StingConfig::default());
    let mut svc = StingService::new(fs.clone());
    if let Some(data) = replay.checkpoint_data(STING_SVC) {
        svc.restore_checkpoint(data)?;
    }
    for e in replay.records_for(STING_SVC) {
        svc.replay(e)?;
    }
    Ok((log, fs))
}

fn fs_err(e: sting::StingError) -> SwarmError {
    SwarmError::other(e.to_string())
}

fn fs_command(args: &Args) -> Result<()> {
    let sub = args.positional.get(1).map(|s| s.as_str()).ok_or_else(|| {
        SwarmError::invalid("usage: swarm-admin fs <mkdir|write|read|ls|rm|stat> <path>")
    })?;
    let path = args
        .positional
        .get(2)
        .map(|s| s.as_str())
        .ok_or_else(|| SwarmError::invalid("fs: missing <path>"))?;
    let (_log, fs) = mount(args)?;
    match sub {
        "mkdir" => {
            fs.mkdir(path).map_err(fs_err)?;
            fs.unmount().map_err(fs_err)?;
            eprintln!("created {path}");
        }
        "write" => {
            let mut data = Vec::new();
            std::io::stdin().read_to_end(&mut data)?;
            if fs.exists(path) {
                fs.truncate(path, 0).map_err(fs_err)?;
            }
            fs.write_file(path, 0, &data).map_err(fs_err)?;
            fs.unmount().map_err(fs_err)?;
            eprintln!("wrote {} bytes to {path}", data.len());
        }
        "read" => {
            let data = fs.read_to_end(path).map_err(fs_err)?;
            std::io::stdout().write_all(&data)?;
        }
        "ls" => {
            for entry in fs.readdir(path).map_err(fs_err)? {
                let slash = if entry.is_dir { "/" } else { "" };
                println!("{}{}", entry.name, slash);
            }
        }
        "rm" => {
            fs.unlink(path).map_err(fs_err)?;
            fs.unmount().map_err(fs_err)?;
            eprintln!("removed {path}");
        }
        "stat" => {
            let st = fs.stat(path).map_err(fs_err)?;
            println!(
                "ino {} {} size {} nlink {} blocks {}",
                st.ino,
                if st.is_dir { "dir" } else { "file" },
                st.size,
                st.nlink,
                st.blocks
            );
        }
        other => return Err(SwarmError::invalid(format!("unknown fs command {other:?}"))),
    }
    Ok(())
}

fn log_command(args: &Args) -> Result<()> {
    let sub = args.positional.get(1).map(|s| s.as_str()).unwrap_or("dump");
    if sub != "dump" {
        return Err(SwarmError::invalid(format!("unknown log command {sub:?}")));
    }
    let spec = args.require("servers")?;
    let transport = transport_for(spec)?;
    let ids: Vec<_> = parse_servers(spec)?.into_iter().map(|(id, _)| id).collect();
    let config = LogConfig::new(client_id(args)?, ids)?
        .write_window(write_window(args)?)
        .read_window(read_window(args)?);
    let config = apply_geometry(args, config)?;
    let (log, replay) = recover(transport, config, &[STING_SVC])?;
    println!(
        "log of {}: next fragment seq {}, {} entries since the oldest needed checkpoint",
        log.client(),
        log.next_seq(),
        replay.entries.len()
    );
    for (svc, (pos, data)) in &replay.checkpoints {
        println!(
            "checkpoint {svc} @ seq {} offset {} ({} bytes)",
            pos.seq,
            pos.offset,
            data.len()
        );
    }
    for entry in &replay.entries {
        use swarm_log::Entry;
        let desc = match &entry.entry {
            Entry::Block { service, data, .. } => {
                format!(
                    "{service} BLOCK {} bytes @ {:?}",
                    data.len(),
                    entry.block_addr
                )
            }
            Entry::Record {
                service,
                kind,
                data,
            } if *service == swarm_types::ServiceId::LOG_LAYER
                && *kind == swarm_log::log::log_record::CHECKPOINT_DIR =>
            {
                match swarm_log::log::decode_checkpoint_dir(data) {
                    Ok(dir) => format!(
                        "LOG CHECKPOINT-DIRECTORY {{ {} }}",
                        dir.iter()
                            .map(|(s, p)| format!("{s}@seq{}+{}", p.seq, p.offset))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    Err(_) => "LOG CHECKPOINT-DIRECTORY (unreadable)".into(),
                }
            }
            Entry::Record {
                service,
                kind,
                data,
            } => {
                format!("{service} RECORD kind={kind} {} bytes", data.len())
            }
            Entry::Delete { service, addr } => format!("{service} DELETE {addr}"),
            Entry::Checkpoint { service, data } => {
                format!("{service} CHECKPOINT {} bytes", data.len())
            }
        };
        println!(
            "seq {:>6} off {:>8}  {desc}",
            entry.pos.seq, entry.pos.offset
        );
    }
    Ok(())
}

fn frag_command(args: &Args) -> Result<()> {
    let sub = args.positional.get(1).map(|s| s.as_str());
    let Some("locate") = sub else {
        return Err(SwarmError::invalid("usage: swarm-admin frag locate <seq>"));
    };
    let seq: u64 = args
        .positional
        .get(2)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| SwarmError::invalid("frag locate: missing or bad <seq>"))?;
    let transport = transport_for(args.require("servers")?)?;
    let client = client_id(args)?;
    let fid = swarm_types::FragmentId::new(client, seq);
    let pool = Arc::new(swarm_net::ConnectionPool::new(transport, client));
    match swarm_log::reconstruct::locate_fragment(&pool, fid) {
        Some((server, header)) => {
            println!(
                "{fid}: on {server}; stripe {} (members seq {}..{}), index {}, parity index {},                  {} body bytes{}",
                header.stripe,
                header.stripe_first_seq,
                header.stripe_first_seq + header.member_count as u64 - 1,
                header.my_index,
                header.parity_index,
                header.body_len,
                if header.is_parity() { " [PARITY]" } else { "" }
            );
            println!(
                "group: {}",
                header
                    .group
                    .iter()
                    .map(|s| s.to_string())
                    .collect::<Vec<_>>()
                    .join(" ")
            );
        }
        None => {
            // Not directly present: can it be reconstructed?
            match swarm_log::reconstruct::reconstruct_fragment(&pool, fid) {
                Ok(bytes) => println!(
                    "{fid}: NOT stored on any reachable server, but reconstructible                      from parity ({} bytes)",
                    bytes.len()
                ),
                Err(e) => println!("{fid}: not found and not reconstructible ({e})"),
            }
        }
    }
    Ok(())
}

fn clean(args: &Args) -> Result<()> {
    let (log, fs) = mount(args)?;
    let mut stack = ServiceStack::new();
    let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
    stack.register(svc)?;
    let policy = match args.get_or("policy", "cost-benefit") {
        "greedy" => CleanPolicy::Greedy,
        _ => CleanPolicy::CostBenefit,
    };
    let cleaner = Cleaner::new(log, Arc::new(stack), policy);
    let max = args.get_u64("max-stripes", 64)? as usize;
    let stats = cleaner.clean_pass(max)?;
    fs.unmount().map_err(fs_err)?;
    println!(
        "cleaned {} stripes, moved {} blocks ({} bytes), reclaimed {} bytes, forced {} checkpoints",
        stats.stripes_cleaned,
        stats.blocks_moved,
        stats.bytes_moved,
        stats.bytes_reclaimed,
        stats.forced_checkpoints
    );
    Ok(())
}
