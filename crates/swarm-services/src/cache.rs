//! The client-side caching service (§2.2, §3.4).
//!
//! The paper expects "most reads to be handled by the client cache" and
//! attributes Sting's benchmark win partly to it. [`LruCache`] is a
//! proper O(1) LRU (hash map + intrusive doubly-linked list over a slab);
//! [`CachingReader`] layers it over a [`Log`] as a read-through block
//! cache keyed by [`BlockAddr`].

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_log::Log;
use swarm_types::{BlockAddr, Bytes, Result};

const NIL: usize = usize::MAX;

struct Slot<K, V> {
    key: K,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// An O(1) least-recently-used cache.
///
/// # Example
///
/// ```
/// use swarm_services::LruCache;
///
/// let mut cache = LruCache::new(2);
/// cache.insert("a", 1);
/// cache.insert("b", 2);
/// cache.get(&"a");          // refresh "a"
/// cache.insert("c", 3);     // evicts "b", the coldest
/// assert_eq!(cache.get(&"b"), None);
/// assert_eq!(cache.get(&"a"), Some(&1));
/// ```
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
    hits: u64,
    misses: u64,
}

impl<K: std::fmt::Debug, V> std::fmt::Debug for LruCache<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.map.len())
            .field("capacity", &self.capacity)
            .field("hits", &self.hits)
            .field("misses", &self.misses)
            .finish()
    }
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache holding at most `capacity` entries (0 disables
    /// caching entirely).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
            hits: 0,
            misses: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// (hits, misses) since creation.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    /// Looks up `key`, refreshing its recency.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        match self.map.get(key).copied() {
            None => {
                self.misses += 1;
                None
            }
            Some(idx) => {
                self.hits += 1;
                self.unlink(idx);
                self.push_front(idx);
                self.slots[idx].value.as_ref()
            }
        }
    }

    /// Looks up without touching recency or stats (for tests/diagnostics).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slots[idx].value.as_ref())
    }

    /// Inserts (or replaces) an entry, evicting the coldest if full.
    /// Returns the evicted entry, if any.
    pub fn insert(&mut self, key: K, value: V) -> Option<(K, V)> {
        if self.capacity == 0 {
            return None;
        }
        if let Some(&idx) = self.map.get(&key) {
            self.slots[idx].value = Some(value);
            self.unlink(idx);
            self.push_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL);
            self.unlink(victim);
            let slot = &mut self.slots[victim];
            self.map.remove(&slot.key);
            let old_key = slot.key.clone();
            let old_val = slot.value.take().expect("occupied slot has a value");
            self.free.push(victim);
            evicted = Some((old_key, old_val));
        }
        let idx = match self.free.pop() {
            Some(idx) => {
                self.slots[idx] = Slot {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                };
                idx
            }
            None => {
                self.slots.push(Slot {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                self.slots.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.push_front(idx);
        evicted
    }

    /// Removes an entry, returning its value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.map.remove(key)?;
        self.unlink(idx);
        self.free.push(idx);
        self.slots[idx].value.take()
    }

    /// Drops everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }
}

/// A read-through block cache over a [`Log`].
///
/// Cached blocks are [`Bytes`] — shared slices of the fragments the log
/// fetched, so a cache hit hands back a refcount bump, not a copy.
pub struct CachingReader {
    log: Arc<Log>,
    cache: Mutex<LruCache<BlockAddr, Bytes>>,
}

impl std::fmt::Debug for CachingReader {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachingReader")
            .field("cache", &*self.cache.lock())
            .finish()
    }
}

impl CachingReader {
    /// Wraps `log` with a cache of `capacity` blocks.
    pub fn new(log: Arc<Log>, capacity: usize) -> CachingReader {
        CachingReader {
            log,
            cache: Mutex::new(LruCache::new(capacity)),
        }
    }

    /// Reads `addr`, serving repeats from memory.
    ///
    /// # Errors
    ///
    /// Propagates log read failures on a miss.
    pub fn read(&self, addr: BlockAddr) -> Result<Bytes> {
        if let Some(hit) = self.cache.lock().get(&addr) {
            return Ok(hit.share());
        }
        let data = self.log.read(addr)?;
        self.cache.lock().insert(addr, data.share());
        Ok(data)
    }

    /// Pre-populates the cache (e.g. with data the caller just wrote).
    pub fn put(&self, addr: BlockAddr, data: Bytes) {
        self.cache.lock().insert(addr, data);
    }

    /// Drops one address (cleaner moved/deleted the block).
    pub fn invalidate(&self, addr: BlockAddr) {
        self.cache.lock().remove(&addr);
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        self.cache.lock().stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_lru_eviction_order() {
        let mut c = LruCache::new(3);
        c.insert(1, "one");
        c.insert(2, "two");
        c.insert(3, "three");
        c.get(&1); // 1 hot; 2 coldest
        let evicted = c.insert(4, "four");
        assert_eq!(evicted, Some((2, "two")));
        assert!(c.peek(&2).is_none());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn reinsert_refreshes_and_replaces() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // refresh + replace: "b" is now coldest
        c.insert("c", 3);
        assert_eq!(c.peek(&"a"), Some(&10));
        assert_eq!(c.peek(&"b"), None);
    }

    #[test]
    fn remove_and_reuse_slots() {
        let mut c = LruCache::new(2);
        c.insert(1, "x");
        assert_eq!(c.remove(&1), Some("x"));
        assert!(c.is_empty());
        c.insert(2, "y");
        c.insert(3, "z");
        assert_eq!(c.len(), 2);
        assert_eq!(c.peek(&2), Some(&"y"));
        assert_eq!(c.peek(&3), Some(&"z"));
    }

    #[test]
    fn zero_capacity_never_stores() {
        let mut c = LruCache::new(0);
        c.insert(1, 1);
        assert!(c.is_empty());
        assert_eq!(c.get(&1), None);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut c = LruCache::new(2);
        c.insert(1, 1);
        c.get(&1);
        c.get(&2);
        assert_eq!(c.stats(), (1, 1));
    }

    #[test]
    fn clear_resets() {
        let mut c = LruCache::new(4);
        for i in 0..4 {
            c.insert(i, i);
        }
        c.clear();
        assert!(c.is_empty());
        c.insert(9, 9);
        assert_eq!(c.peek(&9), Some(&9));
    }

    proptest! {
        /// The cache agrees with a naive model under arbitrary op
        /// sequences.
        #[test]
        fn prop_matches_naive_model(
            ops in proptest::collection::vec((0u8..3, 0u16..12, any::<u32>()), 1..300),
            cap in 1usize..6,
        ) {
            let mut cache = LruCache::new(cap);
            // Model: Vec<(key, value)> in MRU→LRU order.
            let mut model: Vec<(u16, u32)> = Vec::new();
            for (op, key, value) in ops {
                match op {
                    0 => {
                        // insert
                        cache.insert(key, value);
                        model.retain(|(k, _)| *k != key);
                        model.insert(0, (key, value));
                        model.truncate(cap);
                    }
                    1 => {
                        // get
                        let got = cache.get(&key).copied();
                        let pos = model.iter().position(|(k, _)| *k == key);
                        let want = pos.map(|p| {
                            let e = model.remove(p);
                            model.insert(0, e);
                            e.1
                        });
                        prop_assert_eq!(got, want);
                    }
                    _ => {
                        // remove
                        let got = cache.remove(&key);
                        let pos = model.iter().position(|(k, _)| *k == key);
                        let want = pos.map(|p| model.remove(p).1);
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(cache.len(), model.len());
            }
        }
    }
}
