//! The logical disk service: overwritable blocks on an append-only log.
//!
//! The paper lists "a logical disk service that provides a disk
//! abstraction that hides the append-only log, allowing higher-level
//! services and applications to overwrite the blocks they store" (§2.2,
//! citing De Jonge et al.). A [`LogicalDisk`] maps logical block numbers
//! to log addresses; a write appends a fresh block (its creation record
//! names the logical block number), deletes the superseded copy, and
//! updates the map. Crash recovery rebuilds the map from the checkpoint
//! plus replayed block creations; cleaning updates it through
//! [`Service::block_moved`].

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_log::{Entry, Log, ReplayEntry};
use swarm_types::{
    BlockAddr, ByteReader, ByteWriter, Bytes, Decode, Encode, FragmentId, Result, ServiceId,
    SwarmError,
};

use crate::service::Service;

/// Interval (in writes) between automatic checkpoints; 0 disables.
const DEFAULT_CHECKPOINT_EVERY: u64 = 0;

#[derive(Debug, Default)]
struct DiskState {
    map: BTreeMap<u64, BlockAddr>,
    writes_since_checkpoint: u64,
}

/// An overwritable array of logical blocks stored in the Swarm log.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use swarm_services::LogicalDisk;
/// use swarm_types::ServiceId;
///
/// # fn log() -> Arc<swarm_log::Log> { unimplemented!() }
/// let disk = LogicalDisk::new(ServiceId::new(3), log());
/// disk.write(0, b"first block")?;
/// disk.write(0, b"overwritten")?;  // same logical block
/// disk.flush()?;
/// assert_eq!(disk.read(0)?.as_deref(), Some(b"overwritten".as_slice()));
/// # Ok::<(), swarm_types::SwarmError>(())
/// ```
pub struct LogicalDisk {
    id: ServiceId,
    log: Arc<Log>,
    state: Mutex<DiskState>,
    checkpoint_every: u64,
}

impl std::fmt::Debug for LogicalDisk {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LogicalDisk")
            .field("id", &self.id)
            .field("blocks", &self.state.lock().map.len())
            .finish()
    }
}

fn create_info(lba: u64) -> [u8; 8] {
    lba.to_le_bytes()
}

fn parse_create(create: &[u8]) -> Result<u64> {
    let bytes: [u8; 8] = create
        .try_into()
        .map_err(|_| SwarmError::corrupt("logical disk creation record must be 8 bytes"))?;
    Ok(u64::from_le_bytes(bytes))
}

impl LogicalDisk {
    /// Creates an empty logical disk writing through `log` as service
    /// `id`.
    pub fn new(id: ServiceId, log: Arc<Log>) -> LogicalDisk {
        LogicalDisk {
            id,
            log,
            state: Mutex::new(DiskState::default()),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }

    /// Automatically checkpoint after every `n` writes (0 = only on
    /// demand).
    pub fn with_checkpoint_every(mut self, n: u64) -> LogicalDisk {
        self.checkpoint_every = n;
        self
    }

    /// Writes (or overwrites) logical block `lba`.
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn write(&self, lba: u64, data: &[u8]) -> Result<()> {
        let addr = self.log.append_block(self.id, &create_info(lba), data)?;
        let old = {
            let mut state = self.state.lock();
            state.writes_since_checkpoint += 1;
            state.map.insert(lba, addr)
        };
        if let Some(old) = old {
            // The superseded copy is now dead; tell the cleaner via a
            // delete record.
            self.log.delete_block(self.id, old)?;
        }
        let due = self.checkpoint_every > 0
            && self.state.lock().writes_since_checkpoint >= self.checkpoint_every;
        if due {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Reads logical block `lba`; `None` if never written (or trimmed).
    ///
    /// # Errors
    ///
    /// Propagates log read failures (the mapped block should always be
    /// readable, via reconstruction if needed).
    pub fn read(&self, lba: u64) -> Result<Option<Bytes>> {
        let addr = { self.state.lock().map.get(&lba).copied() };
        match addr {
            None => Ok(None),
            Some(addr) => Ok(Some(self.log.read(addr)?)),
        }
    }

    /// Discards logical block `lba` (like TRIM).
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn trim(&self, lba: u64) -> Result<()> {
        let old = self.state.lock().map.remove(&lba);
        if let Some(old) = old {
            self.log.delete_block(self.id, old)?;
        }
        Ok(())
    }

    /// Number of live logical blocks.
    pub fn len(&self) -> usize {
        self.state.lock().map.len()
    }

    /// `true` if no logical block is live.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flushes underlying log writes to the servers.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn flush(&self) -> Result<()> {
        self.log.flush()
    }

    /// Serializes the lba→address map and writes it as a checkpoint.
    ///
    /// # Errors
    ///
    /// Propagates log failures.
    pub fn checkpoint(&self) -> Result<()> {
        let payload = {
            let mut state = self.state.lock();
            state.writes_since_checkpoint = 0;
            let mut w = ByteWriter::new();
            w.put_u64(state.map.len() as u64);
            for (lba, addr) in &state.map {
                w.put_u64(*lba);
                addr.encode(&mut w);
            }
            w.into_bytes()
        };
        self.log.checkpoint(self.id, &payload)?;
        Ok(())
    }

    fn load_checkpoint(&self, data: &[u8]) -> Result<()> {
        let mut r = ByteReader::new(data);
        let n = r.get_u64()? as usize;
        let mut map = BTreeMap::new();
        for _ in 0..n {
            let lba = r.get_u64()?;
            let addr = BlockAddr::decode(&mut r)?;
            map.insert(lba, addr);
        }
        if !r.is_empty() {
            return Err(SwarmError::corrupt(
                "trailing bytes in logical disk checkpoint",
            ));
        }
        self.state.lock().map = map;
        Ok(())
    }
}

/// The [`Service`] face of a [`LogicalDisk`] — register this with the
/// [`crate::ServiceStack`] so recovery and cleaning reach the disk.
pub struct LogicalDiskService {
    disk: Arc<LogicalDisk>,
}

impl LogicalDiskService {
    /// Wraps a disk for stack registration.
    pub fn new(disk: Arc<LogicalDisk>) -> Self {
        LogicalDiskService { disk }
    }
}

impl Service for LogicalDiskService {
    fn id(&self) -> ServiceId {
        self.disk.id
    }

    fn name(&self) -> &str {
        "logical-disk"
    }

    fn restore_checkpoint(&mut self, data: &[u8]) -> Result<()> {
        self.disk.load_checkpoint(data)
    }

    fn replay(&mut self, entry: &ReplayEntry) -> Result<()> {
        match &entry.entry {
            Entry::Block { create, .. } => {
                let lba = parse_create(create)?;
                let addr = entry
                    .block_addr
                    .ok_or_else(|| SwarmError::corrupt("block entry without address"))?;
                self.disk.state.lock().map.insert(lba, addr);
            }
            Entry::Delete { addr, .. } => {
                let mut state = self.disk.state.lock();
                // A delete record marks the *old* copy dead. Only remove
                // the mapping if it still points at that copy (an
                // overwrite's delete must not kill the new mapping).
                state.map.retain(|_, v| v != addr);
            }
            Entry::Record { .. } => {} // logical disk writes no custom records
            Entry::Checkpoint { .. } => {
                return Err(SwarmError::corrupt("checkpoint routed to replay"))
            }
        }
        Ok(())
    }

    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
        let lba = parse_create(create)?;
        let mut state = self.disk.state.lock();
        match state.map.get(&lba) {
            Some(current) if *current == old => {
                state.map.insert(lba, new);
                Ok(())
            }
            // The block was overwritten since the cleaner read it; the
            // moved copy is already dead. Nothing to patch.
            _ => Ok(()),
        }
    }

    fn write_checkpoint(&mut self, _log: &Log) -> Result<()> {
        self.disk.checkpoint()
    }
}

// Keep FragmentId referenced so docs can link it (it appears in BlockAddr).
#[allow(unused)]
fn _doc_anchor(_: FragmentId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_log::{recover, LogConfig};
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ClientId, ServerId};

    fn cluster(n: u32) -> Arc<MemTransport> {
        let transport = Arc::new(MemTransport::new());
        for i in 0..n {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv);
        }
        transport
    }

    fn config(servers: u32) -> LogConfig {
        LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
            .unwrap()
            .fragment_size(4096)
    }

    const DISK_SVC: ServiceId = ServiceId::new(3);

    #[test]
    fn write_read_overwrite() {
        let transport = cluster(2);
        let log = Arc::new(Log::create(transport, config(2)).unwrap());
        let disk = LogicalDisk::new(DISK_SVC, log);
        disk.write(5, b"v1").unwrap();
        disk.write(5, b"v2").unwrap();
        disk.write(9, b"other").unwrap();
        disk.flush().unwrap();
        assert_eq!(disk.read(5).unwrap().unwrap(), b"v2");
        assert_eq!(disk.read(9).unwrap().unwrap(), b"other");
        assert_eq!(disk.read(100).unwrap(), None);
        assert_eq!(disk.len(), 2);
    }

    #[test]
    fn trim_removes_block() {
        let transport = cluster(2);
        let log = Arc::new(Log::create(transport, config(2)).unwrap());
        let disk = LogicalDisk::new(DISK_SVC, log);
        disk.write(1, b"x").unwrap();
        disk.trim(1).unwrap();
        disk.flush().unwrap();
        assert_eq!(disk.read(1).unwrap(), None);
        assert!(disk.is_empty());
    }

    #[test]
    fn recovery_from_checkpoint_and_records() {
        let transport = cluster(2);
        {
            let log = Arc::new(Log::create(transport.clone(), config(2)).unwrap());
            let disk = LogicalDisk::new(DISK_SVC, log);
            disk.write(1, b"one-v1").unwrap();
            disk.write(2, b"two").unwrap();
            disk.checkpoint().unwrap();
            disk.write(1, b"one-v2").unwrap(); // after checkpoint
            disk.write(3, b"three").unwrap();
            disk.trim(2).unwrap();
            disk.flush().unwrap();
            // crash
        }
        let (log, replay) = recover(transport, config(2), &[DISK_SVC]).unwrap();
        let log = Arc::new(log);
        let disk = Arc::new(LogicalDisk::new(DISK_SVC, log.clone()));
        let mut svc = LogicalDiskService::new(disk.clone());
        if let Some(data) = replay.checkpoint_data(DISK_SVC) {
            svc.restore_checkpoint(data).unwrap();
        }
        for e in replay.records_for(DISK_SVC) {
            svc.replay(e).unwrap();
        }
        assert_eq!(disk.read(1).unwrap().unwrap(), b"one-v2");
        assert_eq!(disk.read(2).unwrap(), None, "trimmed after checkpoint");
        assert_eq!(disk.read(3).unwrap().unwrap(), b"three");
    }

    #[test]
    fn recovery_without_checkpoint() {
        let transport = cluster(2);
        {
            let log = Arc::new(Log::create(transport.clone(), config(2)).unwrap());
            let disk = LogicalDisk::new(DISK_SVC, log);
            disk.write(7, b"seven").unwrap();
            disk.flush().unwrap();
        }
        let (log, replay) = recover(transport, config(2), &[DISK_SVC]).unwrap();
        let disk = Arc::new(LogicalDisk::new(DISK_SVC, Arc::new(log)));
        let mut svc = LogicalDiskService::new(disk.clone());
        for e in replay.records_for(DISK_SVC) {
            svc.replay(e).unwrap();
        }
        assert_eq!(disk.read(7).unwrap().unwrap(), b"seven");
    }

    #[test]
    fn block_moved_patches_only_current_mapping() {
        let transport = cluster(2);
        let log = Arc::new(Log::create(transport, config(2)).unwrap());
        let disk = Arc::new(LogicalDisk::new(DISK_SVC, log.clone()));
        disk.write(4, b"payload").unwrap();
        disk.flush().unwrap();
        let old = *disk.state.lock().map.get(&4).unwrap();
        let new_addr = log
            .append_block(DISK_SVC, &create_info(4), b"payload")
            .unwrap();
        log.flush().unwrap();
        let mut svc = LogicalDiskService::new(disk.clone());
        svc.block_moved(old, new_addr, &create_info(4)).unwrap();
        assert_eq!(*disk.state.lock().map.get(&4).unwrap(), new_addr);
        // A stale move (old addr no longer current) is a no-op.
        svc.block_moved(old, new_addr, &create_info(4)).unwrap();
        assert_eq!(*disk.state.lock().map.get(&4).unwrap(), new_addr);
    }

    #[test]
    fn auto_checkpoint_interval() {
        let transport = cluster(2);
        let log = Arc::new(Log::create(transport, config(2)).unwrap());
        let disk = LogicalDisk::new(DISK_SVC, log.clone()).with_checkpoint_every(3);
        for i in 0..7 {
            disk.write(i, b"data").unwrap();
        }
        assert!(log.last_checkpoint(DISK_SVC).is_some());
    }

    #[test]
    fn acts_like_an_array_under_random_ops() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let transport = cluster(3);
        let log = Arc::new(Log::create(transport, config(3)).unwrap());
        let disk = LogicalDisk::new(DISK_SVC, log);
        let mut model: std::collections::HashMap<u64, Vec<u8>> = Default::default();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..300 {
            let lba = rng.gen_range(0..20);
            match rng.gen_range(0..3) {
                0 | 1 => {
                    let data: Vec<u8> = (0..rng.gen_range(1..200)).map(|_| rng.gen()).collect();
                    disk.write(lba, &data).unwrap();
                    model.insert(lba, data);
                }
                _ => {
                    disk.trim(lba).unwrap();
                    model.remove(&lba);
                }
            }
        }
        disk.flush().unwrap();
        for lba in 0..20 {
            assert_eq!(
                disk.read(lba).unwrap().map(|b| b.to_vec()),
                model.get(&lba).cloned(),
                "lba {lba}"
            );
        }
    }
}
