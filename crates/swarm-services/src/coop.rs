//! Cooperative caching: clients serve each other's cache misses over the
//! network.
//!
//! §2.2 lists "distributed cooperative caching \[14\]" (Sarkar &
//! Hartman's hint-based scheme) among the services that can be layered on
//! Swarm. The idea: a block evicted from one client's cache may still be
//! hot in another's; fetching it from a peer's memory beats a server disk
//! access. Following the cited paper, lookup is by *hints* — a local,
//! possibly stale table of "who probably caches this block" — so there is
//! no central directory and no synchronization on the read path (Swarm's
//! design goal, §2).
//!
//! The data path is a real RPC: each [`CoopCache`] publishes a tiny
//! responder at [`peer_server_id`]`(client)` through the transport's
//! [`PeerHost`] hosting (over TCP that is a client-embedded mux server;
//! in-memory it is direct dispatch). Peers dial it like any storage
//! server and issue `PeerRead`. Directory hints travel three ways:
//!
//! * piggybacked on every `PeerRead` request and `PeerData` response
//!   (capped at [`MAX_PIGGYBACK_HINTS`] per frame);
//! * pushed opportunistically via `PeerGossip` to [`GOSSIP_FANOUT`]
//!   ring-order neighbours after a server fetch or local write;
//! * never synchronized — a wrong hint costs one wasted probe, after
//!   which the reader falls through to the home servers.
//!
//! The [`CoopCacheGroup`] is only the membership rendezvous (who is in
//! the ring); all block data moves over the transport.

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use swarm_log::Log;
use swarm_net::{peer_server_id, HintSpec, PeerTransport, Request, RequestHandler, Response};
use swarm_types::{BlockAddr, Bytes, ClientId, Result, SwarmError};

use crate::cache::LruCache;

/// Most hints a single `PeerRead`/`PeerData`/`PeerGossip` frame carries.
pub const MAX_PIGGYBACK_HINTS: usize = 16;

/// How many ring-order neighbours receive a `PeerGossip` push after a
/// server fetch or local write.
pub const GOSSIP_FANOUT: usize = 4;

struct CoopMetrics {
    local_hits: swarm_metrics::Counter,
    peer_hits: swarm_metrics::Counter,
    stale_hints: swarm_metrics::Counter,
    server_fetches: swarm_metrics::Counter,
    served_to_peers: swarm_metrics::Counter,
    peer_errors: swarm_metrics::Counter,
    gossip_sent: swarm_metrics::Counter,
    gossip_received: swarm_metrics::Counter,
}

fn coop_metrics() -> &'static CoopMetrics {
    static M: std::sync::OnceLock<CoopMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| CoopMetrics {
        local_hits: swarm_metrics::counter("coop.local_hits"),
        peer_hits: swarm_metrics::counter("coop.peer_hits"),
        stale_hints: swarm_metrics::counter("coop.stale_hints"),
        server_fetches: swarm_metrics::counter("coop.server_fetches"),
        served_to_peers: swarm_metrics::counter("coop.served_to_peers"),
        peer_errors: swarm_metrics::counter("coop.peer_errors"),
        gossip_sent: swarm_metrics::counter("coop.gossip_sent"),
        gossip_received: swarm_metrics::counter("coop.gossip_received"),
    })
}

/// Statistics for one cooperative cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopStats {
    /// Served from this client's own cache.
    pub local_hits: u64,
    /// Served from a peer's cache via a hint.
    pub peer_hits: u64,
    /// Hints that pointed at a peer that no longer had the block.
    pub stale_hints: u64,
    /// Fetched from the storage servers.
    pub server_fetches: u64,
    /// Blocks this client served to peers.
    pub served_to_peers: u64,
    /// Peer probes that failed at the transport (peer dead or departed).
    pub peer_errors: u64,
}

/// The set of clients cooperating over one transport.
///
/// Purely a membership rendezvous: it tells each member who its
/// gossip-ring neighbours are. Block data and hints move over the
/// transport, not through this registry.
#[derive(Default)]
pub struct CoopCacheGroup {
    members: RwLock<BTreeSet<ClientId>>,
}

impl std::fmt::Debug for CoopCacheGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopCacheGroup")
            .field("members", &self.members.read().len())
            .finish()
    }
}

impl CoopCacheGroup {
    /// Creates an empty group.
    pub fn new() -> Arc<CoopCacheGroup> {
        Arc::new(CoopCacheGroup::default())
    }

    /// Current members, in id order (diagnostics/tests).
    pub fn members(&self) -> Vec<ClientId> {
        self.members.read().iter().copied().collect()
    }

    /// The next [`GOSSIP_FANOUT`] members after `from` in ring order.
    /// Deterministic by construction, so seeded harnesses replay.
    fn gossip_targets(&self, from: ClientId) -> Vec<ClientId> {
        let members = self.members.read();
        members
            .iter()
            .copied()
            .filter(|m| *m > from)
            .chain(members.iter().copied().filter(|m| *m < from))
            .take(GOSSIP_FANOUT)
            .collect()
    }
}

/// State shared between a [`CoopCache`] front end and its network
/// responder (which runs on transport threads).
struct Shared {
    client: ClientId,
    cache: Mutex<LruCache<BlockAddr, Bytes>>,
    /// Hints: block → peer believed to cache it. Possibly stale by
    /// design; never synchronized.
    hints: Mutex<LruCache<BlockAddr, ClientId>>,
    /// Recently learned "I cache X" facts, drained onto outgoing frames
    /// (the piggybacked directory gossip). Bounded; oldest fall off.
    recent: Mutex<VecDeque<HintSpec>>,
    served_to_peers: AtomicU64,
}

impl Shared {
    /// Folds piggybacked hints from a peer into the local directory.
    fn absorb(&self, hints: &[HintSpec]) {
        let mut table = self.hints.lock();
        for h in hints {
            if h.holder != self.client {
                table.insert(h.addr, h.holder);
            }
        }
    }

    /// Records that this client now caches `addr`, for future gossip.
    fn note_cached(&self, addr: BlockAddr) {
        let mut recent = self.recent.lock();
        recent.retain(|h| h.addr != addr);
        recent.push_back(HintSpec {
            addr,
            holder: self.client,
        });
        while recent.len() > MAX_PIGGYBACK_HINTS * 4 {
            recent.pop_front();
        }
    }

    /// Newest facts to ride an outgoing frame (not drained: hints are
    /// cheap and repeating them tolerates loss).
    fn outgoing_hints(&self) -> Vec<HintSpec> {
        let recent = self.recent.lock();
        recent
            .iter()
            .rev()
            .take(MAX_PIGGYBACK_HINTS)
            .copied()
            .collect()
    }
}

/// The client-embedded network responder for one cooperative cache.
struct PeerResponder {
    shared: Arc<Shared>,
}

impl RequestHandler for PeerResponder {
    fn handle(&self, _client: ClientId, request: Request) -> Response {
        match request {
            Request::PeerRead { addr, hints } => {
                self.shared.absorb(&hints);
                let data = self.shared.cache.lock().get(&addr).map(Bytes::share);
                if data.is_some() {
                    self.shared.served_to_peers.fetch_add(1, Ordering::Relaxed);
                    coop_metrics().served_to_peers.inc();
                }
                Response::PeerData {
                    data,
                    hints: self.shared.outgoing_hints(),
                }
            }
            Request::PeerGossip { hints } => {
                self.shared.absorb(&hints);
                coop_metrics().gossip_received.inc();
                Response::Ok
            }
            _ => Response::from_error(&SwarmError::invalid(
                "peer responders serve PeerRead/PeerGossip only",
            )),
        }
    }

    /// Peer reads are pure in-memory lookups — safe on a reactor thread.
    fn try_handle_fast(&self, client: ClientId, request: &Request) -> Option<Response> {
        match request {
            Request::PeerRead { .. } | Request::PeerGossip { .. } => {
                Some(self.handle(client, request.clone()))
            }
            _ => None,
        }
    }
}

/// One client's cooperatively-shared block cache over a [`Log`].
pub struct CoopCache {
    log: Arc<Log>,
    group: Arc<CoopCacheGroup>,
    transport: Arc<dyn PeerTransport>,
    shared: Arc<Shared>,
    stats: Mutex<CoopStats>,
}

impl std::fmt::Debug for CoopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopCache")
            .field("client", &self.shared.client)
            .field("stats", &self.stats())
            .finish()
    }
}

impl CoopCache {
    /// Joins `group` with a cache of `capacity` blocks, publishing this
    /// client's peer responder on `transport`.
    ///
    /// # Errors
    ///
    /// Fails if the transport cannot host the responder (e.g. a TCP
    /// listener cannot be bound).
    pub fn join(
        group: Arc<CoopCacheGroup>,
        client: ClientId,
        log: Arc<Log>,
        capacity: usize,
        transport: Arc<dyn PeerTransport>,
    ) -> Result<Arc<CoopCache>> {
        let shared = Arc::new(Shared {
            client,
            cache: Mutex::new(LruCache::new(capacity)),
            hints: Mutex::new(LruCache::new(capacity * 4)),
            recent: Mutex::new(VecDeque::new()),
            served_to_peers: AtomicU64::new(0),
        });
        transport.publish(
            peer_server_id(client),
            Arc::new(PeerResponder {
                shared: shared.clone(),
            }),
        )?;
        group.members.write().insert(client);
        Ok(Arc::new(CoopCache {
            log,
            group,
            transport,
            shared,
            stats: Mutex::new(CoopStats::default()),
        }))
    }

    /// Leaves the group (on client shutdown): withdraws the responder so
    /// peers' dials fail fast and fall through to the home servers.
    pub fn leave(&self) {
        self.group.members.write().remove(&self.shared.client);
        self.transport.withdraw(peer_server_id(self.shared.client));
    }

    /// This cache's client id.
    pub fn client(&self) -> ClientId {
        self.shared.client
    }

    /// Plants a hint: "peer probably caches `addr`". Hints arrive from
    /// peers' gossip or out-of-band knowledge; they are never verified
    /// eagerly.
    pub fn hint(&self, addr: BlockAddr, peer: ClientId) {
        if peer != self.shared.client {
            self.shared.hints.lock().insert(addr, peer);
        }
    }

    /// Reads a block: own cache → hinted peer (one RPC) → storage
    /// servers. A dead or stale peer costs one bounded probe, after which
    /// the home-server read path (including reconstruction) takes over.
    ///
    /// # Errors
    ///
    /// Propagates server errors when both cache tiers miss.
    pub fn read(&self, addr: BlockAddr) -> Result<Bytes> {
        if let Some(hit) = self.shared.cache.lock().get(&addr).map(Bytes::share) {
            self.stats.lock().local_hits += 1;
            coop_metrics().local_hits.inc();
            return Ok(hit);
        }
        // Hint path: one probe, no retries (the cited design keeps the
        // miss penalty bounded).
        let hinted = self.shared.hints.lock().get(&addr).copied();
        if let Some(peer) = hinted {
            match self.probe(peer, addr) {
                Ok(Some(block)) => {
                    self.stats.lock().peer_hits += 1;
                    coop_metrics().peer_hits.inc();
                    self.shared.cache.lock().insert(addr, block.share());
                    self.shared.note_cached(addr);
                    return Ok(block);
                }
                Ok(None) => {
                    self.stats.lock().stale_hints += 1;
                    coop_metrics().stale_hints.inc();
                    self.shared.hints.lock().remove(&addr);
                }
                Err(_) => {
                    // Peer dead/departed: drop the hint and fall through
                    // to the home servers — never an error for the reader.
                    self.stats.lock().peer_errors += 1;
                    coop_metrics().peer_errors.inc();
                    self.shared.hints.lock().remove(&addr);
                }
            }
        }
        let block = self.log.read(addr)?;
        self.stats.lock().server_fetches += 1;
        coop_metrics().server_fetches.inc();
        self.shared.cache.lock().insert(addr, block.share());
        self.shared.note_cached(addr);
        self.announce();
        Ok(block)
    }

    /// Inserts locally-written data and gossips its location to peers.
    pub fn put(&self, addr: BlockAddr, data: Bytes) {
        self.shared.cache.lock().insert(addr, data);
        self.shared.note_cached(addr);
        self.announce();
    }

    /// One `PeerRead` RPC to `peer`'s responder, hints piggybacked both
    /// ways.
    fn probe(&self, peer: ClientId, addr: BlockAddr) -> Result<Option<Bytes>> {
        let mut conn = self
            .transport
            .connect(peer_server_id(peer), self.shared.client)?;
        let request = Request::PeerRead {
            addr,
            hints: self.shared.outgoing_hints(),
        };
        match conn.call(&request)? {
            Response::PeerData { data, hints } => {
                self.shared.absorb(&hints);
                Ok(data)
            }
            Response::Err { .. } => Ok(None),
            other => Err(SwarmError::corrupt(format!(
                "unexpected peer response: {other:?}"
            ))),
        }
    }

    /// Pushes this client's newest directory facts to its ring
    /// neighbours. Best-effort: an unreachable neighbour is skipped.
    fn announce(&self) {
        let hints = self.shared.outgoing_hints();
        if hints.is_empty() {
            return;
        }
        for peer in self.group.gossip_targets(self.shared.client) {
            let Ok(mut conn) = self
                .transport
                .connect(peer_server_id(peer), self.shared.client)
            else {
                coop_metrics().peer_errors.inc();
                continue;
            };
            match conn.call(&Request::PeerGossip {
                hints: hints.clone(),
            }) {
                Ok(_) => coop_metrics().gossip_sent.inc(),
                Err(_) => coop_metrics().peer_errors.inc(),
            }
        }
    }

    /// Statistics snapshot (including blocks served to peers).
    pub fn stats(&self) -> CoopStats {
        let mut s = *self.stats.lock();
        s.served_to_peers = self.shared.served_to_peers.load(Ordering::Relaxed);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_log::LogConfig;
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ServerId, ServiceId};

    const SVC: ServiceId = ServiceId::new(1);

    type Setup = (
        Arc<MemTransport>,
        Vec<Arc<StorageServer<MemStore>>>,
        Arc<Log>,
        Arc<Log>,
    );

    fn setup() -> Setup {
        let transport = Arc::new(MemTransport::new());
        let mut servers = Vec::new();
        for i in 0..2 {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv.clone());
            servers.push(srv);
        }
        let cfg = |c: u32| {
            LogConfig::new(ClientId::new(c), vec![ServerId::new(0), ServerId::new(1)])
                .unwrap()
                .fragment_size(8 * 1024)
                .cache_fragments(0) // isolate the coop cache tier
        };
        let log1 = Arc::new(Log::create(transport.clone(), cfg(1)).unwrap());
        let log2 = Arc::new(Log::create(transport.clone(), cfg(2)).unwrap());
        (transport, servers, log1, log2)
    }

    fn join(
        t: &Arc<MemTransport>,
        group: &Arc<CoopCacheGroup>,
        c: u32,
        log: Arc<Log>,
        cap: usize,
    ) -> Arc<CoopCache> {
        CoopCache::join(group.clone(), ClientId::new(c), log, cap, t.clone()).unwrap()
    }

    #[test]
    fn peer_hit_avoids_the_server() {
        let (t, servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"shared hot block").unwrap();
        log1.flush().unwrap();

        let group = CoopCacheGroup::new();
        let c1 = join(&t, &group, 1, log1, 16);
        let c2 = join(&t, &group, 2, log2, 16);

        // Client 1 reads from the servers; the gossip push plants a hint
        // at client 2.
        assert_eq!(&*c1.read(addr).unwrap(), b"shared hot block");
        let reads_before: u64 = servers.iter().map(|s| s.stats().reads).sum();

        // Client 2's read is served by client 1's cache over a PeerRead
        // RPC — zero storage-server I/O.
        assert_eq!(&*c2.read(addr).unwrap(), b"shared hot block");
        let reads_after: u64 = servers.iter().map(|s| s.stats().reads).sum();
        assert_eq!(reads_after, reads_before, "peer hit must not touch servers");
        assert_eq!(c2.stats().peer_hits, 1);
        assert_eq!(c1.stats().served_to_peers, 1);
    }

    #[test]
    fn stale_hints_fall_through_to_servers() {
        let (t, _servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"evictable").unwrap();
        log1.flush().unwrap();

        let group = CoopCacheGroup::new();
        let c1 = join(&t, &group, 1, log1, 1);
        let c2 = join(&t, &group, 2, log2, 16);
        c1.read(addr).unwrap(); // hint gossiped to c2

        // Evict it from c1 by filling its 1-slot cache with another block.
        let other = c1.log.append_block(SVC, b"", b"evictor").unwrap();
        c1.log.flush().unwrap();
        c1.read(other).unwrap();

        // c2 follows the stale hint, misses over the wire, and falls
        // through.
        assert_eq!(&*c2.read(addr).unwrap(), b"evictable");
        let s = c2.stats();
        assert_eq!(s.stale_hints, 1);
        assert_eq!(s.server_fetches, 1);
    }

    #[test]
    fn own_cache_beats_peers_and_servers() {
        let (t, _servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"mine").unwrap();
        log1.flush().unwrap();
        let group = CoopCacheGroup::new();
        let c1 = join(&t, &group, 1, log1, 16);
        let _c2 = join(&t, &group, 2, log2, 16);
        c1.read(addr).unwrap();
        c1.read(addr).unwrap();
        let s = c1.stats();
        assert_eq!(s.local_hits, 1);
        assert_eq!(s.server_fetches, 1);
    }

    #[test]
    fn put_announces_written_data() {
        let (t, servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"fresh write").unwrap();
        log1.flush().unwrap();
        let group = CoopCacheGroup::new();
        let c1 = join(&t, &group, 1, log1, 16);
        let c2 = join(&t, &group, 2, log2, 16);
        // The writer seeds its cache directly (no server read at all).
        c1.put(addr, Bytes::from(b"fresh write".to_vec()));
        let reads_before: u64 = servers.iter().map(|s| s.stats().reads).sum();
        assert_eq!(&*c2.read(addr).unwrap(), b"fresh write");
        let reads_after: u64 = servers.iter().map(|s| s.stats().reads).sum();
        assert_eq!(reads_after, reads_before);
    }

    #[test]
    fn leaving_the_group_stops_serving() {
        let (t, _servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"going away").unwrap();
        log1.flush().unwrap();
        let group = CoopCacheGroup::new();
        let c1 = join(&t, &group, 1, log1, 16);
        let c2 = join(&t, &group, 2, log2, 16);
        c1.read(addr).unwrap();
        c1.leave();
        // The hint now points at a departed responder: the dial fails
        // and the read falls through cleanly.
        assert_eq!(&*c2.read(addr).unwrap(), b"going away");
        let s = c2.stats();
        assert_eq!(s.peer_hits, 0);
        assert_eq!(s.server_fetches, 1);
        assert_eq!(s.peer_errors, 1);
    }

    #[test]
    fn hints_piggyback_on_peer_reads() {
        let (t, _servers, log1, log2) = setup();
        let a = log1.append_block(SVC, b"", b"block a").unwrap();
        let b = log1.append_block(SVC, b"", b"block b").unwrap();
        log1.flush().unwrap();

        let group = CoopCacheGroup::new();
        let c1 = join(&t, &group, 1, log1, 16);
        let c2 = join(&t, &group, 2, log2, 16);

        // c1 caches both blocks; gossip reaches c2 for both, but wipe
        // c2's view of `b` to prove the piggyback path refills it.
        c1.read(a).unwrap();
        c1.read(b).unwrap();
        c2.shared.hints.lock().remove(&b);

        // The PeerRead for `a` carries c1's recent facts back, including
        // "I cache b".
        c2.read(a).unwrap();
        assert_eq!(c2.shared.hints.lock().get(&b).copied(), Some(c1.client()));
    }

    #[test]
    fn gossip_ring_skips_self_and_wraps() {
        let group = CoopCacheGroup::new();
        for c in [1u32, 2, 3] {
            group.members.write().insert(ClientId::new(c));
        }
        assert_eq!(
            group.gossip_targets(ClientId::new(2)),
            vec![ClientId::new(3), ClientId::new(1)]
        );
        // Non-members gossip to everyone after their slot.
        assert_eq!(
            group.gossip_targets(ClientId::new(9)),
            vec![ClientId::new(1), ClientId::new(2), ClientId::new(3)]
        );
    }
}
