//! Cooperative caching: clients serve each other's cache misses.
//!
//! §2.2 lists "distributed cooperative caching \[14\]" (Sarkar &
//! Hartman's hint-based scheme) among the services that can be layered on
//! Swarm. The idea: a block evicted from one client's cache may still be
//! hot in another's; fetching it from a peer's memory beats a server disk
//! access. Following the cited paper, lookup is by *hints* — a local,
//! possibly stale table of "who probably caches this block" — so there is
//! no central directory and no synchronization on the read path (Swarm's
//! design goal, §2).
//!
//! The [`CoopCacheGroup`] is the rendezvous: each participating client
//! registers a [`CoopCache`]; hints propagate lazily (on successful peer
//! fetches and on local caching events). Wrong hints are harmless — the
//! reader just falls through to the storage servers.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use swarm_log::Log;
use swarm_types::{BlockAddr, Bytes, ClientId, Result};

use crate::cache::LruCache;

/// Statistics for one cooperative cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoopStats {
    /// Served from this client's own cache.
    pub local_hits: u64,
    /// Served from a peer's cache via a hint.
    pub peer_hits: u64,
    /// Hints that pointed at a peer that no longer had the block.
    pub stale_hints: u64,
    /// Fetched from the storage servers.
    pub server_fetches: u64,
    /// Blocks this client served to peers.
    pub served_to_peers: u64,
}

struct Member {
    cache: Arc<Mutex<LruCache<BlockAddr, Bytes>>>,
    hints: Arc<Mutex<LruCache<BlockAddr, ClientId>>>,
    served: Arc<Mutex<u64>>,
}

/// The set of clients cooperating on one machine-room's caches.
///
/// (In the paper's setting peers talk over the same switched network as
/// the servers; here the group is an in-process registry — the hint
/// protocol and its staleness behaviour are what matter.)
#[derive(Default)]
pub struct CoopCacheGroup {
    members: RwLock<HashMap<ClientId, Member>>,
}

impl std::fmt::Debug for CoopCacheGroup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopCacheGroup")
            .field("members", &self.members.read().len())
            .finish()
    }
}

impl CoopCacheGroup {
    /// Creates an empty group.
    pub fn new() -> Arc<CoopCacheGroup> {
        Arc::new(CoopCacheGroup::default())
    }

    /// Asks `peer` for a block (a peer-cache probe).
    fn probe(&self, peer: ClientId, addr: BlockAddr) -> Option<Bytes> {
        let members = self.members.read();
        let member = members.get(&peer)?;
        let hit = member.cache.lock().get(&addr).map(Bytes::share);
        if hit.is_some() {
            *member.served.lock() += 1;
        }
        hit
    }

    /// Delivers the hint "`holder` caches `addr`" to every other member
    /// (the piggybacked hint exchange of the cited design; here an
    /// in-process delivery).
    fn announce(&self, holder: ClientId, addr: BlockAddr) {
        let members = self.members.read();
        for (peer, member) in members.iter() {
            if *peer != holder {
                member.hints.lock().insert(addr, holder);
            }
        }
    }
}

/// One client's cooperatively-shared block cache over a [`Log`].
pub struct CoopCache {
    client: ClientId,
    log: Arc<Log>,
    group: Arc<CoopCacheGroup>,
    cache: Arc<Mutex<LruCache<BlockAddr, Bytes>>>,
    served: Arc<Mutex<u64>>,
    /// Hints: block → peer believed to cache it. Possibly stale by
    /// design; never synchronized.
    hints: Arc<Mutex<LruCache<BlockAddr, ClientId>>>,
    stats: Mutex<CoopStats>,
}

impl std::fmt::Debug for CoopCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CoopCache")
            .field("client", &self.client)
            .field("stats", &*self.stats.lock())
            .finish()
    }
}

impl CoopCache {
    /// Joins `group` with a cache of `capacity` blocks.
    pub fn join(
        group: Arc<CoopCacheGroup>,
        client: ClientId,
        log: Arc<Log>,
        capacity: usize,
    ) -> Arc<CoopCache> {
        let cache = Arc::new(Mutex::new(LruCache::new(capacity)));
        let served = Arc::new(Mutex::new(0));
        let hints = Arc::new(Mutex::new(LruCache::new(capacity * 4)));
        group.members.write().insert(
            client,
            Member {
                cache: cache.clone(),
                hints: hints.clone(),
                served: served.clone(),
            },
        );
        Arc::new(CoopCache {
            client,
            log,
            group,
            cache,
            served,
            hints,
            stats: Mutex::new(CoopStats::default()),
        })
    }

    /// Leaves the group (on client shutdown).
    pub fn leave(&self) {
        self.group.members.write().remove(&self.client);
    }

    /// Plants a hint: "peer probably caches `addr`". Hints arrive from
    /// peers' caching announcements or out-of-band knowledge; they are
    /// never verified eagerly.
    pub fn hint(&self, addr: BlockAddr, peer: ClientId) {
        if peer != self.client {
            self.hints.lock().insert(addr, peer);
        }
    }

    /// Reads a block: own cache → hinted peer → storage servers.
    ///
    /// # Errors
    ///
    /// Propagates server errors when both cache tiers miss.
    pub fn read(&self, addr: BlockAddr) -> Result<Bytes> {
        if let Some(hit) = self.cache.lock().get(&addr).map(Bytes::share) {
            self.stats.lock().local_hits += 1;
            return Ok(hit);
        }
        // Hint path: one probe, no retries (the cited design keeps the
        // miss penalty bounded).
        let hinted = self.hints.lock().get(&addr).copied();
        if let Some(peer) = hinted {
            if let Some(block) = self.group.probe(peer, addr) {
                self.stats.lock().peer_hits += 1;
                self.cache.lock().insert(addr, block.share());
                return Ok(block);
            }
            self.stats.lock().stale_hints += 1;
            self.hints.lock().remove(&addr);
        }
        let block = self.log.read(addr)?;
        self.stats.lock().server_fetches += 1;
        self.cache.lock().insert(addr, block.share());
        // Tell peers where this block now lives (hint propagation).
        self.group.announce(self.client, addr);
        Ok(block)
    }

    /// Inserts locally-written data and announces it to peers.
    pub fn put(&self, addr: BlockAddr, data: Bytes) {
        self.cache.lock().insert(addr, data);
        self.group.announce(self.client, addr);
    }

    /// Statistics snapshot (including blocks served to peers).
    pub fn stats(&self) -> CoopStats {
        let mut s = *self.stats.lock();
        s.served_to_peers = *self.served.lock();
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_log::LogConfig;
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ServerId, ServiceId};

    const SVC: ServiceId = ServiceId::new(1);

    type Setup = (
        Arc<MemTransport>,
        Vec<Arc<StorageServer<MemStore>>>,
        Arc<Log>,
        Arc<Log>,
    );

    fn setup() -> Setup {
        let transport = Arc::new(MemTransport::new());
        let mut servers = Vec::new();
        for i in 0..2 {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv.clone());
            servers.push(srv);
        }
        let cfg = |c: u32| {
            LogConfig::new(ClientId::new(c), vec![ServerId::new(0), ServerId::new(1)])
                .unwrap()
                .fragment_size(8 * 1024)
                .cache_fragments(0) // isolate the coop cache tier
        };
        let log1 = Arc::new(Log::create(transport.clone(), cfg(1)).unwrap());
        let log2 = Arc::new(Log::create(transport.clone(), cfg(2)).unwrap());
        (transport, servers, log1, log2)
    }

    #[test]
    fn peer_hit_avoids_the_server() {
        let (_t, servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"shared hot block").unwrap();
        log1.flush().unwrap();

        let group = CoopCacheGroup::new();
        let c1 = CoopCache::join(group.clone(), ClientId::new(1), log1, 16);
        let c2 = CoopCache::join(group.clone(), ClientId::new(2), log2, 16);

        // Client 1 reads from the servers; the announce plants a hint at
        // client 2.
        assert_eq!(&*c1.read(addr).unwrap(), b"shared hot block");
        let reads_before: u64 = servers.iter().map(|s| s.stats().reads).sum();

        // Client 2's read is served by client 1's cache — zero server I/O.
        assert_eq!(&*c2.read(addr).unwrap(), b"shared hot block");
        let reads_after: u64 = servers.iter().map(|s| s.stats().reads).sum();
        assert_eq!(reads_after, reads_before, "peer hit must not touch servers");
        assert_eq!(c2.stats().peer_hits, 1);
        assert_eq!(c1.stats().served_to_peers, 1);
    }

    #[test]
    fn stale_hints_fall_through_to_servers() {
        let (_t, _servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"evictable").unwrap();
        log1.flush().unwrap();

        let group = CoopCacheGroup::new();
        let c1 = CoopCache::join(group.clone(), ClientId::new(1), log1, 1);
        let c2 = CoopCache::join(group.clone(), ClientId::new(2), log2, 16);
        c1.read(addr).unwrap(); // hint planted at c2

        // Evict it from c1 by filling its 1-slot cache with another block.
        let other = c1.log.append_block(SVC, b"", b"evictor").unwrap();
        c1.log.flush().unwrap();
        c1.read(other).unwrap();

        // c2 follows the stale hint, misses, and falls through.
        assert_eq!(&*c2.read(addr).unwrap(), b"evictable");
        let s = c2.stats();
        assert_eq!(s.stale_hints, 1);
        assert_eq!(s.server_fetches, 1);
    }

    #[test]
    fn own_cache_beats_peers_and_servers() {
        let (_t, _servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"mine").unwrap();
        log1.flush().unwrap();
        let group = CoopCacheGroup::new();
        let c1 = CoopCache::join(group.clone(), ClientId::new(1), log1, 16);
        let _c2 = CoopCache::join(group.clone(), ClientId::new(2), log2, 16);
        c1.read(addr).unwrap();
        c1.read(addr).unwrap();
        let s = c1.stats();
        assert_eq!(s.local_hits, 1);
        assert_eq!(s.server_fetches, 1);
    }

    #[test]
    fn put_announces_written_data() {
        let (_t, servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"fresh write").unwrap();
        log1.flush().unwrap();
        let group = CoopCacheGroup::new();
        let c1 = CoopCache::join(group.clone(), ClientId::new(1), log1, 16);
        let c2 = CoopCache::join(group.clone(), ClientId::new(2), log2, 16);
        // The writer seeds its cache directly (no server read at all).
        c1.put(addr, Bytes::from(b"fresh write".to_vec()));
        let reads_before: u64 = servers.iter().map(|s| s.stats().reads).sum();
        assert_eq!(&*c2.read(addr).unwrap(), b"fresh write");
        let reads_after: u64 = servers.iter().map(|s| s.stats().reads).sum();
        assert_eq!(reads_after, reads_before);
    }

    #[test]
    fn leaving_the_group_stops_serving() {
        let (_t, _servers, log1, log2) = setup();
        let addr = log1.append_block(SVC, b"", b"going away").unwrap();
        log1.flush().unwrap();
        let group = CoopCacheGroup::new();
        let c1 = CoopCache::join(group.clone(), ClientId::new(1), log1, 16);
        let c2 = CoopCache::join(group.clone(), ClientId::new(2), log2, 16);
        c1.read(addr).unwrap();
        c1.leave();
        // The hint now points at a departed member: clean fall-through.
        assert_eq!(&*c2.read(addr).unwrap(), b"going away");
        assert_eq!(c2.stats().peer_hits, 0);
        assert_eq!(c2.stats().server_fetches, 1);
    }
}
