//! XTEA block cipher in CTR mode, backing the encryption service.
//!
//! §2.2 lists "an encryption service" among the services that can be
//! layered on the log. XTEA (Needham & Wheeler, 1997 — contemporary with
//! the paper) is implemented in-repo to keep the dependency set minimal.
//! CTR mode turns the 64-bit block cipher into a stream cipher, so blocks
//! of any length encrypt without padding; the nonce is derived from the
//! block's log address by the transform layer, making every block's
//! keystream unique.
//!
//! This is a faithful demonstration service, not a modern AEAD — a real
//! deployment would swap in an authenticated cipher behind the same
//! [`crate::BlockTransform`] interface.

const ROUNDS: u32 = 32;
const DELTA: u32 = 0x9e37_79b9;

/// A 128-bit XTEA key.
#[derive(Clone, Copy)]
pub struct Key(pub [u32; 4]);

impl std::fmt::Debug for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Key(…)") // never print key material
    }
}

impl Key {
    /// Derives a key from arbitrary bytes (simple split/fold; a real
    /// system would use a KDF).
    pub fn from_bytes(bytes: &[u8]) -> Key {
        let mut k = [0u32; 4];
        for (i, b) in bytes.iter().enumerate() {
            k[i % 4] = k[i % 4].rotate_left(8) ^ (*b as u32) ^ (i as u32);
        }
        Key(k)
    }
}

/// Encrypts one 64-bit block.
pub fn encrypt_block(key: &Key, block: u64) -> u64 {
    let mut v0 = (block >> 32) as u32;
    let mut v1 = block as u32;
    let mut sum = 0u32;
    for _ in 0..ROUNDS {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key.0[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key.0[((sum >> 11) & 3) as usize])),
        );
    }
    ((v0 as u64) << 32) | v1 as u64
}

/// Decrypts one 64-bit block.
pub fn decrypt_block(key: &Key, block: u64) -> u64 {
    let mut v0 = (block >> 32) as u32;
    let mut v1 = block as u32;
    let mut sum = DELTA.wrapping_mul(ROUNDS);
    for _ in 0..ROUNDS {
        v1 = v1.wrapping_sub(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key.0[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(DELTA);
        v0 = v0.wrapping_sub(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key.0[(sum & 3) as usize])),
        );
    }
    ((v0 as u64) << 32) | v1 as u64
}

/// XORs `data` with the CTR keystream for (`key`, `nonce`). Involutive:
/// applying it twice restores the input.
pub fn ctr_xor(key: &Key, nonce: u64, data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(8).enumerate() {
        let ks = encrypt_block(key, nonce ^ (i as u64)).to_le_bytes();
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn block_roundtrip() {
        let key = Key([1, 2, 3, 4]);
        for block in [0u64, 1, u64::MAX, 0x0123_4567_89ab_cdef] {
            assert_eq!(decrypt_block(&key, encrypt_block(&key, block)), block);
        }
    }

    #[test]
    fn encryption_actually_changes_bits() {
        let key = Key::from_bytes(b"a passphrase");
        let ct = encrypt_block(&key, 0);
        assert_ne!(ct, 0);
        // Different keys, different ciphertexts.
        let key2 = Key::from_bytes(b"a passphrasf");
        assert_ne!(encrypt_block(&key2, 0), ct);
    }

    #[test]
    fn ctr_is_involutive() {
        let key = Key::from_bytes(b"secret");
        let mut data = b"the quick brown fox jumps over the lazy dog".to_vec();
        let orig = data.clone();
        ctr_xor(&key, 42, &mut data);
        assert_ne!(data, orig);
        ctr_xor(&key, 42, &mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn different_nonces_differ() {
        let key = Key::from_bytes(b"secret");
        let mut a = vec![0u8; 64];
        let mut b = vec![0u8; 64];
        ctr_xor(&key, 1, &mut a);
        ctr_xor(&key, 2, &mut b);
        assert_ne!(a, b);
    }

    proptest! {
        #[test]
        fn prop_ctr_roundtrip(
            data in proptest::collection::vec(any::<u8>(), 0..512),
            nonce in any::<u64>(),
            key_bytes in proptest::collection::vec(any::<u8>(), 1..64),
        ) {
            let key = Key::from_bytes(&key_bytes);
            let mut buf = data.clone();
            ctr_xor(&key, nonce, &mut buf);
            ctr_xor(&key, nonce, &mut buf);
            prop_assert_eq!(buf, data);
        }
    }
}
