//! Atomic recovery units (§2.2).
//!
//! "An atomic recovery unit (ARU) service … provides atomicity across
//! multiple log writes. … The records are tagged with the ARU to which
//! they belong. … During recovery, the replayed records are passed up
//! from the lower service; the ARU service only relays upwards those
//! records that belong to ARUs that completed before the crash."
//!
//! An [`AruService`] wraps a client service's records: `begin` opens a
//! unit, `append` adds payloads, `commit` seals it. After a crash, only
//! payloads of *committed* units are relayed; records of units still open
//! at crash time are discarded — all-or-nothing semantics built purely on
//! the log's ordered, atomic records.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_log::{Entry, Log, ReplayEntry};
use swarm_types::{BlockAddr, ByteReader, ByteWriter, Result, ServiceId, SwarmError};

use crate::service::Service;

/// Identifies one atomic recovery unit within a client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AruId(pub u64);

impl std::fmt::Display for AruId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "aru{}", self.0)
    }
}

/// Record kinds the ARU service writes.
mod kind {
    pub const BEGIN: u16 = 1;
    pub const DATA: u16 = 2;
    pub const COMMIT: u16 = 3;
    pub const ABORT: u16 = 4;
}

#[derive(Debug, Default)]
struct AruState {
    next_id: u64,
    /// Units committed before the crash, with their payloads in order
    /// (populated during recovery).
    committed: BTreeMap<AruId, Vec<Vec<u8>>>,
    /// Units currently being replayed (discarded unless a COMMIT
    /// arrives).
    pending: BTreeMap<AruId, Vec<Vec<u8>>>,
    /// Units open right now (live operation).
    open: BTreeMap<AruId, u64>,
}

/// The atomic-recovery-unit service.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use swarm_services::AruService;
/// use swarm_types::ServiceId;
///
/// # fn log() -> Arc<swarm_log::Log> { unimplemented!() }
/// let aru = AruService::new(ServiceId::new(5), log());
/// let unit = aru.begin()?;
/// aru.append(unit, b"step 1")?;
/// aru.append(unit, b"step 2")?;
/// aru.commit(unit)?;    // both steps or neither survive a crash
/// # Ok::<(), swarm_types::SwarmError>(())
/// ```
pub struct AruService {
    id: ServiceId,
    log: Arc<Log>,
    state: Mutex<AruState>,
}

impl std::fmt::Debug for AruService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AruService").field("id", &self.id).finish()
    }
}

fn encode_unit(aru: AruId, payload: &[u8]) -> Vec<u8> {
    let mut w = ByteWriter::with_capacity(8 + payload.len());
    w.put_u64(aru.0);
    w.put_raw(payload);
    w.into_bytes()
}

fn decode_unit(data: &[u8]) -> Result<(AruId, &[u8])> {
    let mut r = ByteReader::new(data);
    let id = r.get_u64()?;
    let rest = r.get_raw(r.remaining())?;
    Ok((AruId(id), rest))
}

impl AruService {
    /// Creates an ARU service writing through `log` as service `id`.
    pub fn new(id: ServiceId, log: Arc<Log>) -> Arc<AruService> {
        Arc::new(AruService {
            id,
            log,
            state: Mutex::new(AruState::default()),
        })
    }

    /// Opens a new unit.
    ///
    /// # Errors
    ///
    /// Propagates log append failures.
    pub fn begin(&self) -> Result<AruId> {
        let aru = {
            let mut state = self.state.lock();
            let aru = AruId(state.next_id);
            state.next_id += 1;
            state.open.insert(aru, 0);
            aru
        };
        self.log
            .append_record(self.id, kind::BEGIN, &encode_unit(aru, &[]))?;
        Ok(aru)
    }

    /// Appends a payload to an open unit.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] for unknown/closed units.
    pub fn append(&self, aru: AruId, payload: &[u8]) -> Result<()> {
        {
            let mut state = self.state.lock();
            let n = state
                .open
                .get_mut(&aru)
                .ok_or_else(|| SwarmError::invalid(format!("{aru} is not open")))?;
            *n += 1;
        }
        self.log
            .append_record(self.id, kind::DATA, &encode_unit(aru, payload))?;
        Ok(())
    }

    /// Commits a unit: its payloads become durable all-or-nothing. The
    /// log is flushed so the commit record cannot be lost after this
    /// returns.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] for unknown/closed units
    /// and propagates flush failures.
    pub fn commit(&self, aru: AruId) -> Result<()> {
        {
            let mut state = self.state.lock();
            state
                .open
                .remove(&aru)
                .ok_or_else(|| SwarmError::invalid(format!("{aru} is not open")))?;
        }
        self.log
            .append_record(self.id, kind::COMMIT, &encode_unit(aru, &[]))?;
        self.log.flush()
    }

    /// Aborts a unit: its payloads will never be relayed.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] for unknown/closed units.
    pub fn abort(&self, aru: AruId) -> Result<()> {
        {
            let mut state = self.state.lock();
            state
                .open
                .remove(&aru)
                .ok_or_else(|| SwarmError::invalid(format!("{aru} is not open")))?;
        }
        self.log
            .append_record(self.id, kind::ABORT, &encode_unit(aru, &[]))?;
        Ok(())
    }

    /// After recovery: payloads of every unit that committed before the
    /// crash, in (unit, append) order. This is what the ARU layer "relays
    /// upwards".
    pub fn committed_units(&self) -> Vec<(AruId, Vec<Vec<u8>>)> {
        self.state
            .lock()
            .committed
            .iter()
            .map(|(id, payloads)| (*id, payloads.clone()))
            .collect()
    }
}

/// The [`Service`] face of an [`AruService`].
pub struct AruServiceAdapter {
    aru: Arc<AruService>,
}

impl AruServiceAdapter {
    /// Wraps an ARU service for stack registration.
    pub fn new(aru: Arc<AruService>) -> Self {
        AruServiceAdapter { aru }
    }
}

impl Service for AruServiceAdapter {
    fn id(&self) -> ServiceId {
        self.aru.id
    }

    fn name(&self) -> &str {
        "aru"
    }

    fn restore_checkpoint(&mut self, data: &[u8]) -> Result<()> {
        // Checkpoint payload: next_id only (committed units before a
        // checkpoint are already reflected in higher-level state).
        let mut r = ByteReader::new(data);
        self.aru.state.lock().next_id = r.get_u64()?;
        Ok(())
    }

    fn replay(&mut self, entry: &ReplayEntry) -> Result<()> {
        let Entry::Record { kind: k, data, .. } = &entry.entry else {
            return Ok(()); // ARUs write no blocks
        };
        let (aru, payload) = decode_unit(data)?;
        let mut state = self.aru.state.lock();
        state.next_id = state.next_id.max(aru.0 + 1);
        match *k {
            kind::BEGIN => {
                state.pending.insert(aru, Vec::new());
            }
            kind::DATA => {
                if let Some(p) = state.pending.get_mut(&aru) {
                    p.push(payload.to_vec());
                }
            }
            kind::COMMIT => {
                if let Some(p) = state.pending.remove(&aru) {
                    state.committed.insert(aru, p);
                }
            }
            kind::ABORT => {
                state.pending.remove(&aru);
            }
            other => {
                return Err(SwarmError::corrupt(format!(
                    "unknown ARU record kind {other}"
                )))
            }
        }
        Ok(())
    }

    fn block_moved(&mut self, _old: BlockAddr, _new: BlockAddr, _create: &[u8]) -> Result<()> {
        Ok(()) // ARUs own no blocks
    }

    fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
        let next_id = self.aru.state.lock().next_id;
        let mut w = ByteWriter::new();
        w.put_u64(next_id);
        log.checkpoint(self.aru.id, w.as_slice())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_log::{recover, Log, LogConfig};
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ClientId, ServerId};

    const ARU_SVC: ServiceId = ServiceId::new(5);

    fn cluster(n: u32) -> Arc<MemTransport> {
        let transport = Arc::new(MemTransport::new());
        for i in 0..n {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv);
        }
        transport
    }

    fn config() -> LogConfig {
        LogConfig::new(ClientId::new(1), vec![ServerId::new(0), ServerId::new(1)])
            .unwrap()
            .fragment_size(4096)
    }

    fn recover_aru(transport: Arc<MemTransport>) -> Arc<AruService> {
        let (log, replay) = recover(transport, config(), &[ARU_SVC]).unwrap();
        let aru = AruService::new(ARU_SVC, Arc::new(log));
        let mut adapter = AruServiceAdapter::new(aru.clone());
        if let Some(d) = replay.checkpoint_data(ARU_SVC) {
            adapter.restore_checkpoint(d).unwrap();
        }
        for e in replay.records_for(ARU_SVC) {
            adapter.replay(e).unwrap();
        }
        aru
    }

    #[test]
    fn committed_units_survive_a_crash() {
        let transport = cluster(2);
        {
            let log = Arc::new(Log::create(transport.clone(), config()).unwrap());
            let aru = AruService::new(ARU_SVC, log);
            let a = aru.begin().unwrap();
            aru.append(a, b"a1").unwrap();
            aru.append(a, b"a2").unwrap();
            aru.commit(a).unwrap();
            // crash
        }
        let aru = recover_aru(transport);
        let committed = aru.committed_units();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].1, vec![b"a1".to_vec(), b"a2".to_vec()]);
    }

    #[test]
    fn uncommitted_units_are_discarded() {
        let transport = cluster(2);
        {
            let log = Arc::new(Log::create(transport.clone(), config()).unwrap());
            let aru = AruService::new(ARU_SVC, log.clone());
            let a = aru.begin().unwrap();
            aru.append(a, b"committed work").unwrap();
            aru.commit(a).unwrap();
            let b = aru.begin().unwrap();
            aru.append(b, b"doomed work").unwrap();
            // no commit for b — but the records do reach the servers
            log.flush().unwrap();
            // crash
        }
        let aru = recover_aru(transport);
        let committed = aru.committed_units();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].1, vec![b"committed work".to_vec()]);
    }

    #[test]
    fn aborted_units_are_discarded() {
        let transport = cluster(2);
        {
            let log = Arc::new(Log::create(transport.clone(), config()).unwrap());
            let aru = AruService::new(ARU_SVC, log.clone());
            let a = aru.begin().unwrap();
            aru.append(a, b"rolled back").unwrap();
            aru.abort(a).unwrap();
            log.flush().unwrap();
        }
        let aru = recover_aru(transport);
        assert!(aru.committed_units().is_empty());
    }

    #[test]
    fn operations_on_closed_units_fail() {
        let transport = cluster(2);
        let log = Arc::new(Log::create(transport, config()).unwrap());
        let aru = AruService::new(ARU_SVC, log);
        let a = aru.begin().unwrap();
        aru.commit(a).unwrap();
        assert!(aru.append(a, b"late").is_err());
        assert!(aru.commit(a).is_err());
        assert!(aru.abort(a).is_err());
    }

    #[test]
    fn unit_ids_continue_after_recovery() {
        let transport = cluster(2);
        let first_id;
        {
            let log = Arc::new(Log::create(transport.clone(), config()).unwrap());
            let aru = AruService::new(ARU_SVC, log.clone());
            first_id = aru.begin().unwrap();
            aru.commit(first_id).unwrap();
        }
        let aru = recover_aru(transport);
        let next = aru.begin().unwrap();
        assert!(next.0 > first_id.0, "{next} must postdate {first_id}");
    }

    #[test]
    fn interleaved_units_recover_independently() {
        let transport = cluster(2);
        {
            let log = Arc::new(Log::create(transport.clone(), config()).unwrap());
            let aru = AruService::new(ARU_SVC, log.clone());
            let a = aru.begin().unwrap();
            let b = aru.begin().unwrap();
            aru.append(a, b"a1").unwrap();
            aru.append(b, b"b1").unwrap();
            aru.append(a, b"a2").unwrap();
            aru.commit(b).unwrap();
            aru.append(a, b"a3").unwrap();
            log.flush().unwrap(); // a never commits
        }
        let aru = recover_aru(transport);
        let committed = aru.committed_units();
        assert_eq!(committed.len(), 1);
        assert_eq!(committed[0].1, vec![b"b1".to_vec()]);
    }
}
