//! A small LZSS codec backing the compression service (§2.2 lists "a
//! compression service" among the services layered on the log).
//!
//! Implemented in-repo (no external compression crates): greedy LZSS with
//! a 4 KiB sliding window and 3-byte hash-chain match finder. Format:
//!
//! ```text
//! output := flag-group*
//! flag-group := flags:u8 then 8 items (LSB first)
//! item (flag 0) := literal byte
//! item (flag 1) := u16 le: offset:12 bits | (len-MIN_MATCH):4 bits
//! ```
//!
//! A leading `u32` holds the decompressed length so decode can
//! preallocate and validate.

const WINDOW: usize = 1 << 12; // 4 KiB, offsets fit in 12 bits
const MIN_MATCH: usize = 3;
const MAX_MATCH: usize = MIN_MATCH + 15; // 4-bit length field

use swarm_types::{Result, SwarmError};

/// Compresses `input`. Output is self-describing (see module docs);
/// incompressible data grows by ~12.5% plus 4 bytes, so callers that care
/// should keep the original when `compress` does not help (the
/// [`crate::CompressTransform`] does exactly that).
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    out.extend_from_slice(&(input.len() as u32).to_le_bytes());

    // Hash chains over 3-byte prefixes.
    let mut head = vec![usize::MAX; 1 << 13];
    let mut prev = vec![usize::MAX; input.len().max(1)];
    let hash = |a: u8, b: u8, c: u8| -> usize {
        ((a as usize) ^ ((b as usize) << 4) ^ ((c as usize) << 8)) & ((1 << 13) - 1)
    };

    let mut i = 0;
    let mut flags_pos = out.len();
    out.push(0);
    let mut flag_bit = 0u8;

    let emit = |out: &mut Vec<u8>, flags_pos: &mut usize, flag_bit: &mut u8, is_match: bool| {
        if *flag_bit == 8 {
            *flags_pos = out.len();
            out.push(0);
            *flag_bit = 0;
        }
        if is_match {
            out[*flags_pos] |= 1 << *flag_bit;
        }
        *flag_bit += 1;
    };

    while i < input.len() {
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + MIN_MATCH <= input.len() {
            let h = hash(input[i], input[i + 1], input[i + 2]);
            let mut cand = head[h];
            let mut tries = 32;
            while cand != usize::MAX && tries > 0 {
                if i - cand < WINDOW {
                    let limit = (input.len() - i).min(MAX_MATCH);
                    let mut l = 0;
                    while l < limit && input[cand + l] == input[i + l] {
                        l += 1;
                    }
                    if l > best_len {
                        best_len = l;
                        best_off = i - cand;
                        if l == limit {
                            break;
                        }
                    }
                } else {
                    break; // chain entries only get older
                }
                cand = prev[cand];
                tries -= 1;
            }
        }

        if best_len >= MIN_MATCH {
            emit(&mut out, &mut flags_pos, &mut flag_bit, true);
            let token = ((best_off as u16) & 0x0fff) | (((best_len - MIN_MATCH) as u16) << 12);
            out.extend_from_slice(&token.to_le_bytes());
            // Insert hash entries for every covered position.
            let end = i + best_len;
            while i < end {
                if i + MIN_MATCH <= input.len() {
                    let h = hash(input[i], input[i + 1], input[i + 2]);
                    prev[i] = head[h];
                    head[h] = i;
                }
                i += 1;
            }
        } else {
            emit(&mut out, &mut flags_pos, &mut flag_bit, false);
            out.push(input[i]);
            if i + MIN_MATCH <= input.len() {
                let h = hash(input[i], input[i + 1], input[i + 2]);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
    }
    out
}

/// Decompresses data produced by [`compress`].
///
/// # Errors
///
/// Returns [`SwarmError::Corrupt`] on truncated input, invalid
/// back-references, or a length mismatch.
pub fn decompress(input: &[u8]) -> Result<Vec<u8>> {
    if input.len() < 4 {
        return Err(SwarmError::corrupt("lzss input shorter than length prefix"));
    }
    let want = u32::from_le_bytes(input[0..4].try_into().unwrap()) as usize;
    if want > lzss_limits::MAX_DECOMPRESSED {
        return Err(SwarmError::corrupt("lzss declared length too large"));
    }
    let mut out = Vec::with_capacity(want);
    let mut pos = 4;
    while out.len() < want {
        if pos >= input.len() {
            return Err(SwarmError::corrupt("lzss truncated before flags"));
        }
        let flags = input[pos];
        pos += 1;
        for bit in 0..8 {
            if out.len() >= want {
                break;
            }
            if flags & (1 << bit) != 0 {
                if pos + 2 > input.len() {
                    return Err(SwarmError::corrupt("lzss truncated match token"));
                }
                let token = u16::from_le_bytes(input[pos..pos + 2].try_into().unwrap());
                pos += 2;
                let off = (token & 0x0fff) as usize;
                let len = ((token >> 12) as usize) + MIN_MATCH;
                if off == 0 || off > out.len() {
                    return Err(SwarmError::corrupt("lzss back-reference out of range"));
                }
                let start = out.len() - off;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            } else {
                if pos >= input.len() {
                    return Err(SwarmError::corrupt("lzss truncated literal"));
                }
                out.push(input[pos]);
                pos += 1;
            }
        }
    }
    if out.len() != want {
        return Err(SwarmError::corrupt(format!(
            "lzss length mismatch: declared {want}, produced {}",
            out.len()
        )));
    }
    Ok(out)
}

/// Guard rails for decode allocation.
pub(crate) mod lzss_limits {
    /// Upper bound on declared decompressed size (64 MiB).
    pub const MAX_DECOMPRESSED: usize = 64 << 20;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_roundtrip() {
        assert_eq!(decompress(&compress(&[])).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn repetitive_data_shrinks() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(50);
        let packed = compress(&data);
        assert!(
            packed.len() < data.len() / 3,
            "{} !< {}",
            packed.len(),
            data.len() / 3
        );
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn zeros_shrink_dramatically() {
        let data = vec![0u8; 100_000];
        let packed = compress(&data);
        assert!(packed.len() < data.len() / 6); // max match 18B per 2.1B token ≈ 8.5×
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn random_data_roundtrips_even_if_larger() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<u8> = (0..10_000).map(|_| rng.gen()).collect();
        let packed = compress(&data);
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn text_like_data_roundtrips() {
        let data = include_str!("lzss.rs").as_bytes();
        let packed = compress(data);
        assert!(packed.len() < data.len(), "source code should compress");
        assert_eq!(decompress(&packed).unwrap(), data);
    }

    #[test]
    fn truncated_inputs_error_cleanly() {
        let data = b"hello hello hello hello".repeat(20);
        let packed = compress(&data);
        for cut in [0, 3, 5, packed.len() / 2, packed.len() - 1] {
            assert!(decompress(&packed[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn garbage_input_never_panics() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..200 {
            let garbage: Vec<u8> = (0..rng.gen_range(0..200)).map(|_| rng.gen()).collect();
            let _ = decompress(&garbage); // must not panic
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).unwrap(), data);
        }

        #[test]
        fn prop_roundtrip_structured(
            words in proptest::collection::vec(0u8..4, 0..2000)
        ) {
            // Low-entropy input: exercises the match path heavily.
            let data: Vec<u8> = words.iter().map(|w| b"abcd"[*w as usize]).collect();
            let packed = compress(&data);
            prop_assert_eq!(decompress(&packed).unwrap(), data);
        }
    }
}
