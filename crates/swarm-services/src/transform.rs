//! Stackable per-block transforms.
//!
//! §2.2: "A service modifies the functionality of the services below it by
//! intercepting communication between those services and the services
//! above." For block *payloads* that interception is a pure byte
//! transform: compress on the way down, decompress on the way up;
//! checksum on the way down, verify on the way up; encrypt/decrypt
//! likewise. [`TransformStack`] composes transforms in order — encode
//! applies first-to-last, decode last-to-first — exactly like the paper's
//! service stacking, without each transform needing to know its
//! neighbours.

use swarm_types::{crc32, Result, SwarmError};

use crate::lzss;
use crate::xtea;

/// A reversible byte transform applied to block payloads.
pub trait BlockTransform: Send + Sync {
    /// Name for diagnostics.
    fn name(&self) -> &str;

    /// Applies the downward (write-side) transform.
    fn encode(&self, data: Vec<u8>, nonce: u64) -> Vec<u8>;

    /// Reverses it on the read side.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the data fails validation
    /// (checksum mismatch, malformed compression stream, …).
    fn decode(&self, data: Vec<u8>, nonce: u64) -> Result<Vec<u8>>;
}

/// Appends a CRC32 trailer on encode; verifies and strips it on decode.
#[derive(Debug, Default, Clone, Copy)]
pub struct ChecksumTransform;

impl BlockTransform for ChecksumTransform {
    fn name(&self) -> &str {
        "checksum"
    }

    fn encode(&self, mut data: Vec<u8>, _nonce: u64) -> Vec<u8> {
        let crc = crc32(&data);
        data.extend_from_slice(&crc.to_le_bytes());
        data
    }

    fn decode(&self, mut data: Vec<u8>, _nonce: u64) -> Result<Vec<u8>> {
        if data.len() < 4 {
            return Err(SwarmError::corrupt("checksum trailer missing"));
        }
        let split = data.len() - 4;
        let want = u32::from_le_bytes(data[split..].try_into().unwrap());
        data.truncate(split);
        let got = crc32(&data);
        if got != want {
            return Err(SwarmError::corrupt(format!(
                "block checksum mismatch: stored {want:#010x}, computed {got:#010x}"
            )));
        }
        Ok(data)
    }
}

/// LZSS compression with an incompressibility escape: a 1-byte header
/// records whether the payload is compressed (1) or stored raw (0), and
/// raw is chosen whenever compression does not shrink the data.
#[derive(Debug, Default, Clone, Copy)]
pub struct CompressTransform;

impl BlockTransform for CompressTransform {
    fn name(&self) -> &str {
        "compress"
    }

    fn encode(&self, data: Vec<u8>, _nonce: u64) -> Vec<u8> {
        let packed = lzss::compress(&data);
        if packed.len() < data.len() {
            let mut out = Vec::with_capacity(packed.len() + 1);
            out.push(1);
            out.extend_from_slice(&packed);
            out
        } else {
            let mut out = Vec::with_capacity(data.len() + 1);
            out.push(0);
            out.extend_from_slice(&data);
            out
        }
    }

    fn decode(&self, data: Vec<u8>, _nonce: u64) -> Result<Vec<u8>> {
        match data.split_first() {
            Some((0, raw)) => Ok(raw.to_vec()),
            Some((1, packed)) => lzss::decompress(packed),
            Some((tag, _)) => Err(SwarmError::corrupt(format!(
                "unknown compression tag {tag}"
            ))),
            None => Err(SwarmError::corrupt("empty compressed block")),
        }
    }
}

/// XTEA-CTR encryption keyed per stack, with the keystream bound to the
/// block's nonce (derived from its log address), so identical plaintext
/// blocks produce different ciphertext.
pub struct EncryptTransform {
    key: xtea::Key,
}

impl std::fmt::Debug for EncryptTransform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("EncryptTransform(key hidden)")
    }
}

impl EncryptTransform {
    /// Creates a transform keyed from a passphrase.
    pub fn new(passphrase: &[u8]) -> EncryptTransform {
        EncryptTransform {
            key: xtea::Key::from_bytes(passphrase),
        }
    }
}

impl BlockTransform for EncryptTransform {
    fn name(&self) -> &str {
        "encrypt"
    }

    fn encode(&self, mut data: Vec<u8>, nonce: u64) -> Vec<u8> {
        xtea::ctr_xor(&self.key, nonce, &mut data);
        data
    }

    fn decode(&self, mut data: Vec<u8>, nonce: u64) -> Result<Vec<u8>> {
        xtea::ctr_xor(&self.key, nonce, &mut data);
        Ok(data)
    }
}

/// An ordered stack of transforms.
///
/// # Example
///
/// ```
/// use swarm_services::{ChecksumTransform, CompressTransform, EncryptTransform, TransformStack};
///
/// let stack = TransformStack::new()
///     .push(CompressTransform)            // innermost: shrink first
///     .push(EncryptTransform::new(b"s3kr1t"))
///     .push(ChecksumTransform);           // outermost: verify first on read
/// let encoded = stack.encode(b"hello hello hello hello".to_vec(), 7);
/// assert_eq!(stack.decode(encoded, 7).unwrap(), b"hello hello hello hello");
/// ```
#[derive(Default)]
pub struct TransformStack {
    transforms: Vec<Box<dyn BlockTransform>>,
}

impl std::fmt::Debug for TransformStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<&str> = self.transforms.iter().map(|t| t.name()).collect();
        f.debug_struct("TransformStack")
            .field("layers", &names)
            .finish()
    }
}

impl TransformStack {
    /// Creates an empty (identity) stack.
    pub fn new() -> Self {
        TransformStack {
            transforms: Vec::new(),
        }
    }

    /// Adds a transform as the new outermost layer.
    pub fn push(mut self, t: impl BlockTransform + 'static) -> Self {
        self.transforms.push(Box::new(t));
        self
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.transforms.len()
    }

    /// `true` for the identity stack.
    pub fn is_empty(&self) -> bool {
        self.transforms.is_empty()
    }

    /// Applies all layers, innermost (first pushed) first.
    pub fn encode(&self, mut data: Vec<u8>, nonce: u64) -> Vec<u8> {
        for t in &self.transforms {
            data = t.encode(data, nonce);
        }
        data
    }

    /// Reverses all layers, outermost first.
    ///
    /// # Errors
    ///
    /// Propagates the first layer failure.
    pub fn decode(&self, mut data: Vec<u8>, nonce: u64) -> Result<Vec<u8>> {
        for t in self.transforms.iter().rev() {
            data = t.decode(data, nonce)?;
        }
        Ok(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn full_stack() -> TransformStack {
        TransformStack::new()
            .push(CompressTransform)
            .push(EncryptTransform::new(b"passphrase"))
            .push(ChecksumTransform)
    }

    #[test]
    fn checksum_detects_corruption() {
        let t = ChecksumTransform;
        let mut encoded = t.encode(b"payload".to_vec(), 0);
        encoded[2] ^= 0x40;
        let err = t.decode(encoded, 0).unwrap_err();
        assert!(matches!(err, SwarmError::Corrupt(_)), "{err}");
    }

    #[test]
    fn compress_escape_for_incompressible_data() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let random: Vec<u8> = (0..1000).map(|_| rng.gen()).collect();
        let t = CompressTransform;
        let encoded = t.encode(random.clone(), 0);
        assert_eq!(encoded[0], 0, "incompressible data stored raw");
        assert_eq!(encoded.len(), random.len() + 1, "only 1 byte overhead");
        assert_eq!(t.decode(encoded, 0).unwrap(), random);
    }

    #[test]
    fn compress_shrinks_redundant_data() {
        let redundant = b"swarm swarm swarm swarm ".repeat(100);
        let t = CompressTransform;
        let encoded = t.encode(redundant.clone(), 0);
        assert_eq!(encoded[0], 1);
        assert!(encoded.len() < redundant.len() / 2);
        assert_eq!(t.decode(encoded, 0).unwrap(), redundant);
    }

    #[test]
    fn encryption_binds_to_nonce() {
        let t = EncryptTransform::new(b"key");
        let a = t.encode(b"same plaintext".to_vec(), 1);
        let b = t.encode(b"same plaintext".to_vec(), 2);
        assert_ne!(a, b);
        // Wrong nonce decrypts to garbage (no integrity layer here).
        let wrong = t.decode(a.clone(), 2).unwrap();
        assert_ne!(wrong, b"same plaintext");
        assert_eq!(t.decode(a, 1).unwrap(), b"same plaintext");
    }

    #[test]
    fn full_stack_roundtrip_and_tamper_detection() {
        let stack = full_stack();
        let data = b"the paper's compression + encryption + checksum stack".to_vec();
        let mut encoded = stack.encode(data.clone(), 99);
        assert_eq!(stack.decode(encoded.clone(), 99).unwrap(), data);
        encoded[0] ^= 1;
        assert!(
            stack.decode(encoded, 99).is_err(),
            "outer checksum catches tampering"
        );
    }

    #[test]
    fn empty_stack_is_identity() {
        let stack = TransformStack::new();
        assert!(stack.is_empty());
        assert_eq!(stack.encode(b"x".to_vec(), 0), b"x");
        assert_eq!(stack.decode(b"x".to_vec(), 0).unwrap(), b"x");
    }

    proptest! {
        #[test]
        fn prop_full_stack_roundtrip(
            data in proptest::collection::vec(any::<u8>(), 0..2048),
            nonce in any::<u64>(),
        ) {
            let stack = full_stack();
            let encoded = stack.encode(data.clone(), nonce);
            prop_assert_eq!(stack.decode(encoded, nonce).unwrap(), data);
        }
    }
}
