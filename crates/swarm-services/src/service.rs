//! The service stacking framework (§2.2).
//!
//! A *service* is anything that stores blocks and records in the log and
//! can rebuild its state after a crash: a file system, a logical disk, an
//! ARU layer, the cleaner itself. The [`ServiceStack`] routes three kinds
//! of traffic to the right service:
//!
//! 1. **Recovery** — after a crash, each service gets its newest
//!    checkpoint payload and the records it wrote after that checkpoint,
//!    in log order.
//! 2. **Cleaning** — when the cleaner moves a live block, the owning
//!    service is told the old address, the new address, and the block's
//!    creation record so it can patch its metadata (§2.1.4).
//! 3. **Demand checkpoints** — the log layer may require services to
//!    checkpoint so the cleaner can make progress (§2.1.4: "we mitigate
//!    this problem by forcing services to write out checkpoints on
//!    demand").

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::Mutex;
use swarm_log::{Log, Replay, ReplayEntry};
use swarm_types::{BlockAddr, Result, ServiceId, SwarmError};

/// A log-layer service: owns blocks and records, survives crashes.
pub trait Service: Send {
    /// The service's stable identity (routes records and notifications).
    fn id(&self) -> ServiceId;

    /// Human-readable name for diagnostics.
    fn name(&self) -> &str;

    /// Restores state from this service's newest checkpoint payload.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] if the payload does not parse.
    fn restore_checkpoint(&mut self, data: &[u8]) -> Result<()>;

    /// Replays one post-checkpoint entry (record, block creation, or
    /// deletion) during rollforward. Entries arrive in log order.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] for records the service cannot
    /// interpret.
    fn replay(&mut self, entry: &ReplayEntry) -> Result<()>;

    /// The cleaner moved one of this service's blocks: `old` → `new`,
    /// with the block's creation record to locate it in service metadata.
    ///
    /// # Errors
    ///
    /// Returns an error if the service does not recognize the block (a
    /// bug — the cleaner only moves blocks whose creation records name
    /// this service).
    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()>;

    /// Writes a checkpoint now (demand checkpoint, §2.1.4).
    ///
    /// # Errors
    ///
    /// Propagates log append/flush failures.
    fn write_checkpoint(&mut self, log: &Log) -> Result<()>;
}

/// A shared, lockable service handle.
pub type SharedService = Arc<Mutex<dyn Service>>;

/// The registry of services stacked on one client's log.
#[derive(Default)]
pub struct ServiceStack {
    services: BTreeMap<ServiceId, SharedService>,
}

impl std::fmt::Debug for ServiceStack {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let names: Vec<String> = self
            .services
            .iter()
            .map(|(id, s)| format!("{id}:{}", s.lock().name()))
            .collect();
        f.debug_struct("ServiceStack")
            .field("services", &names)
            .finish()
    }
}

impl ServiceStack {
    /// Creates an empty stack.
    pub fn new() -> Self {
        ServiceStack {
            services: BTreeMap::new(),
        }
    }

    /// Registers a service.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if the id is taken.
    pub fn register(&mut self, service: SharedService) -> Result<()> {
        let id = service.lock().id();
        if self.services.contains_key(&id) {
            return Err(SwarmError::invalid(format!(
                "service id {id} already registered"
            )));
        }
        self.services.insert(id, service);
        Ok(())
    }

    /// Looks up a service.
    pub fn get(&self, id: ServiceId) -> Option<&SharedService> {
        self.services.get(&id)
    }

    /// Is a service with this id registered?
    pub fn contains(&self, id: ServiceId) -> bool {
        self.services.contains_key(&id)
    }

    /// Registered service ids, ascending.
    pub fn ids(&self) -> Vec<ServiceId> {
        self.services.keys().copied().collect()
    }

    /// Drives recovery: for every registered service, restore its
    /// checkpoint (if any) and replay its post-checkpoint records in log
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates the first service error; recovery is all-or-nothing per
    /// client.
    pub fn recover(&self, replay: &Replay) -> Result<()> {
        for (id, service) in &self.services {
            let mut svc = service.lock();
            if let Some(data) = replay.checkpoint_data(*id) {
                svc.restore_checkpoint(data)?;
            }
            for entry in replay.records_for(*id) {
                svc.replay(entry)?;
            }
        }
        Ok(())
    }

    /// Routes a cleaner block-move notification to the owning service.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] for an unknown service and
    /// propagates service errors.
    pub fn notify_block_moved(
        &self,
        id: ServiceId,
        old: BlockAddr,
        new: BlockAddr,
        create: &[u8],
    ) -> Result<()> {
        let service = self
            .services
            .get(&id)
            .ok_or_else(|| SwarmError::invalid(format!("no service {id} registered")))?;
        service.lock().block_moved(old, new, create)
    }

    /// Demands a checkpoint from every registered service (cleaner
    /// pressure).
    ///
    /// # Errors
    ///
    /// Propagates the first checkpoint failure.
    pub fn checkpoint_all(&self, log: &Log) -> Result<()> {
        for service in self.services.values() {
            service.lock().write_checkpoint(log)?;
        }
        Ok(())
    }
}

#[cfg(test)]
pub(crate) mod testing {
    use super::*;
    use swarm_log::Entry;

    /// A service that records everything that happens to it.
    #[derive(Debug, Default)]
    pub struct Recorder {
        pub id_raw: u16,
        pub restored: Option<Vec<u8>>,
        pub replayed: Vec<ReplayEntry>,
        pub moves: Vec<(BlockAddr, BlockAddr, Vec<u8>)>,
        pub checkpoints_written: u32,
    }

    impl Recorder {
        pub fn new(id_raw: u16) -> Self {
            Recorder {
                id_raw,
                ..Default::default()
            }
        }
    }

    impl Service for Recorder {
        fn id(&self) -> ServiceId {
            ServiceId::new(self.id_raw)
        }

        fn name(&self) -> &str {
            "recorder"
        }

        fn restore_checkpoint(&mut self, data: &[u8]) -> Result<()> {
            self.restored = Some(data.to_vec());
            Ok(())
        }

        fn replay(&mut self, entry: &ReplayEntry) -> Result<()> {
            // Reject checkpoints (the stack must filter those out via
            // records_for).
            if matches!(entry.entry, Entry::Checkpoint { .. }) {
                return Err(SwarmError::corrupt("checkpoint passed to replay"));
            }
            self.replayed.push(entry.clone());
            Ok(())
        }

        fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
            self.moves.push((old, new, create.to_vec()));
            Ok(())
        }

        fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
            self.checkpoints_written += 1;
            log.checkpoint(self.id(), b"recorder-ckpt")?;
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testing::Recorder;
    use super::*;
    use std::sync::Arc;
    use swarm_log::{recover, Log, LogConfig};
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::{ClientId, ServerId};

    fn cluster(n: u32) -> Arc<MemTransport> {
        let transport = Arc::new(MemTransport::new());
        for i in 0..n {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv);
        }
        transport
    }

    fn config(servers: u32) -> LogConfig {
        LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
            .unwrap()
            .fragment_size(4096)
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut stack = ServiceStack::new();
        stack
            .register(Arc::new(Mutex::new(Recorder::new(1))))
            .unwrap();
        let err = stack
            .register(Arc::new(Mutex::new(Recorder::new(1))))
            .unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn stack_recovery_routes_per_service() {
        let transport = cluster(2);
        let svc_a = ServiceId::new(1);
        let svc_b = ServiceId::new(2);
        {
            let log = Log::create(transport.clone(), config(2)).unwrap();
            log.checkpoint(svc_a, b"a-state").unwrap();
            log.append_record(svc_a, 1, b"a1").unwrap();
            log.append_record(svc_b, 9, b"b1").unwrap();
            log.flush().unwrap();
        }
        let (_log, replay) = recover(transport, config(2), &[svc_a, svc_b]).unwrap();

        let a = Arc::new(Mutex::new(Recorder::new(1)));
        let b = Arc::new(Mutex::new(Recorder::new(2)));
        let mut stack = ServiceStack::new();
        stack.register(a.clone()).unwrap();
        stack.register(b.clone()).unwrap();
        stack.recover(&replay).unwrap();

        assert_eq!(a.lock().restored.as_deref(), Some(&b"a-state"[..]));
        assert_eq!(a.lock().replayed.len(), 1);
        assert!(b.lock().restored.is_none());
        assert_eq!(b.lock().replayed.len(), 1);
    }

    #[test]
    fn checkpoint_all_touches_every_service() {
        let transport = cluster(2);
        let log = Log::create(transport, config(2)).unwrap();
        let a = Arc::new(Mutex::new(Recorder::new(1)));
        let b = Arc::new(Mutex::new(Recorder::new(2)));
        let mut stack = ServiceStack::new();
        stack.register(a.clone()).unwrap();
        stack.register(b.clone()).unwrap();
        stack.checkpoint_all(&log).unwrap();
        assert_eq!(a.lock().checkpoints_written, 1);
        assert_eq!(b.lock().checkpoints_written, 1);
        assert!(log.last_checkpoint(ServiceId::new(1)).is_some());
        assert!(log.last_checkpoint(ServiceId::new(2)).is_some());
    }

    #[test]
    fn block_move_notification_routed() {
        use swarm_types::{BlockAddr, FragmentId};
        let a = Arc::new(Mutex::new(Recorder::new(1)));
        let mut stack = ServiceStack::new();
        stack.register(a.clone()).unwrap();
        let old = BlockAddr::new(FragmentId::new(ClientId::new(1), 0), 10, 4);
        let new = BlockAddr::new(FragmentId::new(ClientId::new(1), 8), 64, 4);
        stack
            .notify_block_moved(ServiceId::new(1), old, new, b"create-info")
            .unwrap();
        assert_eq!(a.lock().moves.len(), 1);
        let err = stack
            .notify_block_moved(ServiceId::new(9), old, new, b"")
            .unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    }
}
