//! Services layered on the Swarm log (§2.2).
//!
//! "Swarm provides additional functionality for application programs by
//! layering services on top of the log. Each service can extend and/or
//! hide the functionality of the services on which it is stacked."
//!
//! This crate provides:
//!
//! * [`Service`] / [`ServiceStack`] — the stacking framework: recovery
//!   dispatch (checkpoint restore + record replay), cleaner notifications
//!   (block moves), and demand checkpoints.
//! * [`AruService`] — *atomic recovery units* (the paper's worked
//!   example): groups of records that replay all-or-nothing.
//! * [`LogicalDisk`] — an overwritable block-device abstraction that hides
//!   the append-only log (the paper's "logical disk" service).
//! * [`LruCache`] / [`CachingReader`] — the client-side caching service
//!   the paper credits for masking read latency.
//! * [`transform`] — stackable per-block transforms: checksums
//!   ([`ChecksumTransform`]), LZSS compression ([`CompressTransform`]),
//!   and XTEA-CTR encryption ([`EncryptTransform`]) — the paper's
//!   "compression service; an encryption service; etc."

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aru;
pub mod cache;
pub mod coop;
pub mod logical_disk;
pub mod lzss;
pub mod service;
pub mod transform;
pub mod xtea;

pub use aru::{AruId, AruService, AruServiceAdapter};
pub use cache::{CachingReader, LruCache};
pub use coop::{CoopCache, CoopCacheGroup, CoopStats};
pub use logical_disk::{LogicalDisk, LogicalDiskService};
pub use service::{Service, ServiceStack};
pub use transform::{
    BlockTransform, ChecksumTransform, CompressTransform, EncryptTransform, TransformStack,
};
