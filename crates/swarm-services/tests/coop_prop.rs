//! Property tests for the networked cooperative cache (DESIGN.md §18):
//! random peer populations with mid-run churn (join/leave), random server
//! outages, and interleaved reads/writes. The invariant is absolute —
//! every read returns byte-exact data whether it was served from the
//! reader's own cache, a peer's cache over `PeerRead`, the home servers,
//! or parity reconstruction — and a stale directory entry may cost a
//! wasted probe but never wrong bytes.

use std::sync::Arc;

use proptest::prelude::*;
use swarm_log::{Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_services::{CoopCache, CoopCacheGroup};
use swarm_types::{BlockAddr, Bytes, ClientId, ServerId, ServiceId};

const SVC: ServiceId = ServiceId::new(1);
const SERVERS: u32 = 3;
const CLIENTS: u32 = 5;

fn cluster() -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..SERVERS {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn log_for(transport: &Arc<MemTransport>, client: u32) -> Arc<Log> {
    let cfg = LogConfig::new(
        ClientId::new(client),
        (0..SERVERS).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(4096)
    .cache_fragments(0); // the coop cache is the only cache tier under test
    Arc::new(Log::create(transport.clone(), cfg).unwrap())
}

/// One step of a random cooperative-cache workload.
#[derive(Debug, Clone)]
enum Op {
    /// Client `reader` reads block `block` (both mod the live sizes).
    Read { reader: u32, block: usize },
    /// Client `who` leaves if joined, rejoins (fresh, empty cache) if not.
    Churn { who: u32 },
    /// Take server `which` down, or bring the downed server back. At
    /// most one server is ever down (the stripe parity budget).
    FlipServer { which: u32 },
    /// Client 1 appends a fresh block and seeds its cache via `put`.
    Write { data: Vec<u8> },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..CLIENTS, 0usize..64).prop_map(|(reader, block)| Op::Read { reader, block }),
        2 => (0..CLIENTS).prop_map(|who| Op::Churn { who }),
        1 => (0..SERVERS).prop_map(|which| Op::FlipServer { which }),
        2 => proptest::collection::vec(any::<u8>(), 1..700).prop_map(|data| Op::Write { data }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn prop_every_read_is_byte_exact_under_churn(
        seed_blocks in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..700), 1..6),
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let transport = cluster();
        let group = CoopCacheGroup::new();

        // Client ids 1..=CLIENTS participate; each keeps its own log
        // handle for the whole run and a cache slot that churns.
        let logs: Vec<Arc<Log>> =
            (1..=CLIENTS).map(|c| log_for(&transport, c)).collect();
        let mut caches: Vec<Option<Arc<CoopCache>>> = (0..CLIENTS as usize)
            .map(|i| {
                Some(
                    CoopCache::join(
                        group.clone(),
                        ClientId::new(i as u32 + 1),
                        logs[i].clone(),
                        8,
                        transport.clone(),
                    )
                    .unwrap(),
                )
            })
            .collect();

        // Seed shared blocks from client 1's log.
        let mut blocks: Vec<(BlockAddr, Vec<u8>)> = Vec::new();
        for data in &seed_blocks {
            let addr = logs[0].append_block(SVC, b"", data).unwrap();
            blocks.push((addr, data.clone()));
        }
        logs[0].flush().unwrap();

        let mut down: Option<u32> = None;
        for op in ops {
            match op {
                Op::Read { reader, block } => {
                    let i = reader as usize;
                    let (addr, expect) = &blocks[block % blocks.len()];
                    match &caches[i] {
                        Some(cache) => {
                            let got = cache.read(*addr).unwrap();
                            prop_assert_eq!(&*got, &expect[..], "coop read, client {}", i + 1);
                        }
                        None => {
                            // Departed clients read straight from the log.
                            let got = logs[i].read(*addr).unwrap();
                            prop_assert_eq!(&*got, &expect[..], "log read, client {}", i + 1);
                        }
                    }
                }
                Op::Churn { who } => {
                    let i = who as usize;
                    match caches[i].take() {
                        Some(cache) => cache.leave(),
                        None => {
                            caches[i] = Some(
                                CoopCache::join(
                                    group.clone(),
                                    ClientId::new(who + 1),
                                    logs[i].clone(),
                                    8,
                                    transport.clone(),
                                )
                                .unwrap(),
                            );
                        }
                    }
                }
                Op::FlipServer { which } => match down {
                    Some(d) => {
                        transport.set_down(ServerId::new(d), false);
                        down = None;
                    }
                    None => {
                        transport.set_down(ServerId::new(which), true);
                        down = Some(which);
                    }
                },
                Op::Write { data } => {
                    // Writes need the full stripe group: restore any
                    // downed server first (reads still exercised the
                    // reconstruction path while it was down).
                    if let Some(d) = down.take() {
                        transport.set_down(ServerId::new(d), false);
                    }
                    let addr = logs[0].append_block(SVC, b"", &data).unwrap();
                    logs[0].flush().unwrap();
                    if let Some(cache) = &caches[0] {
                        cache.put(addr, Bytes::from(data.clone()));
                    }
                    blocks.push((addr, data));
                }
            }
        }

        // Final sweep: every member (and every departed client, via its
        // log) sees every block byte-exact, whatever the hint tables say.
        if let Some(d) = down {
            transport.set_down(ServerId::new(d), false);
        }
        for (i, slot) in caches.iter().enumerate() {
            for (addr, expect) in &blocks {
                let got = match slot {
                    Some(cache) => cache.read(*addr).unwrap(),
                    None => logs[i].read(*addr).unwrap(),
                };
                prop_assert_eq!(&*got, &expect[..], "final sweep, client {}", i + 1);
            }
        }
    }
}
