//! Concurrent stress over the networked cooperative cache: many client
//! threads read and write through their caches while one member churns
//! (leave/rejoin) and raw `PeerRead`s hammer a responder from outside.
//! Run under ThreadSanitizer in CI — the peer responder executes on
//! transport threads concurrently with its owner's front-end calls, and
//! this test exists to race those paths.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use swarm_log::{Log, LogConfig};
use swarm_net::{peer_server_id, MemTransport, Request, Response, Transport};
use swarm_server::{MemStore, StorageServer};
use swarm_services::{CoopCache, CoopCacheGroup};
use swarm_types::{BlockAddr, ClientId, ServerId, ServiceId};

const SVC: ServiceId = ServiceId::new(1);
const SERVERS: u32 = 3;
const WORKERS: u32 = 4;
const READS_PER_WORKER: usize = 300;

fn log_for(transport: &Arc<MemTransport>, client: u32) -> Arc<Log> {
    let cfg = LogConfig::new(
        ClientId::new(client),
        (0..SERVERS).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(4096)
    .cache_fragments(0);
    Arc::new(Log::create(transport.clone(), cfg).unwrap())
}

#[test]
fn concurrent_readers_with_churn_and_raw_probes() {
    let transport = Arc::new(MemTransport::new());
    for i in 0..SERVERS {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    let group = CoopCacheGroup::new();

    // Seed blocks from client 1's log; every block's contents are a
    // function of its index so readers can verify without a shared map.
    let writer_log = log_for(&transport, 1);
    let blocks: Vec<(BlockAddr, Vec<u8>)> = (0..16u8)
        .map(|i| {
            let data = vec![i ^ 0x5a; 64 + i as usize * 7];
            let addr = writer_log.append_block(SVC, b"", &data).unwrap();
            (addr, data)
        })
        .collect();
    writer_log.flush().unwrap();

    let caches: Vec<Arc<CoopCache>> = (1..=WORKERS)
        .map(|c| {
            let log = if c == 1 {
                writer_log.clone()
            } else {
                log_for(&transport, c)
            };
            CoopCache::join(group.clone(), ClientId::new(c), log, 8, transport.clone()).unwrap()
        })
        .collect();

    let stop = Arc::new(AtomicBool::new(false));
    let blocks = Arc::new(blocks);
    let mut readers = Vec::new();
    let mut background = Vec::new();

    // Reader threads: each hammers its own cache with an LCG-scrambled
    // block sequence, verifying every byte.
    for (w, cache) in caches.iter().enumerate() {
        let cache = cache.clone();
        let blocks = blocks.clone();
        readers.push(std::thread::spawn(move || {
            let mut x = 0x9e37u32.wrapping_add(w as u32);
            for _ in 0..READS_PER_WORKER {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                let (addr, expect) = &blocks[(x >> 8) as usize % blocks.len()];
                let got = cache.read(*addr).unwrap();
                assert_eq!(&*got, &expect[..], "worker {w}");
            }
        }));
    }

    // Churn thread: one extra member joins and leaves in a tight loop,
    // racing the others' gossip pushes and hinted probes at it.
    {
        let transport = transport.clone();
        let group = group.clone();
        let stop = stop.clone();
        let churn_log = log_for(&transport, WORKERS + 1);
        background.push(std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let cache = CoopCache::join(
                    group.clone(),
                    ClientId::new(WORKERS + 1),
                    churn_log.clone(),
                    4,
                    transport.clone(),
                )
                .unwrap();
                cache.leave();
            }
        }));
    }

    // Raw-probe thread: dials worker 1's responder directly and issues
    // PeerReads (including for blocks it never cached) while its owner
    // is mutating the same cache.
    {
        let transport = transport.clone();
        let blocks = blocks.clone();
        let stop = stop.clone();
        background.push(std::thread::spawn(move || {
            let peer = peer_server_id(ClientId::new(1));
            while !stop.load(Ordering::Relaxed) {
                let Ok(mut conn) = transport.connect(peer, ClientId::new(99)) else {
                    continue;
                };
                for (addr, expect) in blocks.iter() {
                    match conn.call(&Request::PeerRead {
                        addr: *addr,
                        hints: vec![],
                    }) {
                        Ok(Response::PeerData { data, .. }) => {
                            if let Some(d) = data {
                                assert_eq!(&*d, &expect[..], "raw probe returned wrong bytes");
                            }
                        }
                        Ok(other) => panic!("unexpected response: {other:?}"),
                        Err(_) => break,
                    }
                }
            }
        }));
    }

    // Readers finish first; then wind down the churn/probe threads.
    for t in readers {
        t.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    for t in background {
        t.join().unwrap();
    }

    // Cooperation actually happened: someone served someone.
    let served: u64 = caches.iter().map(|c| c.stats().served_to_peers).sum();
    let peer_hits: u64 = caches.iter().map(|c| c.stats().peer_hits).sum();
    assert!(peer_hits > 0, "no peer hits in a shared hot set");
    assert!(served > 0, "no blocks served to peers");
}
