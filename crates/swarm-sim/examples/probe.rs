fn main() {
    let cal = swarm_sim::Calibration::testbed_1999();
    for clients in [1u32, 2, 4] {
        for servers in [1u32, 2, 3, 4, 5, 6, 7, 8] {
            let p = swarm_sim::simulate_write(&cal, clients, servers, 50_000, 4096);
            println!(
                "c={clients} s={servers} raw={:.2} useful={:.2}",
                p.raw_mb_per_s, p.useful_mb_per_s
            );
        }
    }
    let r = swarm_sim::simulate_read(&cal, 50_000, 4096);
    println!("read {:.2} MB/s", r.mb_per_s);
}
