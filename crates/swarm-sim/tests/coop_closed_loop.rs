//! Real-stack cross-check for the many-client contention model: a
//! 32-client closed-loop run over the actual log + cooperative cache on
//! `MemTransport`. The sim (see `manyclient`) predicts hundreds of
//! clients share servers without collapse; this test pins the part the
//! model can't see — the cooperative cache really does absorb repeat
//! reads of a shared hot set, serving them from peer caches instead of
//! the home servers, and every byte stays exact.

use std::sync::Arc;

use swarm_log::{Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_services::{CoopCache, CoopCacheGroup};
use swarm_types::{BlockAddr, ClientId, ServerId, ServiceId};

const SVC: ServiceId = ServiceId::new(1);
const SERVERS: u32 = 4;
const CLIENTS: u32 = 32;
const OPS_PER_CLIENT: usize = 48;

fn log_for(transport: &Arc<MemTransport>, client: u32) -> Arc<Log> {
    let cfg = LogConfig::new(
        ClientId::new(client),
        (0..SERVERS).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(4096)
    .cache_fragments(0);
    Arc::new(Log::create(transport.clone(), cfg).unwrap())
}

#[test]
fn thirty_two_client_closed_loop_serves_peer_hits() {
    let transport = Arc::new(MemTransport::new());
    for i in 0..SERVERS {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    let group = CoopCacheGroup::new();

    // A shared hot set written by client 1 — the workload every client
    // then reads in its own closed loop.
    let writer_log = log_for(&transport, 1);
    let blocks: Vec<(BlockAddr, Vec<u8>)> = (0..24u8)
        .map(|i| {
            let data = vec![i.wrapping_mul(37) ^ 0xc3; 96 + i as usize * 11];
            let addr = writer_log.append_block(SVC, b"", &data).unwrap();
            (addr, data)
        })
        .collect();
    writer_log.flush().unwrap();

    let caches: Vec<Arc<CoopCache>> = (1..=CLIENTS)
        .map(|c| {
            let log = if c == 1 {
                writer_log.clone()
            } else {
                log_for(&transport, c)
            };
            CoopCache::join(group.clone(), ClientId::new(c), log, 8, transport.clone()).unwrap()
        })
        .collect();

    // Closed loop: each client issues its next read only after the
    // previous one returned, walking an LCG-scrambled tour of the hot
    // set. Interleave clients round-robin so the directory gossip from
    // early readers is live by the time later readers want the blocks.
    let mut cursors: Vec<u32> = (0..CLIENTS).map(|c| 0x9e37u32.wrapping_add(c)).collect();
    for _round in 0..OPS_PER_CLIENT {
        for (w, cache) in caches.iter().enumerate() {
            let x = &mut cursors[w];
            *x = x.wrapping_mul(1664525).wrapping_add(1013904223);
            let (addr, expect) = &blocks[(*x >> 8) as usize % blocks.len()];
            let got = cache.read(*addr).unwrap();
            assert_eq!(&*got, &expect[..], "client {}", w + 1);
        }
    }

    // The cooperative tier did real work: some reads were served from
    // peer caches rather than the home servers, and the per-client
    // stats agree with the symmetric aggregate.
    let mut peer_hits = 0u64;
    let mut served = 0u64;
    let mut server_fetches = 0u64;
    for cache in &caches {
        let stats = cache.stats();
        peer_hits += stats.peer_hits;
        served += stats.served_to_peers;
        server_fetches += stats.server_fetches;
    }
    assert!(
        peer_hits > 0,
        "32-client closed loop produced no peer hits \
         (served={served}, server_fetches={server_fetches})"
    );
    assert!(served >= peer_hits, "every peer hit was served by someone");
    assert!(
        server_fetches < CLIENTS as u64 * OPS_PER_CLIENT as u64,
        "cooperation saved no server reads"
    );
}
