//! Calibration constants for the 1999 testbed, each anchored to a number
//! the paper states.
//!
//! | constant | value | provenance |
//! |----------|-------|------------|
//! | network link | 12.5 MB/s | "100 Mb/s switched Ethernet" (§3.3) |
//! | fragment size | 1 MB | §3.3 |
//! | client CPU, per raw byte | 0.158 µs | "raw write bandwidth of a single client is 6.1 MB/s … nearly saturates the client" (§3.4): 1/6.1 minus the per-fragment share |
//! | client CPU, per fragment | 6 ms | amortized fragment formation/RPC cost; with the per-byte cost reproduces the flat 6.1–6.4 MB/s client ceiling |
//! | server service rate | 7.7 MB/s | "a single server is capable of sustaining 7.7 MB/s" (§3.4); the disk itself does 10.3 (see [`crate::disk`]) — the gap is server-side per-fragment processing |
//! | uncached 4 KB read | 1.7 MB/s | "a Swarm client can read 4 KB blocks from the servers at only 1.7 MB/s" (§3.4) |

use crate::disk::SimDisk;

/// The testbed model handed to every simulation.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Fragment size in bytes.
    pub fragment_size: u64,
    /// Per-link network bandwidth, MB/s (full duplex, switched).
    pub net_mb_per_s: f64,
    /// Client CPU cost per byte pushed through the log layer (data or
    /// parity — copying and XOR cost alike on a 200 MHz P6), µs/byte.
    pub client_cpu_per_byte: f64,
    /// Client CPU cost per fragment (formation, checksums, RPC), µs.
    pub client_cpu_per_fragment: u64,
    /// Server fragment service rate (network processing + disk), MB/s.
    pub server_mb_per_s: f64,
    /// Per-server outstanding-fragment window per client (the paper's
    /// depth-2 pipelining / flow control, §2.1.2).
    pub flow_window: usize,
    /// Fixed latency of one small read RPC (request processing + disk
    /// positioning on the server), µs.
    pub read_rpc_us: u64,
    /// Client CPU per byte on the read path, µs/byte.
    pub read_cpu_per_byte: f64,
    /// The server disk model (for Figure 5 and the in-text bound).
    pub disk: SimDisk,
}

impl Calibration {
    /// The paper's testbed (§3.3).
    pub fn testbed_1999() -> Calibration {
        Calibration {
            fragment_size: 1 << 20,
            net_mb_per_s: 12.5,
            // 1/6.35 µs/B total at saturation; split so that the ceiling
            // sits at ~6.1 MB/s for 1 MB fragments.
            client_cpu_per_byte: 0.1582,
            client_cpu_per_fragment: 6_000,
            server_mb_per_s: 7.7,
            flow_window: 2,
            // 4 KB at 1.7 MB/s = 2.41 ms/block; transfer (0.33 ms) and
            // client copy leave ~1.9 ms of RPC + server positioning.
            read_rpc_us: 1_900,
            read_cpu_per_byte: 0.04,
            disk: SimDisk::viking_ii(),
        }
    }

    /// Client CPU time to process one fragment of `bytes`, µs.
    pub fn client_fragment_us(&self, bytes: u64) -> u64 {
        (bytes as f64 * self.client_cpu_per_byte).round() as u64 + self.client_cpu_per_fragment
    }

    /// Server time to ingest one fragment of `bytes`, µs.
    pub fn server_fragment_us(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.server_mb_per_s).round() as u64
    }

    /// Network time for `bytes` on one link, µs.
    pub fn link_us(&self, bytes: u64) -> u64 {
        (bytes as f64 / self.net_mb_per_s).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn client_ceiling_matches_paper() {
        // One client pushing 1 MB fragments flat out: ~6.1 MB/s.
        let cal = Calibration::testbed_1999();
        let us_per_fragment = cal.client_fragment_us(cal.fragment_size);
        let rate = cal.fragment_size as f64 / us_per_fragment as f64;
        assert!(
            (rate - 6.1).abs() < 0.2,
            "client ceiling {rate:.2} MB/s, paper says ~6.1"
        );
    }

    #[test]
    fn server_rate_matches_paper() {
        let cal = Calibration::testbed_1999();
        let rate = cal.fragment_size as f64 / cal.server_fragment_us(cal.fragment_size) as f64;
        assert!(
            (rate - 7.7).abs() < 0.1,
            "server {rate:.2} MB/s, paper says 7.7"
        );
    }

    #[test]
    fn network_is_not_the_single_client_bottleneck() {
        let cal = Calibration::testbed_1999();
        assert!(cal.net_mb_per_s > 6.4, "100 Mb/s > client ceiling");
        assert!(
            cal.net_mb_per_s > cal.server_mb_per_s,
            "link outruns a server"
        );
    }
}
