//! An ext2/FFS-style file system model: the Figure 5 baseline.
//!
//! The paper compares Sting against Linux ext2fs on a local disk and
//! explains the outcome structurally: "Sting makes much better use of the
//! disk by writing data sequentially to the log and writing the log to
//! the disk in 1 MB fragments", while ext2fs "is more disk-bound" —
//! update-in-place file systems scatter inodes, directory blocks,
//! allocation bitmaps, and file data across block groups, so a
//! metadata-heavy workload degenerates into small, seek-dominated disk
//! writes.
//!
//! `Ext2Sim` models exactly that structure at the disk-access level: each
//! operation dirties the blocks ext2 would dirty; dirty blocks are
//! written back (bdflush + unmount, which the MAB forces) with the
//! locality ext2's allocator would give them. We do not model free-list
//! layout precisely — only the access-pattern *shape* matters for the
//! figure, and that shape is "a few random I/Os per created file".

use std::collections::BTreeMap;

use crate::disk::{Locality, SimDisk};

/// Dirty-block bookkeeping for one modelled ext2 volume.
#[derive(Debug)]
pub struct Ext2Sim {
    disk: SimDisk,
    /// path → size (the namespace content itself is irrelevant here).
    files: BTreeMap<String, u64>,
    /// Metadata blocks dirtied (inode table, directory, bitmap writes):
    /// each costs a random access at writeback.
    dirty_metadata_blocks: u64,
    /// Data extents dirtied: (bytes, is_new_file). A new extent pays one
    /// short positioning seek into its block group, then streams.
    dirty_data_extents: Vec<u64>,
    /// Accumulated disk time already spent (µs).
    disk_us: u64,
    block_size: u64,
}

impl Ext2Sim {
    /// A fresh volume on the given disk.
    pub fn new(disk: SimDisk) -> Ext2Sim {
        Ext2Sim {
            disk,
            files: BTreeMap::new(),
            dirty_metadata_blocks: 0,
            dirty_data_extents: Vec::new(),
            disk_us: 0,
            block_size: 4096,
        }
    }

    /// Creates a directory: dirties its inode, its parent's directory
    /// block, and the inode bitmap.
    pub fn mkdir(&mut self, _path: &str) {
        self.dirty_metadata_blocks += 3;
    }

    /// Creates/overwrites a file of `bytes`: inode + directory entry +
    /// block bitmap, plus the data itself as one extent.
    pub fn write_file(&mut self, path: &str, bytes: u64) {
        let new = !self.files.contains_key(path);
        self.files.insert(path.to_string(), bytes);
        // inode write, block bitmap; plus directory block for new names.
        self.dirty_metadata_blocks += if new { 3 } else { 1 };
        if bytes > 0 {
            self.dirty_data_extents.push(bytes);
        }
    }

    /// stat/read metadata: served from the inode/buffer cache (the MAB
    /// working set fits in the testbed's 128 MB), no disk traffic.
    pub fn stat(&mut self, _path: &str) {}

    /// Reads file contents: cache hit for data written earlier in the
    /// benchmark (again, fits in RAM).
    pub fn read_file(&mut self, _path: &str, _bytes: u64) {}

    /// Number of files currently in the namespace.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Writes back everything dirty (bdflush interval expiry, `sync`, or
    /// the MAB's unmount). Returns the disk time consumed, µs.
    pub fn flush(&mut self) -> u64 {
        let mut us = 0u64;
        // Metadata: scattered small writes — the killer.
        for _ in 0..self.dirty_metadata_blocks {
            us += self.disk.access_us(self.block_size, Locality::Random);
        }
        self.dirty_metadata_blocks = 0;
        // Data: one positioning per extent, then sequential streaming.
        for bytes in self.dirty_data_extents.drain(..) {
            us += self
                .disk
                .access_us(bytes.min(self.block_size), Locality::Nearby);
            if bytes > self.block_size {
                us += self
                    .disk
                    .access_us(bytes - self.block_size, Locality::Sequential);
            }
        }
        self.disk_us += us;
        us
    }

    /// Total disk time consumed so far, µs.
    pub fn disk_us(&self) -> u64 {
        self.disk_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn created_files_cost_metadata_and_data_io() {
        let mut fs = Ext2Sim::new(SimDisk::viking_ii());
        fs.write_file("/a", 10_000);
        let us = fs.flush();
        // 3 random metadata blocks (~12.5 ms each) + positioned data.
        assert!(us > 30_000, "flush cost only {us} µs");
        assert_eq!(fs.file_count(), 1);
    }

    #[test]
    fn overwrite_is_cheaper_than_create() {
        let mut fs = Ext2Sim::new(SimDisk::viking_ii());
        fs.write_file("/a", 10_000);
        let create = fs.flush();
        fs.write_file("/a", 10_000);
        let overwrite = fs.flush();
        assert!(overwrite < create);
    }

    #[test]
    fn reads_and_stats_are_cache_hits() {
        let mut fs = Ext2Sim::new(SimDisk::viking_ii());
        fs.write_file("/a", 10_000);
        fs.flush();
        fs.stat("/a");
        fs.read_file("/a", 10_000);
        assert_eq!(fs.flush(), 0, "cached reads dirty nothing");
    }

    #[test]
    fn many_small_files_are_seek_dominated() {
        // The structural claim behind Figure 5: per-file cost is mostly
        // positioning, not transfer.
        let mut fs = Ext2Sim::new(SimDisk::viking_ii());
        let mut bytes = 0;
        for i in 0..100 {
            fs.write_file(&format!("/f{i}"), 8192);
            bytes += 8192u64;
        }
        let us = fs.flush();
        let effective = bytes as f64 / us as f64;
        assert!(
            effective < 1.0,
            "ext2-style small-file writeback runs at {effective:.2} MB/s — \
             should be well under 1 MB/s vs the disk's 10.3 sequential"
        );
    }
}
