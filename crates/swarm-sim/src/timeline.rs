//! Resource-timeline simulation core.
//!
//! Every contended piece of hardware (a client CPU, a NIC, a disk) is a
//! [`Timeline`]: a serialized resource that services one request at a
//! time. A simulated operation is a chain of acquisitions — "CPU from
//! when I'm ready, then my NIC from when the CPU finished, then the
//! server's NIC, then its disk" — and contention, queueing, and
//! pipelining all fall out of the `max(ready, free_at)` rule. Time is in
//! integer microseconds for determinism.

/// One serialized resource.
#[derive(Debug, Clone, Default)]
pub struct Timeline {
    free_at: u64,
    busy: u64,
}

impl Timeline {
    /// A resource that is free at time zero.
    pub fn new() -> Timeline {
        Timeline {
            free_at: 0,
            busy: 0,
        }
    }

    /// Acquires the resource for `duration` µs, no earlier than `ready`.
    /// Returns (start, end).
    pub fn acquire(&mut self, ready: u64, duration: u64) -> (u64, u64) {
        let start = ready.max(self.free_at);
        let end = start + duration;
        self.free_at = end;
        self.busy += duration;
        (start, end)
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> u64 {
        self.free_at
    }

    /// Total busy time accumulated (for utilization numbers).
    pub fn busy(&self) -> u64 {
        self.busy
    }

    /// Utilization over `[0, horizon]`.
    pub fn utilization(&self, horizon: u64) -> f64 {
        if horizon == 0 {
            0.0
        } else {
            self.busy as f64 / horizon as f64
        }
    }
}

/// Converts a byte count and a rate in MB/s into a duration in µs.
pub fn transfer_us(bytes: u64, mb_per_s: f64) -> u64 {
    ((bytes as f64) / mb_per_s).round() as u64 // 1 MB/s == 1 byte/µs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquisitions_serialize() {
        let mut t = Timeline::new();
        assert_eq!(t.acquire(0, 10), (0, 10));
        // Ready earlier than free: queues.
        assert_eq!(t.acquire(5, 10), (10, 20));
        // Ready later than free: idles.
        assert_eq!(t.acquire(100, 10), (100, 110));
        assert_eq!(t.busy(), 30);
    }

    #[test]
    fn utilization_accounts_busy_over_horizon() {
        let mut t = Timeline::new();
        t.acquire(0, 50);
        assert!((t.utilization(100) - 0.5).abs() < 1e-9);
        assert_eq!(t.utilization(0), 0.0);
    }

    #[test]
    fn transfer_us_is_mb_per_s() {
        // 1 MB at 1 MB/s = 1 second = 1_000_000 µs.
        assert_eq!(transfer_us(1_000_000, 1.0), 1_000_000);
        // 1 MB at 12.5 MB/s (100 Mb/s Ethernet) = 80 ms.
        assert_eq!(transfer_us(1_000_000, 12.5), 80_000);
    }

    #[test]
    fn pipeline_of_two_stages_overlaps() {
        // Two-stage pipeline, each 10 µs/item: N items take ~N*10 + 10,
        // not N*20 — the classic overlap the paper's writer exploits.
        let mut stage1 = Timeline::new();
        let mut stage2 = Timeline::new();
        let mut done = 0;
        for _ in 0..100 {
            let (_, e1) = stage1.acquire(0, 10);
            let (_, e2) = stage2.acquire(e1, 10);
            done = e2;
        }
        assert_eq!(done, 100 * 10 + 10);
    }
}
