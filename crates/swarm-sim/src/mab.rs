//! The Modified Andrew Benchmark (Figure 5).
//!
//! Ousterhout's MAB \[11\] exercises "typical file operations, such as
//! copying files, traversing a directory hierarchy, compilation, etc." in
//! five phases: (1) create a directory tree, (2) copy a source tree into
//! it, (3) stat every file (`ls -lR`), (4) read every file (`grep`/`wc`),
//! (5) compile. The paper runs it on Sting (one client, one storage
//! server) and on ext2fs (local disk), unmounting at the end so writes
//! actually reach disk; Sting finishes in 9.4 s vs ext2fs's 17.9 s, at
//! 93% vs 57% CPU utilization.
//!
//! [`mab_workload`] generates the op stream once; [`run_sting_model`] and
//! [`run_ext2_model`] cost it on the simulated testbed. The same op
//! stream can be replayed against the *real* [`sting`]-crate file system
//! in integration tests, keeping the modelled workload honest.
//!
//! [`sting`]: https://crates.io/crates/sting

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calib::Calibration;
use crate::ext2sim::Ext2Sim;

/// One benchmark operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsOp {
    /// Phase 1: create a directory.
    Mkdir(String),
    /// Phases 2 & 5: write a whole file of `bytes`.
    WriteFile {
        /// Absolute path.
        path: String,
        /// File size.
        bytes: u64,
    },
    /// Phase 3: stat one path.
    Stat(String),
    /// Phase 4: read a whole file.
    ReadFile {
        /// Absolute path.
        path: String,
        /// File size.
        bytes: u64,
    },
    /// Phase 5: pure computation (the compiler itself).
    Compute {
        /// CPU time on the 200 MHz testbed, µs.
        us: u64,
    },
}

/// Workload shape knobs (defaults follow the Andrew benchmark's source
/// tree: ~70 files, a couple of MB, a directory skeleton, a compile).
#[derive(Debug, Clone)]
pub struct MabConfig {
    /// Directories in the skeleton (phase 1).
    pub dirs: u32,
    /// Source files copied (phase 2).
    pub files: u32,
    /// Mean source file size, bytes.
    pub mean_file_size: u64,
    /// Compiler CPU per compilation unit, µs (200 MHz Pentium Pro).
    pub compile_unit_us: u64,
    /// Object file size as a fraction of source size.
    pub object_ratio: f64,
    /// RNG seed for file-size variation.
    pub seed: u64,
}

impl Default for MabConfig {
    fn default() -> Self {
        MabConfig {
            dirs: 25,
            files: 70,
            mean_file_size: 23 * 1024,
            compile_unit_us: 93_000,
            object_ratio: 0.45,
            seed: 0x004d_4142, // "MAB"
        }
    }
}

/// Generates the five-phase op stream.
pub fn mab_workload(cfg: &MabConfig) -> Vec<FsOp> {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut ops = Vec::new();

    // Phase 1: directory skeleton.
    ops.push(FsOp::Mkdir("/mab".into()));
    for d in 0..cfg.dirs {
        ops.push(FsOp::Mkdir(format!("/mab/dir{d}")));
    }

    // Phase 2: copy the source tree.
    let mut files = Vec::new();
    for f in 0..cfg.files {
        let dir = f % cfg.dirs;
        let size = (cfg.mean_file_size as f64 * rng.gen_range(0.2..2.0)) as u64;
        let path = format!("/mab/dir{dir}/src{f}.c");
        ops.push(FsOp::WriteFile {
            path: path.clone(),
            bytes: size,
        });
        files.push((path, size));
    }

    // Phase 3: ls -lR (two traversals, as in the paper's MAB variant).
    for _ in 0..2 {
        ops.push(FsOp::Stat("/mab".into()));
        for d in 0..cfg.dirs {
            ops.push(FsOp::Stat(format!("/mab/dir{d}")));
        }
        for (path, _) in &files {
            ops.push(FsOp::Stat(path.clone()));
        }
    }

    // Phase 4: grep + wc — every file read twice.
    for _ in 0..2 {
        for (path, size) in &files {
            ops.push(FsOp::ReadFile {
                path: path.clone(),
                bytes: *size,
            });
        }
    }

    // Phase 5: compile — read source, burn CPU, write object; then link.
    let mut objects_total = 0u64;
    for (path, size) in &files {
        ops.push(FsOp::ReadFile {
            path: path.clone(),
            bytes: *size,
        });
        ops.push(FsOp::Compute {
            us: cfg.compile_unit_us,
        });
        let obj = (*size as f64 * cfg.object_ratio) as u64;
        objects_total += obj;
        ops.push(FsOp::WriteFile {
            path: path.replace(".c", ".o"),
            bytes: obj,
        });
    }
    ops.push(FsOp::Compute {
        us: cfg.compile_unit_us * 2, // link
    });
    ops.push(FsOp::WriteFile {
        path: "/mab/a.out".into(),
        bytes: objects_total / 2,
    });
    ops
}

/// Per-operation CPU cost model (identical workload, different per-byte
/// costs: ext2 pushes every byte through the kernel page path twice and
/// does block allocation per write; Sting copies into its log once).
#[derive(Debug, Clone)]
pub struct CpuCosts {
    /// Fixed syscall/FS-operation cost, µs.
    pub per_op_us: u64,
    /// Per byte written, µs.
    pub write_per_byte: f64,
    /// Per byte read (from cache), µs.
    pub read_per_byte: f64,
}

impl CpuCosts {
    /// Sting's client-side costs.
    pub fn sting() -> CpuCosts {
        CpuCosts {
            per_op_us: 200,
            write_per_byte: 0.35,
            read_per_byte: 0.15,
        }
    }

    /// ext2's in-kernel costs.
    pub fn ext2() -> CpuCosts {
        CpuCosts {
            per_op_us: 350,
            write_per_byte: 0.85,
            read_per_byte: 0.25,
        }
    }
}

/// Outcome of one modelled MAB run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MabResult {
    /// Wall-clock time, µs.
    pub elapsed_us: u64,
    /// CPU busy time, µs.
    pub cpu_us: u64,
    /// Disk (and network, for Sting) time not overlapped with CPU, µs.
    pub io_us: u64,
    /// CPU utilization (paper: Sting 93%, ext2 57%).
    pub cpu_utilization: f64,
}

/// Runs the op stream on the Sting model: one client, one storage server
/// (the paper's Figure 5 configuration). All writes append to the log;
/// the log streams to the server in 1 MB fragments mostly overlapped
/// with computation, leaving only the final flush and per-record sync
/// latency exposed.
pub fn run_sting_model(cal: &Calibration, ops: &[FsOp]) -> MabResult {
    let costs = CpuCosts::sting();
    let mut cpu = 0u64;
    let mut log_bytes = 0u64;
    for op in ops {
        match op {
            FsOp::Mkdir(_) | FsOp::Stat(_) => cpu += costs.per_op_us,
            FsOp::WriteFile { bytes, .. } => {
                cpu += costs.per_op_us + (*bytes as f64 * costs.write_per_byte) as u64;
                // data + per-block entry overhead + a namespace record
                log_bytes += bytes + (bytes / 4096 + 1) * 11 + 64;
            }
            FsOp::ReadFile { bytes, .. } => {
                cpu += costs.per_op_us + (*bytes as f64 * costs.read_per_byte) as u64;
            }
            FsOp::Compute { us } => cpu += us,
        }
    }
    // Unmount: checkpoint + flush. The log streamed overlapping with CPU;
    // charge the final drain (server is the slower stage) plus a fixed
    // sync round trip.
    let io = (log_bytes as f64 / cal.server_mb_per_s) as u64 + 300_000;
    let elapsed = cpu + io;
    MabResult {
        elapsed_us: elapsed,
        cpu_us: cpu,
        io_us: io,
        cpu_utilization: cpu as f64 / elapsed as f64,
    }
}

/// Runs the op stream on the ext2 model: local disk, update-in-place
/// layout, writeback at phase boundaries plus unmount.
pub fn run_ext2_model(cal: &Calibration, ops: &[FsOp]) -> MabResult {
    let costs = CpuCosts::ext2();
    let mut fs = Ext2Sim::new(cal.disk.clone());
    let mut cpu = 0u64;
    let mut io = 0u64;
    let mut since_flush = 0u64;
    for op in ops {
        match op {
            FsOp::Mkdir(p) => {
                cpu += costs.per_op_us;
                fs.mkdir(p);
            }
            FsOp::Stat(p) => {
                cpu += costs.per_op_us;
                fs.stat(p);
            }
            FsOp::WriteFile { path, bytes } => {
                cpu += costs.per_op_us + (*bytes as f64 * costs.write_per_byte) as u64;
                fs.write_file(path, *bytes);
                since_flush += bytes;
            }
            FsOp::ReadFile { path, bytes } => {
                cpu += costs.per_op_us + (*bytes as f64 * costs.read_per_byte) as u64;
                fs.read_file(path, *bytes);
            }
            FsOp::Compute { us } => cpu += us,
        }
        // bdflush: writeback storms stall the workload periodically.
        if since_flush > 1 << 20 {
            io += fs.flush();
            since_flush = 0;
        }
    }
    io += fs.flush(); // unmount
    let elapsed = cpu + io;
    MabResult {
        elapsed_us: elapsed,
        cpu_us: cpu,
        io_us: io,
        cpu_utilization: cpu as f64 / elapsed as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn results() -> (MabResult, MabResult) {
        let cal = Calibration::testbed_1999();
        let ops = mab_workload(&MabConfig::default());
        (run_sting_model(&cal, &ops), run_ext2_model(&cal, &ops))
    }

    #[test]
    fn workload_has_five_phases_worth_of_ops() {
        let ops = mab_workload(&MabConfig::default());
        let writes = ops
            .iter()
            .filter(|o| matches!(o, FsOp::WriteFile { .. }))
            .count();
        let reads = ops
            .iter()
            .filter(|o| matches!(o, FsOp::ReadFile { .. }))
            .count();
        let stats = ops.iter().filter(|o| matches!(o, FsOp::Stat(_))).count();
        let mkdirs = ops.iter().filter(|o| matches!(o, FsOp::Mkdir(_))).count();
        let computes = ops
            .iter()
            .filter(|o| matches!(o, FsOp::Compute { .. }))
            .count();
        assert_eq!(mkdirs, 26);
        assert_eq!(writes, 70 + 70 + 1); // sources + objects + binary
        assert_eq!(reads, 70 * 2 + 70); // grep×2 + compile reads
        assert_eq!(stats, 2 * (1 + 25 + 70));
        assert_eq!(computes, 71);
    }

    #[test]
    fn workload_is_deterministic() {
        let a = mab_workload(&MabConfig::default());
        let b = mab_workload(&MabConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn fig5_sting_beats_ext2_by_about_2x() {
        let (sting, ext2) = results();
        let sting_s = sting.elapsed_us as f64 / 1e6;
        let ext2_s = ext2.elapsed_us as f64 / 1e6;
        assert!(
            (sting_s - 9.4).abs() < 1.5,
            "Sting MAB {sting_s:.1} s, paper 9.4 s"
        );
        assert!(
            (ext2_s - 17.9).abs() < 2.5,
            "ext2 MAB {ext2_s:.1} s, paper 17.9 s"
        );
        let ratio = ext2_s / sting_s;
        assert!(
            ratio > 1.6 && ratio < 2.3,
            "speedup {ratio:.2}×, paper ~1.9×"
        );
    }

    #[test]
    fn fig5_cpu_utilization_shape() {
        let (sting, ext2) = results();
        assert!(
            sting.cpu_utilization > 0.85,
            "Sting util {:.0}%, paper 93%",
            sting.cpu_utilization * 100.0
        );
        assert!(
            ext2.cpu_utilization > 0.45 && ext2.cpu_utilization < 0.70,
            "ext2 util {:.0}%, paper 57%",
            ext2.cpu_utilization * 100.0
        );
    }

    #[test]
    fn speedup_is_structural_not_tuned() {
        // The ~2× figure must hold across workload scales — it comes from
        // the architecture (batched sequential log writes vs scattered
        // metadata I/O), not from constants fitted to one configuration.
        let cal = Calibration::testbed_1999();
        for (files, mean) in [(35u32, 12 * 1024u64), (70, 23 * 1024), (140, 46 * 1024)] {
            let cfg = MabConfig {
                files,
                mean_file_size: mean,
                ..MabConfig::default()
            };
            let ops = mab_workload(&cfg);
            let sting = run_sting_model(&cal, &ops);
            let ext2 = run_ext2_model(&cal, &ops);
            let ratio = ext2.elapsed_us as f64 / sting.elapsed_us as f64;
            assert!(
                ratio > 1.4 && ratio < 2.6,
                "files={files} mean={mean}: ratio {ratio:.2}"
            );
            assert!(sting.cpu_utilization > ext2.cpu_utilization);
        }
    }

    #[test]
    fn ext2_is_disk_bound_sting_is_not() {
        let (sting, ext2) = results();
        assert!(
            ext2.io_us > 4 * sting.io_us,
            "ext2 io {} vs sting io {}",
            ext2.io_us,
            sting.io_us
        );
    }
}
