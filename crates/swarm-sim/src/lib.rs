//! Performance simulation of the paper's 1999 testbed (§3.3).
//!
//! The prototype's evaluation hardware — 200 MHz Pentium Pro machines,
//! 100 Mb/s switched Ethernet, Quantum Viking II SCSI disks writing 1 MB
//! fragments at 10.3 MB/s — no longer exists, and absolute numbers from a
//! 2026 machine would say nothing about the paper. This crate rebuilds the
//! *performance model* of that testbed from the constants the paper
//! publishes, so the benchmark harness can regenerate Figures 3–5 and the
//! in-text measurements with the right shape: who wins, by what factor,
//! and where the curves bend.
//!
//! * [`timeline`] — resource-timeline simulation core (each disk, NIC,
//!   and CPU is a serialized resource; a fragment write is a pipeline of
//!   acquisitions with flow control).
//! * [`disk`] — seek/rotate/transfer disk model (Quantum Viking II
//!   geometry) used by the ext2 baseline and the in-text disk bound.
//! * [`calib`] — the 1999 calibration constants with their provenance.
//! * [`cluster`] — the Figure 3/4 write-bandwidth experiment and the
//!   in-text uncached-read measurement.
//! * [`ext2sim`] — an ext2/FFS-style file system model (block groups,
//!   synchronous-ish small writes) as the Figure 5 baseline.
//! * [`mab`] — the Modified Andrew Benchmark workload and runners for
//!   Sting-model vs ext2-model (Figure 5), plus an op list that can be
//!   replayed against the *real* `StingFs` for functional cross-checks.
//! * [`manyclient`] — hundreds-of-clients closed-loop contention runs
//!   stressing the scalability claim itself (per-client logs scale until
//!   the servers' aggregate service rate, then queue — never collapse).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod cluster;
pub mod disk;
pub mod ext2sim;
pub mod mab;
pub mod manyclient;
pub mod timeline;

pub use calib::Calibration;
pub use cluster::{
    simulate_degraded_read, simulate_read, simulate_read_prefetch, simulate_write, BandwidthPoint,
    ReadPoint,
};
pub use disk::SimDisk;
pub use ext2sim::Ext2Sim;
pub use mab::{mab_workload, run_ext2_model, run_sting_model, FsOp, MabConfig, MabResult};
pub use manyclient::{simulate_closed_loop, ClosedLoopConfig, ClosedLoopPoint};
pub use timeline::Timeline;
