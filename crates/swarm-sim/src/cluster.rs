//! The Figure 3/4 write-bandwidth experiment and the in-text read
//! measurement, on the simulated testbed.
//!
//! Workload (§3.4): each client writes 10,000 4 KB blocks into its log
//! and flushes. The log layer batches blocks into 1 MB fragments, adds a
//! parity fragment per stripe, and pipelines fragments to the servers
//! with a depth-2 window per server. We simulate exactly that structure
//! over [`Timeline`] resources: per-client CPU and NIC, per-server NIC
//! and fragment service (network processing + disk, §3.4's sustained
//! 7.7 MB/s).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calib::Calibration;
use crate::timeline::Timeline;

/// Result of one simulated write run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BandwidthPoint {
    /// Number of clients writing.
    pub clients: u32,
    /// Number of storage servers.
    pub servers: u32,
    /// Aggregate rate at which bytes land on servers (data + parity +
    /// metadata) — Figure 3's metric.
    pub raw_mb_per_s: f64,
    /// Aggregate rate of application payload — Figure 4's metric.
    pub useful_mb_per_s: f64,
    /// Simulated elapsed time, µs.
    pub elapsed_us: u64,
}

/// Per-block metadata overhead in the log (entry header: tag + service +
/// two length prefixes).
const BLOCK_ENTRY_OVERHEAD: u64 = 11;
/// Fragment header (self-identifying stripe info).
const FRAGMENT_HEADER: u64 = 100;

/// Simulates `clients` clients each writing `blocks_per_client` blocks of
/// `block_size` bytes across `servers` servers, then flushing.
///
/// Clients are interleaved in virtual-time order (the client whose next
/// fragment would start earliest goes next), so contention at shared
/// servers plays out the way concurrent clients would experience it.
pub fn simulate_write(
    cal: &Calibration,
    clients: u32,
    servers: u32,
    blocks_per_client: u64,
    block_size: u64,
) -> BandwidthPoint {
    assert!(clients >= 1 && servers >= 1);
    let width = servers as u64; // clients stripe across every server (§3.4)
    let payload_per_fragment = cal.fragment_size - FRAGMENT_HEADER;

    struct ClientState {
        cpu: Timeline,
        nic: Timeline,
        rng: StdRng,
        cpu_ready: u64,
        remaining: u64,
        member: u64,
        stripe: u64,
        phase: u64,
        pending_parity: bool,
        outstanding: Vec<VecDeque<u64>>,
    }

    impl ClientState {
        fn done(&self) -> bool {
            self.remaining == 0 && !self.pending_parity
        }
    }

    let mut states: Vec<ClientState> = (0..clients)
        .map(|c| ClientState {
            cpu: Timeline::new(),
            nic: Timeline::new(),
            rng: StdRng::seed_from_u64(0x5741_524d + c as u64),
            // Clients start almost together with a small skew.
            cpu_ready: (c as u64) * 1_700,
            remaining: blocks_per_client * (block_size + BLOCK_ENTRY_OVERHEAD),
            member: 0,
            stripe: 0,
            // Independent clients start their rotation at unrelated
            // points in the server ring (they never coordinate, §2).
            phase: (c as u64 * width) / clients as u64,
            pending_parity: false,
            outstanding: (0..servers).map(|_| VecDeque::new()).collect(),
        })
        .collect();

    let mut server_nic: Vec<Timeline> = (0..servers).map(|_| Timeline::new()).collect();
    let mut server_svc: Vec<Timeline> = (0..servers).map(|_| Timeline::new()).collect();

    let total_useful = clients as u64 * blocks_per_client * block_size;
    let mut total_raw_bytes = 0u64;
    let mut finish = 0u64;

    // Next client = earliest possible CPU start for its next fragment.
    while let Some(c) = states
        .iter()
        .enumerate()
        .filter(|(_, st)| !st.done())
        .min_by_key(|(_, st)| st.cpu_ready.max(st.cpu.free_at()))
        .map(|(i, _)| i)
    {
        let st = &mut states[c];

        // Decide what this client emits next.
        let data_members = if width >= 2 { width - 1 } else { 1 };
        let (bytes, is_parity) = if st.pending_parity {
            (cal.fragment_size, true)
        } else {
            let payload = st.remaining.min(payload_per_fragment);
            (payload + FRAGMENT_HEADER, false)
        };
        let member_index = if is_parity { data_members } else { st.member };
        let server = ((st.phase + st.stripe + member_index) % width) as usize;

        // CPU: fragment formation (data) or parity finalization.
        let jitter = 1.0 + st.rng.gen_range(-0.05..0.05);
        let cpu_us = (cal.client_fragment_us(bytes) as f64 * jitter) as u64;
        let (_, cpu_end) = st.cpu.acquire(st.cpu_ready, cpu_us);

        // Flow control: queue capacity `flow_window` plus the fragment
        // the writer thread is currently storing (matches the real
        // WritePool: a channel slot frees when the writer takes a job).
        let q = &mut st.outstanding[server];
        let gate = if q.len() > cal.flow_window {
            q.pop_front().expect("nonempty")
        } else {
            0
        };
        let submit = cpu_end.max(gate);
        st.cpu_ready = submit;

        let (_, out_end) = st.nic.acquire(submit, cal.link_us(bytes));
        let (_, in_end) = server_nic[server].acquire(out_end, cal.link_us(bytes));
        let (_, disk_end) = server_svc[server].acquire(in_end, cal.server_fragment_us(bytes));
        st.outstanding[server].push_back(disk_end);
        total_raw_bytes += bytes;
        finish = finish.max(disk_end);

        // Advance the stripe state machine.
        if is_parity {
            st.pending_parity = false;
            st.member = 0;
            st.stripe += 1;
        } else {
            st.remaining -= bytes - FRAGMENT_HEADER;
            st.member += 1;
            if width >= 2 {
                if st.member == data_members || st.remaining == 0 {
                    st.pending_parity = true;
                }
            } else if st.member == 1 {
                st.member = 0;
                st.stripe += 1;
            }
        }
    }

    BandwidthPoint {
        clients,
        servers,
        raw_mb_per_s: total_raw_bytes as f64 / finish as f64,
        useful_mb_per_s: total_useful as f64 / finish as f64,
        elapsed_us: finish,
    }
}

/// Result of the uncached-read measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReadPoint {
    /// Read bandwidth, MB/s.
    pub mb_per_s: f64,
    /// Mean per-block latency, µs.
    pub block_latency_us: u64,
}

/// Simulates a client reading `blocks` blocks of `block_size` bytes with
/// a cold cache and no prefetching (§3.4: servers don't cache, clients
/// don't prefetch, so each read is a synchronous RPC + disk access).
pub fn simulate_read(cal: &Calibration, blocks: u64, block_size: u64) -> ReadPoint {
    let mut t = 0u64;
    for _ in 0..blocks {
        let rpc = cal.read_rpc_us;
        let transfer = cal.link_us(block_size);
        let cpu = (block_size as f64 * cal.read_cpu_per_byte).round() as u64;
        t += rpc + transfer + cpu;
    }
    ReadPoint {
        mb_per_s: (blocks * block_size) as f64 / t as f64,
        block_latency_us: t / blocks.max(1),
    }
}

/// Simulates sequential block reads with the prefetch extension enabled:
/// the first miss in each fragment fetches the whole fragment (one RPC +
/// a 1 MB transfer), and the remaining blocks hit the client cache.
///
/// This is the optimization §3.4 names ("both of these optimizations
/// would greatly improve the performance of reads that miss in the
/// client cache") and this repository implements (`LogConfig::prefetch`).
pub fn simulate_read_prefetch(cal: &Calibration, blocks: u64, block_size: u64) -> ReadPoint {
    let blocks_per_fragment = (cal.fragment_size / block_size).max(1);
    let mut t = 0u64;
    let mut done = 0u64;
    while done < blocks {
        let batch = blocks_per_fragment.min(blocks - done);
        // One fragment fetch: RPC + positioning, full-fragment transfer
        // on the link, sequential disk read on the server.
        t += cal.read_rpc_us;
        t += cal.link_us(cal.fragment_size);
        t += (cal.fragment_size as f64 / cal.disk.seq_mb_per_s) as u64;
        // Client-side copies for each block served from the cache.
        t += (batch as f64 * block_size as f64 * cal.read_cpu_per_byte) as u64;
        done += batch;
    }
    ReadPoint {
        mb_per_s: (blocks * block_size) as f64 / t as f64,
        block_latency_us: t / blocks.max(1),
    }
}

/// Degraded-mode sequential read bandwidth: one server of a width-`w`
/// stripe group is down, and every fragment that lived there must be
/// rebuilt by fetching the surviving `w-1` stripe members (§2.3.3).
///
/// Returns `(healthy, degraded)` MB/s for a client streaming `fragments`
/// fragments with whole-fragment prefetch. Quantifies two §2.1.2 claims:
/// a width-2 group degrades gracefully (the "reconstruction" is just a
/// mirror read), and wider groups pay more per lost fragment while
/// losing fewer fragments — the product levels off near 2× amplification.
pub fn simulate_degraded_read(cal: &Calibration, width: u32, fragments: u64) -> (f64, f64) {
    assert!(width >= 2);
    let per_fragment_us = |fetches: u64| -> u64 {
        // Each fetch: RPC + link transfer + sequential disk read; fetches
        // of stripe mates go to distinct servers and overlap on their
        // disks, but the client's single link serializes the transfers.
        cal.read_rpc_us
            + fetches * cal.link_us(cal.fragment_size)
            + (cal.fragment_size as f64 / cal.disk.seq_mb_per_s) as u64
    };
    let healthy_us = fragments * per_fragment_us(1);
    // 1/width of data fragments lived on the dead server; each costs
    // width-1 fetches (parity + the width-2 surviving data members) to
    // rebuild, plus XORing those width-2 members into the parity on the
    // client CPU (at width 2 the parity IS the data — a free mirror).
    let lost = fragments / width as u64;
    let xor_us = (cal.fragment_size as f64 * cal.client_cpu_per_byte * (width as f64 - 2.0)) as u64;
    let degraded_us = (fragments - lost) * per_fragment_us(1)
        + lost * (per_fragment_us((width - 1) as u64) + xor_us);
    let bytes = (fragments * cal.fragment_size) as f64;
    (bytes / healthy_us as f64, bytes / degraded_us as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::testbed_1999()
    }

    const BLOCKS: u64 = 10_000;
    const BS: u64 = 4096;

    #[test]
    fn fig3_single_client_is_client_limited_and_flat() {
        let p1 = simulate_write(&cal(), 1, 1, BLOCKS, BS);
        let p8 = simulate_write(&cal(), 1, 8, BLOCKS, BS);
        assert!(
            (p1.raw_mb_per_s - 6.1).abs() < 0.5,
            "raw@1srv = {:.2}, paper 6.1",
            p1.raw_mb_per_s
        );
        assert!(
            (p8.raw_mb_per_s - 6.4).abs() < 0.6,
            "raw@8srv = {:.2}, paper 6.4",
            p8.raw_mb_per_s
        );
        // Flat: within ~10% across the sweep.
        assert!((p8.raw_mb_per_s - p1.raw_mb_per_s).abs() / p1.raw_mb_per_s < 0.12);
    }

    #[test]
    fn fig4_useful_bandwidth_amortizes_parity() {
        let p2 = simulate_write(&cal(), 1, 2, BLOCKS, BS);
        assert!(
            (p2.useful_mb_per_s - 3.0).abs() < 0.4,
            "useful@2srv = {:.2}, paper 3.0",
            p2.useful_mb_per_s
        );
        let p4 = simulate_write(&cal(), 1, 4, BLOCKS, BS);
        let p8 = simulate_write(&cal(), 1, 8, BLOCKS, BS);
        assert!(p4.useful_mb_per_s > p2.useful_mb_per_s);
        assert!(p8.useful_mb_per_s > p4.useful_mb_per_s);
        // Approaches but never reaches raw.
        assert!(p8.useful_mb_per_s < p8.raw_mb_per_s);
        assert!(p8.useful_mb_per_s / p8.raw_mb_per_s > 0.8);
    }

    #[test]
    fn two_clients_saturate_one_server_at_7_7() {
        let p = simulate_write(&cal(), 2, 1, BLOCKS, BS);
        assert!(
            (p.raw_mb_per_s - 7.7).abs() < 0.4,
            "2 clients → 1 server: {:.2} MB/s, paper 7.7",
            p.raw_mb_per_s
        );
    }

    #[test]
    fn fig3_multi_client_scaling() {
        let p2 = simulate_write(&cal(), 2, 8, BLOCKS, BS);
        let p4 = simulate_write(&cal(), 4, 8, BLOCKS, BS);
        assert!(
            (p2.raw_mb_per_s - 12.9).abs() < 1.3,
            "2 clients × 8 servers raw {:.2}, paper 12.9",
            p2.raw_mb_per_s
        );
        // Paper: 19.3. Our model gives ~24 (the paper's own constants
        // leave no saturated resource at 4×8; see EXPERIMENTS.md). The
        // shape — monotone scaling well past 2 clients, bounded by
        // 4× the single-client ceiling — must hold.
        assert!(
            p4.raw_mb_per_s > 17.0 && p4.raw_mb_per_s < 26.0,
            "4 clients × 8 servers raw {:.2}, paper 19.3, model ceiling 24.4",
            p4.raw_mb_per_s
        );
        assert!(p4.raw_mb_per_s > 1.5 * p2.raw_mb_per_s);
    }

    #[test]
    fn fig4_four_clients_eight_servers_useful() {
        let p = simulate_write(&cal(), 4, 8, BLOCKS, BS);
        assert!(
            p.useful_mb_per_s > 14.0 && p.useful_mb_per_s < 22.5,
            "4×8 useful {:.2}, paper 16.0 (model ~21, see EXPERIMENTS.md)",
            p.useful_mb_per_s
        );
        // "only 17% less than the raw bandwidth"
        let gap = 1.0 - p.useful_mb_per_s / p.raw_mb_per_s;
        assert!(gap > 0.10 && gap < 0.25, "useful/raw gap {gap:.2}");
    }

    #[test]
    fn text_read_bandwidth_is_1_7() {
        let r = simulate_read(&cal(), 10_000, BS);
        assert!(
            (r.mb_per_s - 1.7).abs() < 0.15,
            "uncached read {:.2} MB/s, paper 1.7",
            r.mb_per_s
        );
    }

    #[test]
    fn prefetch_greatly_improves_sequential_reads() {
        // §3.4: caching/prefetch "would greatly improve the performance
        // of reads that miss in the client cache".
        let cold = simulate_read(&cal(), 10_000, BS);
        let warm = simulate_read_prefetch(&cal(), 10_000, BS);
        assert!(
            warm.mb_per_s > 2.2 * cold.mb_per_s,
            "prefetch {:.2} MB/s vs cold {:.2} MB/s",
            warm.mb_per_s,
            cold.mb_per_s
        );
        // Bounded by the slower of disk and link.
        assert!(warm.mb_per_s < cal().net_mb_per_s);
    }

    #[test]
    fn degraded_reads_width_two_is_a_mirror() {
        // §2.1.2: with a 2-wide group the "reconstruction" is reading the
        // parity mirror — no amplification at all.
        let (healthy, degraded) = simulate_degraded_read(&cal(), 2, 200);
        assert!(
            (healthy - degraded).abs() / healthy < 0.02,
            "w=2: healthy {healthy:.2} vs degraded {degraded:.2}"
        );
    }

    #[test]
    fn degraded_penalty_grows_with_width_but_stays_bounded() {
        let cal = cal();
        let (h4, d4) = simulate_degraded_read(&cal, 4, 200);
        let (h8, d8) = simulate_degraded_read(&cal, 8, 200);
        assert!(d4 < h4 && d8 < h8);
        // Wider stripes pay more per lost fragment.
        assert!(d8 / h8 < d4 / h4);
        // …but the slowdown never exceeds ~2.2× (1/w of fragments cost
        // w-1 fetches).
        assert!(h8 / d8 < 2.2, "w=8 slowdown {:.2}", h8 / d8);
    }

    #[test]
    fn simulation_is_deterministic() {
        let a = simulate_write(&cal(), 4, 8, 1000, BS);
        let b = simulate_write(&cal(), 4, 8, 1000, BS);
        assert_eq!(a, b);
    }
}
