//! Hundreds-of-clients closed-loop contention run (ROADMAP item 5).
//!
//! The paper's scalability argument is structural: per-client logs never
//! synchronize through the servers, so adding clients adds load but not
//! coordination. [`crate::cluster::simulate_write`] checks the published
//! 1–4 client points; this module stresses the *claim itself* — hundreds
//! of closed-loop clients (each op waits for the previous one) sharing a
//! fixed server group. The model must show linear scaling while clients
//! are the bottleneck, a plateau at the servers' aggregate service rate
//! (never a collapse), and queueing-dominated latency growth past
//! saturation.
//!
//! Every client is an independent chain of [`Timeline`] acquisitions;
//! servers are shared serialized resources, so cross-client interference
//! shows up exactly where the real system would feel it: fragment
//! service queues.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::calib::Calibration;
use crate::timeline::Timeline;

/// Per-block metadata overhead in the log (entry header: tag + service +
/// two length prefixes) — matches [`crate::cluster`].
const BLOCK_ENTRY_OVERHEAD: u64 = 11;
/// Fragment header (self-identifying stripe info).
const FRAGMENT_HEADER: u64 = 100;

/// One closed-loop contention experiment.
#[derive(Debug, Clone)]
pub struct ClosedLoopConfig {
    /// Concurrent closed-loop clients.
    pub clients: u32,
    /// Storage servers shared by every client.
    pub servers: u32,
    /// Operations each client performs before stopping.
    pub ops_per_client: u32,
    /// Application block size, bytes.
    pub block_size: u64,
    /// Percent of operations that are uncached block reads (0..=100);
    /// the rest are log appends.
    pub read_percent: u32,
    /// A flush (seal + store of the open fragment) is forced after this
    /// many appends, modeling an application that syncs its log — and
    /// letting short runs exercise the store pipeline with partial
    /// fragments.
    pub flush_every: u32,
    /// Think time between operations, µs (0 = write/read flat out).
    pub think_us: u64,
    /// Workload seed (op mix and per-client jitter).
    pub seed: u64,
}

impl ClosedLoopConfig {
    /// A pure-append closed loop: `clients` writers syncing every 64
    /// blocks, no think time.
    pub fn writers(clients: u32, servers: u32, ops_per_client: u32) -> ClosedLoopConfig {
        ClosedLoopConfig {
            clients,
            servers,
            ops_per_client,
            block_size: 4096,
            read_percent: 0,
            flush_every: 64,
            think_us: 0,
            seed: 0x5741_524d,
        }
    }
}

/// Result of one closed-loop run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClosedLoopPoint {
    /// Clients that ran.
    pub clients: u32,
    /// Servers they shared.
    pub servers: u32,
    /// Total operations completed.
    pub ops: u64,
    /// Simulated elapsed time, µs.
    pub elapsed_us: u64,
    /// Aggregate operation rate, ops/s.
    pub ops_per_s: f64,
    /// Aggregate rate at which bytes land on servers (data + parity +
    /// headers), MB/s.
    pub raw_mb_per_s: f64,
    /// Aggregate application-payload write rate, MB/s.
    pub useful_mb_per_s: f64,
    /// Mean operation latency, µs.
    pub mean_op_us: u64,
    /// 99th-percentile operation latency, µs.
    pub p99_op_us: u64,
}

struct Client {
    cpu: Timeline,
    nic: Timeline,
    rng: StdRng,
    remaining: u32,
    /// Virtual time the in-flight op started (for latency accounting).
    op_start: u64,
    /// Application payload bytes buffered in the open fragment.
    buffered: u64,
    /// Raw bytes (payload + per-block overhead) buffered.
    buffered_raw: u64,
    /// Appends since the last flush.
    since_flush: u32,
    /// Data fragments stored since the last parity fragment.
    member: u64,
    /// Rotation phase in the server ring.
    phase: u64,
    /// Fragments stored (data + parity), for ring placement.
    stored: u64,
}

/// What happens when an event fires.
#[derive(Debug, Clone, Copy)]
enum Ev {
    /// Client starts its next closed-loop op.
    OpStart,
    /// A fragment's bytes arrive at a server NIC.
    FragNicArrive {
        server: usize,
        bytes: u64,
        is_parity: bool,
    },
    /// A fragment clears the server NIC and enters fragment service.
    FragSvcArrive {
        server: usize,
        bytes: u64,
        is_parity: bool,
    },
    /// A read RPC reaches the server's request service.
    ReadSvcArrive { server: usize },
    /// A read's payload transfer starts on the server NIC.
    ReadNicArrive { server: usize },
}

/// Heap entry: fires at `time`; `seq` breaks ties deterministically in
/// creation order.
struct Event {
    time: u64,
    seq: u64,
    client: usize,
    ev: Ev,
}

impl PartialEq for Event {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Event {}
impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we pop earliest-first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// Runs one closed-loop experiment over the calibrated testbed model.
///
/// A discrete-event loop processes shared-resource acquisitions in
/// global arrival order — a server queue admits requests as they arrive,
/// not in the order clients *initiated* their pipelines — so hundreds of
/// closed loops contend the way real server queues would make them.
/// Deterministic for a given config.
pub fn simulate_closed_loop(cal: &Calibration, cfg: &ClosedLoopConfig) -> ClosedLoopPoint {
    assert!(cfg.clients >= 1 && cfg.servers >= 1);
    assert!(cfg.read_percent <= 100);
    assert!(cfg.flush_every >= 1);
    let width = cfg.servers as u64;
    let data_members = if width >= 2 { width - 1 } else { 1 };
    let payload_per_fragment = cal.fragment_size - FRAGMENT_HEADER;

    let mut clients: Vec<Client> = (0..cfg.clients)
        .map(|c| Client {
            cpu: Timeline::new(),
            nic: Timeline::new(),
            rng: StdRng::seed_from_u64(
                cfg.seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(c as u64 + 1),
            ),
            remaining: cfg.ops_per_client,
            op_start: 0,
            buffered: 0,
            buffered_raw: 0,
            since_flush: 0,
            member: 0,
            phase: (c as u64 * width) / cfg.clients as u64,
            stored: 0,
        })
        .collect();

    let mut server_nic: Vec<Timeline> = (0..cfg.servers).map(|_| Timeline::new()).collect();
    let mut server_svc: Vec<Timeline> = (0..cfg.servers).map(|_| Timeline::new()).collect();

    let mut latencies: Vec<u64> =
        Vec::with_capacity(cfg.clients as usize * cfg.ops_per_client as usize);
    let mut total_raw = 0u64;
    let mut total_useful = 0u64;
    let mut finish = 0u64;

    let mut heap = std::collections::BinaryHeap::new();
    let mut seq = 0u64;
    let push = |heap: &mut std::collections::BinaryHeap<Event>,
                seq: &mut u64,
                time: u64,
                client: usize,
                ev: Ev| {
        *seq += 1;
        heap.push(Event {
            time,
            seq: *seq,
            client,
            ev,
        });
    };

    for c in 0..cfg.clients as usize {
        // Small skew so hundreds of clients don't start in lockstep.
        push(&mut heap, &mut seq, c as u64 * 173, c, Ev::OpStart);
    }

    // Forms a fragment on the client (CPU + its own NIC) and emits the
    // arrival event at the chosen server.
    let initiate_store = |st: &mut Client,
                          heap: &mut std::collections::BinaryHeap<Event>,
                          seq: &mut u64,
                          c: usize,
                          bytes: u64,
                          is_parity: bool,
                          start: u64| {
        let server = ((st.phase + st.stored) % width) as usize;
        st.stored += 1;
        let jitter = 1.0 + st.rng.gen_range(-0.05..0.05);
        let cpu_us = (cal.client_fragment_us(bytes) as f64 * jitter) as u64;
        let (_, cpu_end) = st.cpu.acquire(start, cpu_us);
        let (_, out_end) = st.nic.acquire(cpu_end, cal.link_us(bytes));
        *seq += 1;
        heap.push(Event {
            time: out_end,
            seq: *seq,
            client: c,
            ev: Ev::FragNicArrive {
                server,
                bytes,
                is_parity,
            },
        });
    };

    while let Some(Event {
        time,
        client: c,
        ev,
        ..
    }) = heap.pop()
    {
        match ev {
            Ev::OpStart => {
                let st = &mut clients[c];
                if st.remaining == 0 {
                    continue;
                }
                st.remaining -= 1;
                let op_start = time + cfg.think_us;
                st.op_start = op_start;
                let is_read = st.rng.gen_range(0..100u32) < cfg.read_percent;
                if is_read {
                    let server = st.rng.gen_range(0..cfg.servers) as usize;
                    push(
                        &mut heap,
                        &mut seq,
                        op_start,
                        c,
                        Ev::ReadSvcArrive { server },
                    );
                    continue;
                }
                // Append: a CPU-only buffer copy until the fragment
                // fills or the sync interval elapses, then a closed-loop
                // fragment store (plus parity at stripe boundaries).
                let copy_us = ((cfg.block_size as f64) * cal.client_cpu_per_byte).round() as u64;
                let (_, copy_end) = st.cpu.acquire(op_start, copy_us.max(1));
                st.buffered += cfg.block_size;
                st.buffered_raw += cfg.block_size + BLOCK_ENTRY_OVERHEAD;
                st.since_flush += 1;
                total_useful += cfg.block_size;
                let seal = st.buffered_raw >= payload_per_fragment
                    || st.since_flush >= cfg.flush_every
                    || st.remaining == 0;
                if seal {
                    let bytes = st.buffered_raw.min(payload_per_fragment) + FRAGMENT_HEADER;
                    st.buffered = 0;
                    st.buffered_raw = 0;
                    st.since_flush = 0;
                    initiate_store(st, &mut heap, &mut seq, c, bytes, false, copy_end);
                } else {
                    // Buffered append: done at the copy.
                    latencies.push(copy_end - op_start);
                    finish = finish.max(copy_end);
                    push(&mut heap, &mut seq, copy_end, c, Ev::OpStart);
                }
            }
            Ev::FragNicArrive {
                server,
                bytes,
                is_parity,
            } => {
                let (_, in_end) = server_nic[server].acquire(time, cal.link_us(bytes));
                push(
                    &mut heap,
                    &mut seq,
                    in_end,
                    c,
                    Ev::FragSvcArrive {
                        server,
                        bytes,
                        is_parity,
                    },
                );
            }
            Ev::FragSvcArrive {
                server,
                bytes,
                is_parity,
            } => {
                let (_, disk_end) = server_svc[server].acquire(time, cal.server_fragment_us(bytes));
                total_raw += bytes;
                let st = &mut clients[c];
                st.member += !is_parity as u64;
                if !is_parity && width >= 2 && (st.member == data_members || st.remaining == 0) {
                    // Parity member sized like the stripe's last data
                    // fragment (here: this one).
                    st.member = 0;
                    initiate_store(st, &mut heap, &mut seq, c, bytes, true, disk_end);
                } else {
                    if is_parity {
                        st.member = 0;
                    }
                    latencies.push(disk_end - st.op_start);
                    finish = finish.max(disk_end);
                    push(&mut heap, &mut seq, disk_end, c, Ev::OpStart);
                }
            }
            Ev::ReadSvcArrive { server } => {
                let (_, rpc_end) = server_svc[server].acquire(time, cal.read_rpc_us);
                push(
                    &mut heap,
                    &mut seq,
                    rpc_end,
                    c,
                    Ev::ReadNicArrive { server },
                );
            }
            Ev::ReadNicArrive { server } => {
                let (_, net_end) = server_nic[server].acquire(time, cal.link_us(cfg.block_size));
                let op_end = net_end + (cfg.block_size as f64 * cal.read_cpu_per_byte) as u64;
                let st = &clients[c];
                latencies.push(op_end - st.op_start);
                finish = finish.max(op_end);
                push(&mut heap, &mut seq, op_end, c, Ev::OpStart);
            }
        }
    }

    latencies.sort_unstable();
    let ops = latencies.len() as u64;
    let mean = latencies.iter().sum::<u64>() / ops.max(1);
    let p99 = latencies[((ops as usize).saturating_sub(1)) * 99 / 100];
    ClosedLoopPoint {
        clients: cfg.clients,
        servers: cfg.servers,
        ops,
        elapsed_us: finish,
        ops_per_s: ops as f64 * 1e6 / finish as f64,
        raw_mb_per_s: total_raw as f64 / finish as f64,
        useful_mb_per_s: total_useful as f64 / finish as f64,
        mean_op_us: mean,
        p99_op_us: p99,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::testbed_1999()
    }

    #[test]
    fn deterministic_for_a_given_config() {
        let cfg = ClosedLoopConfig::writers(64, 8, 128);
        let a = simulate_closed_loop(&cal(), &cfg);
        let b = simulate_closed_loop(&cal(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn scales_linearly_while_clients_are_the_bottleneck() {
        // With 8 servers (≈62 MB/s aggregate) a handful of ≈5 MB/s
        // closed-loop clients can't saturate anything but themselves.
        let cal = cal();
        let p1 = simulate_closed_loop(&cal, &ClosedLoopConfig::writers(1, 8, 512));
        let p4 = simulate_closed_loop(&cal, &ClosedLoopConfig::writers(4, 8, 512));
        let speedup = p4.useful_mb_per_s / p1.useful_mb_per_s;
        assert!(
            (3.4..=4.1).contains(&speedup),
            "4-client speedup {speedup:.2}, want ~4 (per-client logs don't coordinate)"
        );
    }

    #[test]
    fn hundreds_of_clients_plateau_at_server_capacity_without_collapse() {
        let cal = cal();
        let capacity = cal.server_mb_per_s * 8.0;
        let p32 = simulate_closed_loop(&cal, &ClosedLoopConfig::writers(32, 8, 192));
        let p256 = simulate_closed_loop(&cal, &ClosedLoopConfig::writers(256, 8, 96));
        // 32 clients already push the 8 servers toward saturation; 256
        // must hold the plateau (no throughput collapse under 8× the
        // offered load) and sit within the service-rate ceiling.
        assert!(
            p256.raw_mb_per_s <= capacity * 1.02,
            "raw {:.1} MB/s exceeds {} servers x {:.1} MB/s",
            p256.raw_mb_per_s,
            8,
            cal.server_mb_per_s
        );
        assert!(
            p256.raw_mb_per_s >= capacity * 0.85,
            "raw {:.1} MB/s never reached the {:.1} MB/s plateau",
            p256.raw_mb_per_s,
            capacity
        );
        assert!(
            p256.raw_mb_per_s >= p32.raw_mb_per_s * 0.95,
            "throughput collapsed: 256 clients {:.1} vs 32 clients {:.1}",
            p256.raw_mb_per_s,
            p32.raw_mb_per_s
        );
    }

    #[test]
    fn latency_past_saturation_is_queueing_not_loss() {
        // Past the plateau every added client buys latency, not
        // bandwidth: p99 grows superlinearly while ops complete fully.
        let cal = cal();
        let p32 = simulate_closed_loop(&cal, &ClosedLoopConfig::writers(32, 4, 128));
        let p256 = simulate_closed_loop(&cal, &ClosedLoopConfig::writers(256, 4, 64));
        assert_eq!(p256.ops, 256 * 64, "every closed-loop op completes");
        assert!(
            p256.p99_op_us > 2 * p32.p99_op_us,
            "p99 {} vs {} — saturation must show up as queueing delay",
            p256.p99_op_us,
            p32.p99_op_us
        );
    }

    #[test]
    fn read_heavy_mix_contends_on_server_rpc_service() {
        let cal = cal();
        let mk = |clients| ClosedLoopConfig {
            read_percent: 90,
            ..ClosedLoopConfig::writers(clients, 4, 128)
        };
        let p8 = simulate_closed_loop(&cal, &mk(8));
        let p128 = simulate_closed_loop(&cal, &mk(128));
        // 4 servers serve ~526 RPCs/s each (1.9 ms apiece); 128 clients
        // queue far past that, 8 don't. The 90% read share is bounded by
        // the servers' aggregate RPC service rate.
        assert!(p128.mean_op_us > 3 * p8.mean_op_us);
        assert!(p128.ops_per_s * 0.9 < 4.0 * 1e6 / cal.read_rpc_us as f64 * 1.05);
    }
}
