//! Seek/rotate/transfer disk model.
//!
//! Parameterized as a late-90s Quantum Viking II SCSI disk, the drive the
//! prototype's servers used (§3.3). The paper's own measurement anchors
//! the sequential rate: "the storage server can write fragment-sized
//! blocks to the disk at 10.3 MB/s". Small random I/O pays seek plus
//! rotational latency, which is what dooms the ext2 baseline in Figure 5.

/// A simple mechanical disk model.
#[derive(Debug, Clone)]
pub struct SimDisk {
    /// Average seek time, µs.
    pub avg_seek_us: u64,
    /// Short (track-to-adjacent) seek, µs — used for nearly-sequential
    /// accesses within one block group.
    pub short_seek_us: u64,
    /// Average rotational latency, µs (half a revolution).
    pub avg_rot_us: u64,
    /// Media transfer rate for large sequential I/O, MB/s.
    pub seq_mb_per_s: f64,
}

impl SimDisk {
    /// The Quantum Viking II (7200 RPM, ~8 ms seek) writing 1 MB
    /// fragments at the paper's measured 10.3 MB/s.
    pub fn viking_ii() -> SimDisk {
        SimDisk {
            avg_seek_us: 8_000,
            short_seek_us: 1_500,
            avg_rot_us: 4_170,  // half of 8.33 ms at 7200 RPM
            seq_mb_per_s: 10.8, // media rate; 1 MB incl. one seek+rot ≈ 10.3 MB/s
        }
    }

    /// Duration of one access of `bytes`, µs.
    ///
    /// `sequential` accesses follow the previous one directly (no seek,
    /// no rotational delay beyond transfer); `nearby` pays a short seek;
    /// otherwise a full average seek + rotational latency.
    pub fn access_us(&self, bytes: u64, locality: Locality) -> u64 {
        let transfer = ((bytes as f64) / self.seq_mb_per_s).round() as u64;
        match locality {
            Locality::Sequential => transfer,
            Locality::Nearby => self.short_seek_us + self.avg_rot_us / 2 + transfer,
            Locality::Random => self.avg_seek_us + self.avg_rot_us + transfer,
        }
    }

    /// Effective bandwidth (MB/s) of repeated accesses of `bytes` with
    /// the given locality — e.g. 1 MB random ≈ 10.3 MB/s, 4 KB random
    /// ≈ 0.3 MB/s.
    pub fn effective_mb_per_s(&self, bytes: u64, locality: Locality) -> f64 {
        bytes as f64 / self.access_us(bytes, locality) as f64
    }
}

/// How far an access is from the previous one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Locality {
    /// Head already positioned (log-structured writes).
    Sequential,
    /// Same cylinder group / short hop.
    Nearby,
    /// Anywhere on the platter.
    Random,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_writes_hit_the_papers_rate() {
        // §3.3: 1 MB fragment writes sustain 10.3 MB/s (each fragment
        // lands in a slot: one positioning + sequential transfer).
        let disk = SimDisk::viking_ii();
        let rate = disk.effective_mb_per_s(1 << 20, Locality::Nearby);
        assert!(
            (rate - 10.3).abs() < 0.5,
            "1 MB fragment rate {rate:.2} MB/s, paper says 10.3"
        );
    }

    #[test]
    fn small_random_io_is_catastrophically_slower() {
        let disk = SimDisk::viking_ii();
        let small = disk.effective_mb_per_s(4096, Locality::Random);
        let big = disk.effective_mb_per_s(1 << 20, Locality::Nearby);
        assert!(
            big / small > 25.0,
            "4 KB random ({small:.3} MB/s) vs 1 MB fragments ({big:.2} MB/s)"
        );
    }

    #[test]
    fn sequential_beats_nearby_beats_random() {
        let disk = SimDisk::viking_ii();
        let s = disk.access_us(65536, Locality::Sequential);
        let n = disk.access_us(65536, Locality::Nearby);
        let r = disk.access_us(65536, Locality::Random);
        assert!(s < n && n < r);
    }
}
