//! End-to-end determinism and crash-consistency checks for the chaos
//! harness itself: the same seed must produce the same schedule, the
//! same verdict, and the same verified-read count on every transport.

use swarm_chaos::{ChaosEvent, Runner, Schedule, ScheduleConfig, StoreKind, TransportKind};

fn cfg() -> ScheduleConfig {
    ScheduleConfig::new(4, 48)
}

#[test]
fn same_seed_reproduces_schedule_and_dump() {
    let a = Schedule::generate(42, &cfg());
    let b = Schedule::generate(42, &cfg());
    assert_eq!(a.hash(), b.hash());
    assert_eq!(a.dump(), b.dump());
    // A different seed must not collide (would make replay ambiguous).
    let c = Schedule::generate(43, &cfg());
    assert_ne!(a.hash(), c.hash());
}

#[test]
fn mem_runs_pass_and_replay_identically() {
    let schedule = Schedule::generate(7, &cfg());
    let first = Runner::run(&schedule, TransportKind::Mem).unwrap();
    let second = Runner::run(&schedule, TransportKind::Mem).unwrap();
    assert!(
        first.passed(),
        "seed 7 lost acked data on mem: {:?}",
        first.failures
    );
    assert_eq!(first.hash, second.hash);
    assert_eq!(first.verified_reads, second.verified_reads);
    assert_eq!(first.acked_blocks, second.acked_blocks);
}

#[test]
fn tcp_runs_match_mem_verdict_and_stats() {
    let schedule = Schedule::generate(11, &cfg());
    let mem = Runner::run(&schedule, TransportKind::Mem).unwrap();
    assert!(
        mem.passed(),
        "seed 11 lost acked data on mem: {:?}",
        mem.failures
    );
    // Both socket runtimes must agree with the in-process baseline.
    for kind in TransportKind::all() {
        if kind == TransportKind::Mem {
            continue;
        }
        let tcp = Runner::run(&schedule, kind).unwrap();
        assert!(
            tcp.passed(),
            "seed 11 lost acked data on {kind}: {:?}",
            tcp.failures
        );
        assert_eq!(
            mem.hash, tcp.hash,
            "schedule must be transport-independent ({kind})"
        );
        assert_eq!(mem.acked_blocks, tcp.acked_blocks, "{kind}");
        assert_eq!(mem.verified_reads, tcp.verified_reads, "{kind}");
    }
}

#[test]
fn small_seed_matrix_never_loses_acked_writes() {
    for seed in 0..4u64 {
        let schedule = Schedule::generate(seed, &ScheduleConfig::new(3, 32));
        let report = Runner::run(&schedule, TransportKind::Mem).unwrap();
        assert!(
            report.passed(),
            "seed {seed}: {:?}\nreplay: {}",
            report.failures,
            report.replay_command(32, 3)
        );
    }
}

/// Multi-client runs deal the same schedule across independent client
/// logs on one shared cluster: every client's acked blocks must verify
/// byte-exact at every quiesce (zero cross-client interference), the
/// verdict must be deterministic, and more clients must not change the
/// schedule itself — only who executes each work event.
#[test]
fn multi_client_runs_pass_deterministically_with_no_interference() {
    for clients in [2u32, 8] {
        let schedule = Schedule::generate(13, &ScheduleConfig::new(4, 48).clients(clients));
        assert_eq!(
            schedule.events,
            Schedule::generate(13, &cfg()).events,
            "client count must deal events, not change them"
        );
        let first = Runner::run(&schedule, TransportKind::Mem).unwrap();
        let second = Runner::run(&schedule, TransportKind::Mem).unwrap();
        assert!(
            first.passed(),
            "{clients} clients lost acked data: {:?}\nreplay: {}",
            first.failures,
            first.replay_command(48, 4)
        );
        assert_eq!(first.clients, clients);
        assert_eq!(first.acked_blocks, second.acked_blocks);
        assert_eq!(first.verified_reads, second.verified_reads);
        assert!(
            first.replay_command(48, 4).contains("--clients"),
            "replay line must carry the client count"
        );
    }
}

/// Schedules include the server-stall event (a wedged journal committer),
/// and the file-backed cluster — durable FileStore with group commit on
/// the critical path — still never loses an acked write.
#[test]
fn file_store_with_group_commit_never_loses_acked_writes() {
    let mut saw_stall = false;
    for seed in 0..4u64 {
        let schedule = Schedule::generate(seed, &ScheduleConfig::new(3, 32));
        saw_stall |= schedule
            .events
            .iter()
            .any(|e| matches!(e, ChaosEvent::ServerStall { .. }));
        let report =
            Runner::run_with_store(&schedule, TransportKind::Mem, StoreKind::File).unwrap();
        assert_eq!(report.store, StoreKind::File);
        assert!(
            report.passed(),
            "seed {seed} (file store): {:?}\nreplay: {}",
            report.failures,
            report.replay_command(32, 3)
        );
    }
    // At least one schedule in the matrix actually exercised the stall
    // path (wider sweeps run in CI); if the generator's roll ranges move,
    // this keeps the event from silently vanishing.
    let mut stall_anywhere = saw_stall;
    for seed in 0..64u64 {
        stall_anywhere |= Schedule::generate(seed, &ScheduleConfig::new(3, 32))
            .events
            .iter()
            .any(|e| matches!(e, ChaosEvent::ServerStall { .. }));
    }
    assert!(stall_anywhere, "no seed in 0..64 generated a server-stall");
}

/// Reed–Solomon geometries under the full chaos vocabulary: with up to
/// `m` servers killed concurrently and the verification tail holding `m`
/// servers down at once, every acked block still reads back byte-exact
/// (through multi-erasure decode when needed).
#[test]
fn rs_geometries_never_lose_acked_writes_with_m_concurrent_kills() {
    for (servers, parity) in [(6u32, 2u32), (11, 3)] {
        for seed in 0..3u64 {
            let schedule =
                Schedule::generate(seed, &ScheduleConfig::with_parity(servers, 32, parity));
            // The budget must actually be spent somewhere in the sweep:
            // at least one seed reaches `m` simultaneous impairments.
            let report = Runner::run(&schedule, TransportKind::Mem).unwrap();
            assert_eq!(report.parity, parity);
            assert!(
                report.passed(),
                "{}+{} seed {seed}: {:?}\nreplay: {}",
                servers - parity,
                parity,
                report.failures,
                report.replay_command(32, servers)
            );
        }
        let mut max_down = 0u32;
        for seed in 0..64u64 {
            let schedule =
                Schedule::generate(seed, &ScheduleConfig::with_parity(servers, 64, parity));
            let mut down = 0u32;
            for e in &schedule.events {
                match e {
                    ChaosEvent::KillServer { .. } => {
                        down += 1;
                        max_down = max_down.max(down);
                    }
                    ChaosEvent::RestartServer { .. } => down -= 1,
                    _ => {}
                }
            }
        }
        assert_eq!(
            max_down, parity,
            "no seed in 0..64 reached {parity} concurrent kills"
        );
    }
}
