//! Transport-agnostic chaos cluster.
//!
//! The same schedule must replay on the in-process transport and over
//! real sockets, so this module hides the difference behind one type:
//! a [`Cluster`] owns N storage servers (each a
//! [`swarm_server::StorageServer`] over a [`swarm_server::MemStore`],
//! standing in for the server's disk — it survives kill/restart cycles
//! the way a disk survives a process crash) and a shared
//! [`FaultTransport`] whose per-server [`FaultPlan`]s are consulted on
//! both sides of the wire.
//!
//! Kill/restart semantics differ by transport in mechanism but not in
//! effect: on mem, down is a plan flag; on TCP, kill additionally tears
//! down the listening socket (severing live connections like a process
//! exit) and restart respawns on a **fresh ephemeral port** — re-binding
//! the old port would race with TIME_WAIT — and re-addresses the
//! transport, exactly how a restarted server would re-register.

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use swarm_net::tcp::{ServerConfig, TcpServer, TcpTransport};
use swarm_net::{
    FaultHandler, FaultPlan, FaultTransport, MemTransport, RequestHandler, Runtime, Transport,
};
use swarm_server::{Durability, FileStore, FragmentStore, MemStore, StorageServer};
use swarm_types::{Result, ServerId};

/// Which transport a chaos run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process dispatch ([`MemTransport`]).
    Mem,
    /// Real sockets ([`TcpTransport`] + one [`TcpServer`] per member),
    /// with both server and client on the given runtime — so the chaos
    /// matrix covers the blocking and epoll stacks independently.
    Tcp(Runtime),
}

impl TransportKind {
    /// Real sockets on the platform-default runtime.
    pub fn tcp() -> TransportKind {
        TransportKind::Tcp(Runtime::default_for_platform())
    }

    /// Every kind worth running on this platform (the CI matrix).
    pub fn all() -> Vec<TransportKind> {
        let mut kinds = vec![TransportKind::Mem, TransportKind::Tcp(Runtime::Blocking)];
        if cfg!(target_os = "linux") {
            kinds.push(TransportKind::Tcp(Runtime::Epoll));
        }
        kinds
    }
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Mem => write!(f, "mem"),
            TransportKind::Tcp(runtime) => write!(f, "tcp-{runtime}"),
        }
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "mem" => Ok(TransportKind::Mem),
            "tcp" => Ok(TransportKind::tcp()),
            "tcp-blocking" => Ok(TransportKind::Tcp(Runtime::Blocking)),
            "tcp-epoll" => Ok(TransportKind::Tcp(Runtime::Epoll)),
            other => Err(format!(
                "unknown transport {other:?} (want mem|tcp|tcp-blocking|tcp-epoll)"
            )),
        }
    }
}

/// Which fragment store backs each chaos server.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreKind {
    /// Heap-backed [`MemStore`] (the original chaos configuration).
    Mem,
    /// Durable [`FileStore`] in a per-run temp directory, opened with
    /// `durability=group` so the journal group-commit path is on the
    /// chaos critical path.
    File,
}

impl fmt::Display for StoreKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreKind::Mem => write!(f, "mem"),
            StoreKind::File => write!(f, "file"),
        }
    }
}

impl FromStr for StoreKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "mem" => Ok(StoreKind::Mem),
            "file" => Ok(StoreKind::File),
            other => Err(format!("unknown store {other:?} (want mem|file)")),
        }
    }
}

/// Group-commit window the file-backed chaos store runs with: short, so
/// batching happens without visibly slowing single-threaded schedules.
const CHAOS_GROUP_WINDOW: Duration = Duration::from_millis(1);

/// Owns the on-disk root of a file-backed chaos cluster; removed on drop.
struct StoreDir(PathBuf);

impl StoreDir {
    fn fresh() -> StoreDir {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "swarm-chaos-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        StoreDir(path)
    }
}

impl Drop for StoreDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

struct Slot {
    id: ServerId,
    storage: Arc<StorageServer<Box<dyn FragmentStore>>>,
    plan: Arc<FaultPlan>,
    tcp_server: Option<TcpServer>,
}

/// A running chaos cluster: N fault-wrapped storage servers behind one
/// [`FaultTransport`].
pub struct Cluster {
    kind: TransportKind,
    store_kind: StoreKind,
    faults: Arc<FaultTransport>,
    tcp: Option<Arc<TcpTransport>>,
    slots: Vec<Slot>,
    /// Worker-pool width every TCP server (re)spawns with — sized for
    /// the run's client count, see [`Cluster::new_sized`].
    workers: usize,
    /// Present for file-backed clusters; removes the store root on drop.
    _store_dir: Option<StoreDir>,
}

impl Cluster {
    /// Stands up `servers` storage servers over the chosen transport,
    /// backed by [`StoreKind::Mem`].
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::Io`] if a TCP listener cannot
    /// bind.
    pub fn new(kind: TransportKind, servers: u32) -> Result<Cluster> {
        Self::new_with_store(kind, servers, StoreKind::Mem)
    }

    /// Stands up `servers` storage servers over the chosen transport and
    /// fragment store. File-backed servers live in a fresh temp directory
    /// that is removed when the cluster drops; the [`FileStore`] instance
    /// (like a disk) survives kill/restart cycles.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::Io`] if a TCP listener cannot
    /// bind or a file store cannot be created.
    pub fn new_with_store(
        kind: TransportKind,
        servers: u32,
        store_kind: StoreKind,
    ) -> Result<Cluster> {
        Self::new_sized(kind, servers, store_kind, 1)
    }

    /// Like [`Cluster::new_with_store`], sized for `clients` concurrent
    /// client logs. The blocking runtime dedicates a server worker to
    /// every open connection, and each rig keeps a couple of persistent
    /// connections per server (write engine, read engine, pooled spares),
    /// so many-client runs need wider pools than the single-client
    /// default — otherwise fresh dials (recovery checks, verification
    /// reads) park behind saturated workers and time out, which the
    /// harness would misreport as lost durability. Epoll multiplexes
    /// connections off a small pool, so it keeps the default width.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::Io`] if a TCP listener cannot
    /// bind or a file store cannot be created.
    pub fn new_sized(
        kind: TransportKind,
        servers: u32,
        store_kind: StoreKind,
        clients: u32,
    ) -> Result<Cluster> {
        let workers = match kind {
            TransportKind::Tcp(Runtime::Blocking) => ServerConfig::default()
                .workers
                .max(5 * clients as usize + 16),
            _ => ServerConfig::default().workers,
        };
        let store_dir = match store_kind {
            StoreKind::Mem => None,
            StoreKind::File => Some(StoreDir::fresh()),
        };
        let make_store = |i: u32| -> Result<Box<dyn FragmentStore>> {
            match (&store_dir, store_kind) {
                (Some(root), StoreKind::File) => Ok(Box::new(FileStore::open_with_durability(
                    root.0.join(format!("server-{i}")),
                    0,
                    Durability::Group(CHAOS_GROUP_WINDOW),
                )?)),
                _ => Ok(Box::new(MemStore::new())),
            }
        };
        match kind {
            TransportKind::Mem => {
                let mem = Arc::new(MemTransport::new());
                let faults = Arc::new(FaultTransport::new(mem.clone()));
                let mut slots = Vec::new();
                for i in 0..servers {
                    let id = ServerId::new(i);
                    let storage = StorageServer::new(id, make_store(i)?).into_shared();
                    let plan = faults.plan(id);
                    mem.register(
                        id,
                        Arc::new(FaultHandler::new(storage.clone(), plan.clone())),
                    );
                    slots.push(Slot {
                        id,
                        storage,
                        plan,
                        tcp_server: None,
                    });
                }
                Ok(Cluster {
                    kind,
                    store_kind,
                    faults,
                    tcp: None,
                    slots,
                    workers,
                    _store_dir: store_dir,
                })
            }
            TransportKind::Tcp(runtime) => {
                let tcp = Arc::new(TcpTransport::new());
                // Chaos schedules sever connections on purpose; a short
                // timeout keeps a lost ack from stalling the run.
                tcp.set_call_timeout(Some(Duration::from_secs(2)));
                // Client and server both run the kind's runtime.
                tcp.set_runtime(runtime);
                let faults = Arc::new(FaultTransport::new(tcp.clone()));
                // Truncations cross the wire for real (see TcpServer::
                // spawn_with_faults) instead of being simulated client-side.
                faults.set_client_truncation(false);
                let mut slots = Vec::new();
                for i in 0..servers {
                    let id = ServerId::new(i);
                    let storage = StorageServer::new(id, make_store(i)?).into_shared();
                    let plan = faults.plan(id);
                    let handler: Arc<dyn RequestHandler> =
                        Arc::new(FaultHandler::new(storage.clone(), plan.clone()));
                    let srv = TcpServer::spawn_with_config(
                        id,
                        "127.0.0.1:0",
                        handler,
                        ServerConfig {
                            workers,
                            runtime,
                            faults: Some(plan.clone()),
                            ..ServerConfig::default()
                        },
                    )?;
                    tcp.add_server(id, srv.addr());
                    slots.push(Slot {
                        id,
                        storage,
                        plan,
                        tcp_server: Some(srv),
                    });
                }
                Ok(Cluster {
                    kind,
                    store_kind,
                    faults,
                    tcp: Some(tcp),
                    slots,
                    workers,
                    _store_dir: store_dir,
                })
            }
        }
    }

    /// Which transport this cluster runs on.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Which fragment store backs the servers.
    pub fn store_kind(&self) -> StoreKind {
        self.store_kind
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The fault-wrapped transport the client log should use.
    pub fn transport(&self) -> Arc<dyn Transport> {
        self.faults.clone()
    }

    /// The fault plan for server `index`.
    pub fn plan(&self, index: u32) -> Arc<FaultPlan> {
        self.slots[index as usize].plan.clone()
    }

    /// Takes server `index` down. The plan flag makes new connects fail
    /// fast on both transports; on TCP the listener is also shut down,
    /// severing established connections like a process exit.
    pub fn kill(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.plan.set_down(true);
        if let Some(mut srv) = slot.tcp_server.take() {
            srv.shutdown();
        }
    }

    /// Brings server `index` back up. Its fragment store (the "disk")
    /// kept everything stored before the kill.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::Io`] if the TCP respawn cannot
    /// bind a fresh port.
    pub fn restart(&mut self, index: u32) -> Result<()> {
        let slot = &mut self.slots[index as usize];
        if let Some(tcp) = &self.tcp {
            let TransportKind::Tcp(runtime) = self.kind else {
                unreachable!("tcp transport implies a Tcp kind");
            };
            let handler: Arc<dyn RequestHandler> =
                Arc::new(FaultHandler::new(slot.storage.clone(), slot.plan.clone()));
            let srv = TcpServer::spawn_with_config(
                slot.id,
                "127.0.0.1:0",
                handler,
                ServerConfig {
                    workers: self.workers,
                    runtime,
                    faults: Some(slot.plan.clone()),
                    ..ServerConfig::default()
                },
            )?;
            tcp.add_server(slot.id, srv.addr());
            slot.tcp_server = Some(srv);
        }
        slot.plan.set_down(false);
        Ok(())
    }

    /// Clears pending one-shot injections (resets, delays, truncations)
    /// on every server, leaving down / disk-full state alone. Called at
    /// quiesce points so an unconsumed transient cannot fail verification.
    pub fn clear_transients(&self) {
        for slot in &self.slots {
            slot.plan.clear_transients();
        }
    }

    /// Total fragments currently held across all servers (diagnostics).
    pub fn total_fragments(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.storage.store().fragment_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_net::{ConnectionPool, Request, Response};
    use swarm_types::ClientId;

    fn ping_all(cluster: &Cluster) -> Vec<bool> {
        let pool = ConnectionPool::new(cluster.transport(), ClientId::new(1));
        (0..cluster.servers())
            .map(|i| {
                pool.call(ServerId::new(i), &Request::Ping)
                    .map(|r| r == Response::Ok)
                    .unwrap_or(false)
            })
            .collect()
    }

    #[test]
    fn mem_kill_restart_cycle() {
        let mut c = Cluster::new(TransportKind::Mem, 3).unwrap();
        assert_eq!(ping_all(&c), vec![true, true, true]);
        c.kill(1);
        assert_eq!(ping_all(&c), vec![true, false, true]);
        c.restart(1).unwrap();
        assert_eq!(ping_all(&c), vec![true, true, true]);
    }

    #[test]
    fn tcp_kill_restart_cycle_reuses_the_store() {
        for kind in TransportKind::all() {
            if kind == TransportKind::Mem {
                continue;
            }
            let mut c = Cluster::new(kind, 3).unwrap();
            assert_eq!(ping_all(&c), vec![true, true, true], "{kind}");
            c.kill(2);
            assert_eq!(ping_all(&c), vec![true, true, false], "{kind}");
            c.restart(2).unwrap();
            assert_eq!(ping_all(&c), vec![true, true, true], "{kind}");
        }
    }

    #[test]
    fn file_backed_cluster_survives_kill_restart() {
        use swarm_types::FragmentId;
        let mut c = Cluster::new_with_store(TransportKind::Mem, 3, StoreKind::File).unwrap();
        assert_eq!(c.store_kind(), StoreKind::File);
        let pool = ConnectionPool::new(c.transport(), ClientId::new(1));
        let fid = FragmentId::new(ClientId::new(1), 0);
        let resp = pool
            .call(
                ServerId::new(0),
                &Request::Store {
                    fid,
                    marked: false,
                    ranges: vec![],
                    data: b"on disk".to_vec().into(),
                },
            )
            .unwrap();
        assert_eq!(resp, Response::Ok);
        c.kill(0);
        c.restart(0).unwrap();
        let resp = pool
            .call(
                ServerId::new(0),
                &Request::Read {
                    fid,
                    offset: 0,
                    len: 7,
                },
            )
            .unwrap();
        assert_eq!(resp, Response::Data(b"on disk".to_vec().into()));
    }
}
