//! Transport-agnostic chaos cluster.
//!
//! The same schedule must replay on the in-process transport and over
//! real sockets, so this module hides the difference behind one type:
//! a [`Cluster`] owns N storage servers (each a
//! [`swarm_server::StorageServer`] over a [`swarm_server::MemStore`],
//! standing in for the server's disk — it survives kill/restart cycles
//! the way a disk survives a process crash) and a shared
//! [`FaultTransport`] whose per-server [`FaultPlan`]s are consulted on
//! both sides of the wire.
//!
//! Kill/restart semantics differ by transport in mechanism but not in
//! effect: on mem, down is a plan flag; on TCP, kill additionally tears
//! down the listening socket (severing live connections like a process
//! exit) and restart respawns on a **fresh ephemeral port** — re-binding
//! the old port would race with TIME_WAIT — and re-addresses the
//! transport, exactly how a restarted server would re-register.

use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use swarm_net::tcp::{TcpServer, TcpTransport};
use swarm_net::{FaultHandler, FaultPlan, FaultTransport, MemTransport, RequestHandler, Transport};
use swarm_server::{FragmentStore, MemStore, StorageServer};
use swarm_types::{Result, ServerId};

/// Which transport a chaos run drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process dispatch ([`MemTransport`]).
    Mem,
    /// Real sockets ([`TcpTransport`] + one [`TcpServer`] per member).
    Tcp,
}

impl fmt::Display for TransportKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransportKind::Mem => write!(f, "mem"),
            TransportKind::Tcp => write!(f, "tcp"),
        }
    }
}

impl FromStr for TransportKind {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "mem" => Ok(TransportKind::Mem),
            "tcp" => Ok(TransportKind::Tcp),
            other => Err(format!("unknown transport {other:?} (want mem|tcp)")),
        }
    }
}

struct Slot {
    id: ServerId,
    storage: Arc<StorageServer<MemStore>>,
    plan: Arc<FaultPlan>,
    tcp_server: Option<TcpServer>,
}

/// A running chaos cluster: N fault-wrapped storage servers behind one
/// [`FaultTransport`].
pub struct Cluster {
    kind: TransportKind,
    faults: Arc<FaultTransport>,
    tcp: Option<Arc<TcpTransport>>,
    slots: Vec<Slot>,
}

impl Cluster {
    /// Stands up `servers` storage servers over the chosen transport.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::Io`] if a TCP listener cannot
    /// bind.
    pub fn new(kind: TransportKind, servers: u32) -> Result<Cluster> {
        match kind {
            TransportKind::Mem => {
                let mem = Arc::new(MemTransport::new());
                let faults = Arc::new(FaultTransport::new(mem.clone()));
                let mut slots = Vec::new();
                for i in 0..servers {
                    let id = ServerId::new(i);
                    let storage = StorageServer::new(id, MemStore::new()).into_shared();
                    let plan = faults.plan(id);
                    mem.register(
                        id,
                        Arc::new(FaultHandler::new(storage.clone(), plan.clone())),
                    );
                    slots.push(Slot {
                        id,
                        storage,
                        plan,
                        tcp_server: None,
                    });
                }
                Ok(Cluster {
                    kind,
                    faults,
                    tcp: None,
                    slots,
                })
            }
            TransportKind::Tcp => {
                let tcp = Arc::new(TcpTransport::new());
                // Chaos schedules sever connections on purpose; a short
                // timeout keeps a lost ack from stalling the run.
                tcp.set_call_timeout(Some(Duration::from_secs(2)));
                let faults = Arc::new(FaultTransport::new(tcp.clone()));
                // Truncations cross the wire for real (see TcpServer::
                // spawn_with_faults) instead of being simulated client-side.
                faults.set_client_truncation(false);
                let mut slots = Vec::new();
                for i in 0..servers {
                    let id = ServerId::new(i);
                    let storage = StorageServer::new(id, MemStore::new()).into_shared();
                    let plan = faults.plan(id);
                    let handler: Arc<dyn RequestHandler> =
                        Arc::new(FaultHandler::new(storage.clone(), plan.clone()));
                    let srv = TcpServer::spawn_with_faults(
                        id,
                        "127.0.0.1:0",
                        handler,
                        Some(plan.clone()),
                    )?;
                    tcp.add_server(id, srv.addr());
                    slots.push(Slot {
                        id,
                        storage,
                        plan,
                        tcp_server: Some(srv),
                    });
                }
                Ok(Cluster {
                    kind,
                    faults,
                    tcp: Some(tcp),
                    slots,
                })
            }
        }
    }

    /// Which transport this cluster runs on.
    pub fn kind(&self) -> TransportKind {
        self.kind
    }

    /// Number of servers.
    pub fn servers(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The fault-wrapped transport the client log should use.
    pub fn transport(&self) -> Arc<dyn Transport> {
        self.faults.clone()
    }

    /// The fault plan for server `index`.
    pub fn plan(&self, index: u32) -> Arc<FaultPlan> {
        self.slots[index as usize].plan.clone()
    }

    /// Takes server `index` down. The plan flag makes new connects fail
    /// fast on both transports; on TCP the listener is also shut down,
    /// severing established connections like a process exit.
    pub fn kill(&mut self, index: u32) {
        let slot = &mut self.slots[index as usize];
        slot.plan.set_down(true);
        if let Some(mut srv) = slot.tcp_server.take() {
            srv.shutdown();
        }
    }

    /// Brings server `index` back up. Its fragment store (the "disk")
    /// kept everything stored before the kill.
    ///
    /// # Errors
    ///
    /// Returns [`swarm_types::SwarmError::Io`] if the TCP respawn cannot
    /// bind a fresh port.
    pub fn restart(&mut self, index: u32) -> Result<()> {
        let slot = &mut self.slots[index as usize];
        if let Some(tcp) = &self.tcp {
            let handler: Arc<dyn RequestHandler> =
                Arc::new(FaultHandler::new(slot.storage.clone(), slot.plan.clone()));
            let srv = TcpServer::spawn_with_faults(
                slot.id,
                "127.0.0.1:0",
                handler,
                Some(slot.plan.clone()),
            )?;
            tcp.add_server(slot.id, srv.addr());
            slot.tcp_server = Some(srv);
        }
        slot.plan.set_down(false);
        Ok(())
    }

    /// Clears pending one-shot injections (resets, delays, truncations)
    /// on every server, leaving down / disk-full state alone. Called at
    /// quiesce points so an unconsumed transient cannot fail verification.
    pub fn clear_transients(&self) {
        for slot in &self.slots {
            slot.plan.clear_transients();
        }
    }

    /// Total fragments currently held across all servers (diagnostics).
    pub fn total_fragments(&self) -> u64 {
        self.slots
            .iter()
            .map(|s| s.storage.store().fragment_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_net::{ConnectionPool, Request, Response};
    use swarm_types::ClientId;

    fn ping_all(cluster: &Cluster) -> Vec<bool> {
        let pool = ConnectionPool::new(cluster.transport(), ClientId::new(1));
        (0..cluster.servers())
            .map(|i| {
                pool.call(ServerId::new(i), &Request::Ping)
                    .map(|r| r == Response::Ok)
                    .unwrap_or(false)
            })
            .collect()
    }

    #[test]
    fn mem_kill_restart_cycle() {
        let mut c = Cluster::new(TransportKind::Mem, 3).unwrap();
        assert_eq!(ping_all(&c), vec![true, true, true]);
        c.kill(1);
        assert_eq!(ping_all(&c), vec![true, false, true]);
        c.restart(1).unwrap();
        assert_eq!(ping_all(&c), vec![true, true, true]);
    }

    #[test]
    fn tcp_kill_restart_cycle_reuses_the_store() {
        let mut c = Cluster::new(TransportKind::Tcp, 3).unwrap();
        assert_eq!(ping_all(&c), vec![true, true, true]);
        c.kill(2);
        assert_eq!(ping_all(&c), vec![true, true, false]);
        c.restart(2).unwrap();
        assert_eq!(ping_all(&c), vec![true, true, true]);
    }
}
