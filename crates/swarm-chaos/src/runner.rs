//! Schedule execution and crash-consistency checking.
//!
//! The runner's oracle is a **model of acked writes**: a map from block
//! id to `(address, length, fill byte)` that a block enters only when a
//! flush or checkpoint covering it *succeeded*. Everything the harness
//! asserts follows from the paper's durability contract — data the
//! client was told is durable must stay readable (possibly via parity
//! reconstruction); data whose ack was lost may or may not survive and
//! is simply never verified.
//!
//! The model is shared with a [`ChaosService`] registered on the service
//! stack, so when the cleaner moves a block the model's address moves
//! with it. Moves of *unknown* ids are ignored: a block whose flush
//! failed client-side can still be durable server-side ("limbo"), and
//! the cleaner is entitled to move it.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log, LogConfig, ReplayEntry};
use swarm_services::{Service, ServiceStack};
use swarm_types::{BlockAddr, ClientId, Geometry, Result, ServerId, ServiceId, SwarmError};

use crate::cluster::{Cluster, StoreKind, TransportKind};
use crate::schedule::{ChaosEvent, DownSet, Schedule};

/// The service id the harness writes blocks under.
pub const CHAOS_SERVICE: ServiceId = ServiceId::new(7);

/// What the harness believes about one acked block.
#[derive(Debug, Clone, Copy)]
struct BlockState {
    addr: BlockAddr,
    len: usize,
    fill: u8,
}

/// Shared harness-side view of every block the client has appended.
///
/// `pending` matters for correctness of the oracle itself: the cleaner
/// flushes the open stripe during a pass, which can make a
/// not-yet-acked block movable. The move notification arrives before
/// the runner acks the block, so unless pending addresses live behind
/// the same lock the ack would promote a stale (deleted) address into
/// the model.
#[derive(Default)]
struct ModelInner {
    /// Blocks covered by a successful flush, keyed by harness id.
    acked: BTreeMap<u64, BlockState>,
    /// Appended but not yet covered by a successful flush.
    pending: Vec<(u64, BlockState)>,
}

type Model = Arc<Mutex<ModelInner>>;

/// The model-maintaining service: tracks cleaner moves, checkpoints on
/// demand, and treats replay as a no-op (the model lives harness-side).
struct ChaosService {
    model: Model,
}

impl Service for ChaosService {
    fn id(&self) -> ServiceId {
        CHAOS_SERVICE
    }

    fn name(&self) -> &str {
        "chaos-model"
    }

    fn restore_checkpoint(&mut self, _data: &[u8]) -> Result<()> {
        Ok(())
    }

    fn replay(&mut self, _entry: &ReplayEntry) -> Result<()> {
        Ok(())
    }

    fn block_moved(&mut self, old: BlockAddr, new: BlockAddr, create: &[u8]) -> Result<()> {
        let Ok(raw) = <[u8; 8]>::try_from(create) else {
            return Err(SwarmError::invalid("chaos creation record is 8 bytes"));
        };
        let id = u64::from_le_bytes(raw);
        let mut model = self.model.lock();
        if let Some(state) = model.acked.get_mut(&id) {
            if state.addr == old {
                state.addr = new;
            }
        }
        for (pid, state) in &mut model.pending {
            if *pid == id && state.addr == old {
                state.addr = new;
            }
        }
        // Unknown id: a limbo block (durable but never acked to the
        // harness). The cleaner may move it; nothing to track.
        Ok(())
    }

    fn write_checkpoint(&mut self, log: &Log) -> Result<()> {
        log.checkpoint(CHAOS_SERVICE, b"chaos-ckpt")?;
        Ok(())
    }
}

/// The full set of knobs that pin down one chaos run.
///
/// `Display` prints the exact `swarm-chaos` replay command and `FromStr`
/// parses one back, so a failing-seed line in CI output is checkably
/// lossless: parsing what was printed yields identical options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunOptions {
    /// Schedule seed.
    pub seed: u64,
    /// Transport under test.
    pub transport: TransportKind,
    /// Fragment store backing the servers.
    pub store: StoreKind,
    /// Body events generated per schedule.
    pub events: usize,
    /// Cluster width (`k + m`).
    pub servers: u32,
    /// Parity members per stripe (`m`).
    pub parity: u32,
    /// Store pipelining window for writes.
    pub write_window: usize,
    /// Read pipelining window for verification.
    pub read_window: usize,
    /// Concurrent client logs sharing the cluster.
    pub clients: u32,
}

impl fmt::Display for RunOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "swarm-chaos --seed {} --transport {} --store {} --events {} --geometry {}+{} \
             --write-window {} --read-window {} --clients {}",
            self.seed,
            self.transport,
            self.store,
            self.events,
            self.servers - self.parity,
            self.parity,
            self.write_window,
            self.read_window,
            self.clients
        )
    }
}

impl FromStr for RunOptions {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        let mut tokens = s.split_whitespace();
        if tokens.next() != Some("swarm-chaos") {
            return Err("replay line must start with `swarm-chaos`".into());
        }
        let mut seed = None;
        let mut transport = None;
        let mut store = None;
        let mut events = None;
        let mut geometry: Option<Geometry> = None;
        let mut write_window = None;
        let mut read_window = None;
        let mut clients = None;
        while let Some(flag) = tokens.next() {
            let value = tokens
                .next()
                .ok_or_else(|| format!("flag {flag} is missing its value"))?;
            match flag {
                "--seed" => seed = Some(value.parse::<u64>().map_err(|e| e.to_string())?),
                "--transport" => transport = Some(value.parse::<TransportKind>()?),
                "--store" => store = Some(value.parse::<StoreKind>()?),
                "--events" => events = Some(value.parse::<usize>().map_err(|e| e.to_string())?),
                "--geometry" => {
                    geometry = Some(value.parse::<Geometry>().map_err(|e| e.to_string())?)
                }
                "--write-window" => {
                    write_window = Some(value.parse::<usize>().map_err(|e| e.to_string())?)
                }
                "--read-window" => {
                    read_window = Some(value.parse::<usize>().map_err(|e| e.to_string())?)
                }
                "--clients" => clients = Some(value.parse::<u32>().map_err(|e| e.to_string())?),
                other => return Err(format!("unknown replay flag {other}")),
            }
        }
        let geometry = geometry.ok_or("replay line is missing --geometry")?;
        Ok(RunOptions {
            seed: seed.ok_or("replay line is missing --seed")?,
            transport: transport.ok_or("replay line is missing --transport")?,
            store: store.ok_or("replay line is missing --store")?,
            events: events.ok_or("replay line is missing --events")?,
            servers: geometry.width() as u32,
            parity: geometry.parity() as u32,
            write_window: write_window.ok_or("replay line is missing --write-window")?,
            read_window: read_window.ok_or("replay line is missing --read-window")?,
            // Older replay lines predate multi-client runs: one client.
            clients: clients.unwrap_or(1),
        })
    }
}

/// The outcome of replaying one schedule on one transport.
#[derive(Debug)]
pub struct RunReport {
    /// Seed the schedule came from.
    pub seed: u64,
    /// Transport the run used.
    pub transport: TransportKind,
    /// Fragment store backing the servers during the run.
    pub store: StoreKind,
    /// Schedule hash (transport-independent for a given seed).
    pub hash: u64,
    /// Events executed.
    pub events: usize,
    /// Individual block reads that verified successfully.
    pub verified_reads: u64,
    /// Blocks acked over the whole run.
    pub acked_blocks: u64,
    /// Store pipelining window the client wrote with.
    pub write_window: usize,
    /// Read pipelining window the client verified with.
    pub read_window: usize,
    /// Parity members per stripe (`m`) the run striped with.
    pub parity: u32,
    /// Concurrent client logs the run dealt events across.
    pub clients: u32,
    /// Invariant violations, each tagged with the offending event index.
    pub failures: Vec<String>,
}

impl RunReport {
    /// Did every invariant hold?
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// The full option set of this run, for replay lines.
    pub fn options(&self, events: usize, servers: u32) -> RunOptions {
        RunOptions {
            seed: self.seed,
            transport: self.transport,
            store: self.store,
            events,
            servers,
            parity: self.parity,
            write_window: self.write_window,
            read_window: self.read_window,
            clients: self.clients,
        }
    }

    /// The one-liner that replays this exact run.
    pub fn replay_command(&self, events: usize, servers: u32) -> String {
        self.options(events, servers).to_string()
    }
}

fn make_config(
    client: ClientId,
    servers: u32,
    parity: u32,
    write_window: usize,
    read_window: usize,
) -> Result<LogConfig> {
    Ok(
        LogConfig::new(client, (0..servers).map(ServerId::new).collect())?
            // `m = 1` resolves to the paper's XOR geometry; wider parity
            // engages the Reed–Solomon coder under the same chaos matrix.
            .geometry(Geometry::new((servers - parity) as u8, parity as u8)?)?
            .fragment_size(4096)
            // Every verification read must hit the servers, not a client
            // cache — the whole point is checking what survived.
            .cache_fragments(0)
            // The windowed write path must uphold the durability contract
            // at any pipelining depth, so the matrix runs it explicitly.
            .write_window(write_window)
            // Same for the windowed read path: verification reads go
            // through the pipelined engine at the depth under test.
            .read_window(read_window)
            // Chaos connections drop on purpose; more retries with a
            // short backoff ride out injected transients without turning
            // a deliberate down-window into a minutes-long stall.
            .store_retries(8)
            .retry_backoff(Duration::from_millis(5)),
    )
}

/// One client's complete state: its own log, cleaner, service stack,
/// and acked-write model. Rigs share nothing but the cluster, so a
/// byte-exact per-rig verify at every quiesce point *is* the zero
/// cross-client-interference check — client A's blocks must survive
/// client B's appends, clean passes, and crash recoveries untouched.
struct Rig {
    client: ClientId,
    model: Model,
    stack: Arc<ServiceStack>,
    log: Option<Arc<Log>>,
    cleaner: Option<Cleaner>,
    next_id: u64,
}

impl Rig {
    fn new(
        cluster: &Cluster,
        client: ClientId,
        servers: u32,
        parity: u32,
        write_window: usize,
        read_window: usize,
    ) -> Result<Rig> {
        let model: Model = Arc::new(Mutex::new(ModelInner::default()));
        let mut stack = ServiceStack::new();
        let service: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(ChaosService {
            model: model.clone(),
        }));
        stack.register(service)?;
        let stack = Arc::new(stack);
        let log = Arc::new(Log::create(
            cluster.transport(),
            make_config(client, servers, parity, write_window, read_window)?,
        )?);
        let cleaner = Cleaner::new(log.clone(), stack.clone(), CleanPolicy::CostBenefit);
        Ok(Rig {
            client,
            model,
            stack,
            log: Some(log),
            cleaner: Some(cleaner),
            next_id: 0,
        })
    }

    fn log(&self) -> Arc<Log> {
        self.log.clone().expect("log present while stepping")
    }
}

/// Replays one [`Schedule`] against a live cluster, checking invariants
/// at every quiesce point.
///
/// With `schedule.clients > 1` the runner stands up one [`Rig`] per
/// client over the *same* servers: appends and deletes are dealt
/// round-robin, while flushes, checkpoints, clean passes, quiesces,
/// and crash recoveries apply to every rig — maximal contention on the
/// shared cluster with fully independent durability oracles.
pub struct Runner {
    cluster: Cluster,
    rigs: Vec<Rig>,
    write_window: usize,
    read_window: usize,
    parity: u32,
    append_rr: usize,
    delete_rr: usize,
    verified_reads: u64,
    acked_blocks: u64,
    failures: Vec<String>,
}

/// Stop collecting after this many failures — a broken run would
/// otherwise report every remaining block at every remaining check.
const MAX_FAILURES: usize = 24;

impl Runner {
    /// Stands up a fresh cluster + log + cleaner for `schedule`, backed
    /// by [`StoreKind::Mem`].
    ///
    /// # Errors
    ///
    /// Propagates cluster construction and log creation failures.
    pub fn new(schedule: &Schedule, kind: TransportKind) -> Result<Runner> {
        Self::new_with_store(schedule, kind, StoreKind::Mem)
    }

    /// Stands up a fresh cluster + log + cleaner for `schedule` with an
    /// explicit fragment-store backing.
    ///
    /// # Errors
    ///
    /// Propagates cluster construction and log creation failures.
    pub fn new_with_store(
        schedule: &Schedule,
        kind: TransportKind,
        store: StoreKind,
    ) -> Result<Runner> {
        Self::new_with_options(
            schedule,
            kind,
            store,
            swarm_log::DEFAULT_WRITE_WINDOW,
            swarm_log::DEFAULT_READ_WINDOW,
        )
    }

    /// Stands up a fresh cluster + log + cleaner for `schedule` with an
    /// explicit store backing and client write/read windows.
    ///
    /// # Errors
    ///
    /// Propagates cluster construction and log creation failures.
    pub fn new_with_options(
        schedule: &Schedule,
        kind: TransportKind,
        store: StoreKind,
        write_window: usize,
        read_window: usize,
    ) -> Result<Runner> {
        let cluster = Cluster::new_sized(kind, schedule.servers, store, schedule.clients)?;
        let rigs = (1..=schedule.clients)
            .map(|c| {
                Rig::new(
                    &cluster,
                    ClientId::new(c),
                    schedule.servers,
                    schedule.parity,
                    write_window,
                    read_window,
                )
            })
            .collect::<Result<Vec<Rig>>>()?;
        Ok(Runner {
            cluster,
            rigs,
            write_window,
            read_window,
            parity: schedule.parity,
            append_rr: 0,
            delete_rr: 0,
            verified_reads: 0,
            acked_blocks: 0,
            failures: Vec::new(),
        })
    }

    /// Runs `schedule` to completion and reports, backed by
    /// [`StoreKind::Mem`].
    ///
    /// # Errors
    ///
    /// Returns setup errors only; invariant violations are collected in
    /// the report, not returned.
    pub fn run(schedule: &Schedule, kind: TransportKind) -> Result<RunReport> {
        Self::run_with_store(schedule, kind, StoreKind::Mem)
    }

    /// Runs `schedule` to completion with an explicit store backing —
    /// [`StoreKind::File`] puts the `FileStore` journal group-commit
    /// path on the chaos critical path.
    ///
    /// # Errors
    ///
    /// Returns setup errors only; invariant violations are collected in
    /// the report, not returned.
    pub fn run_with_store(
        schedule: &Schedule,
        kind: TransportKind,
        store: StoreKind,
    ) -> Result<RunReport> {
        Self::run_with_options(
            schedule,
            kind,
            store,
            swarm_log::DEFAULT_WRITE_WINDOW,
            swarm_log::DEFAULT_READ_WINDOW,
        )
    }

    /// Runs `schedule` to completion with an explicit store backing and
    /// client write/read windows — the matrix runs each window at 1 (the
    /// paper's serial pipelines) and 8 (the windowed defaults) to prove
    /// the durability contract holds at any pipelining depth.
    ///
    /// # Errors
    ///
    /// Returns setup errors only; invariant violations are collected in
    /// the report, not returned.
    pub fn run_with_options(
        schedule: &Schedule,
        kind: TransportKind,
        store: StoreKind,
        write_window: usize,
        read_window: usize,
    ) -> Result<RunReport> {
        let mut runner =
            Runner::new_with_options(schedule, kind, store, write_window, read_window)?;
        for (i, event) in schedule.events.iter().enumerate() {
            if runner.failures.len() >= MAX_FAILURES {
                runner
                    .failures
                    .push(format!("[{i}] aborting: too many failures"));
                break;
            }
            if runner.rigs.iter().any(|r| r.log.is_none()) {
                break; // unrecoverable (crash recovery itself failed)
            }
            runner.step(i, event);
        }
        Ok(RunReport {
            seed: schedule.seed,
            transport: kind,
            store,
            hash: schedule.hash(),
            events: schedule.events.len(),
            verified_reads: runner.verified_reads,
            acked_blocks: runner.acked_blocks,
            write_window,
            read_window,
            parity: schedule.parity,
            clients: schedule.clients,
            failures: runner.failures,
        })
    }

    fn step(&mut self, i: usize, event: &ChaosEvent) {
        match *event {
            ChaosEvent::Append { size, fill } => {
                let r = self.append_rr % self.rigs.len();
                self.append_rr += 1;
                self.append(r, size, fill);
            }
            ChaosEvent::Flush => {
                for r in 0..self.rigs.len() {
                    match self.rigs[r].log().flush() {
                        Ok(()) => self.ack_pending(r),
                        Err(e) => {
                            swarm_metrics::trace!("chaos", "flush failed (acks dropped): {e}");
                            self.drop_pending(r);
                        }
                    }
                }
            }
            ChaosEvent::Checkpoint => {
                for r in 0..self.rigs.len() {
                    match self.rigs[r].log().checkpoint(CHAOS_SERVICE, b"chaos-ckpt") {
                        Ok(_) => self.ack_pending(r),
                        Err(e) => {
                            swarm_metrics::trace!("chaos", "checkpoint failed (acks dropped): {e}");
                            self.drop_pending(r);
                        }
                    }
                }
            }
            ChaosEvent::DeleteOldest => {
                let r = self.delete_rr % self.rigs.len();
                self.delete_rr += 1;
                self.delete_oldest(r);
            }
            ChaosEvent::ConnReset { server } => self.cluster.plan(server).inject_reset(1),
            ChaosEvent::Delay { server, micros } => {
                self.cluster.plan(server).inject_delay_us(micros);
            }
            ChaosEvent::TruncateNext { server } => self.cluster.plan(server).inject_truncate(1),
            ChaosEvent::ServerStall { server, millis } => {
                self.cluster.plan(server).inject_stall_ms(millis);
            }
            ChaosEvent::KillServer { server } => self.cluster.kill(server),
            ChaosEvent::RestartServer { server } => {
                if let Err(e) = self.cluster.restart(server) {
                    self.failures
                        .push(format!("[{i}] restart of server {server} failed: {e}"));
                }
            }
            ChaosEvent::DiskFull { server } => self.cluster.plan(server).set_disk_full(true),
            ChaosEvent::DiskFree { server } => self.cluster.plan(server).set_disk_full(false),
            ChaosEvent::CleanPass => {
                for r in 0..self.rigs.len() {
                    let Some(cleaner) = &self.rigs[r].cleaner else {
                        continue;
                    };
                    // The generator restored the cluster first, so a
                    // cleaning error here is a real bug, not bad luck.
                    match cleaner.clean_pass(4) {
                        Ok(stats) => {
                            swarm_metrics::trace!(
                                "chaos",
                                "clean pass: {} stripes, {} blocks moved",
                                stats.stripes_cleaned,
                                stats.blocks_moved
                            );
                        }
                        Err(e) => {
                            let client = self.rigs[r].client;
                            self.failures
                                .push(format!("[{i}] client {client} clean pass failed: {e}"));
                        }
                    }
                }
                self.verify_all(i, "after clean pass");
            }
            ChaosEvent::Quiesce { verify_down } => self.quiesce(i, verify_down),
            ChaosEvent::CrashRecover => {
                // All clients crash together: unflushed appends die with
                // their processes, then each recovers its own log.
                self.cluster.clear_transients();
                for r in 0..self.rigs.len() {
                    self.crash_recover(r, i);
                }
            }
        }
    }

    /// One client appends a block (round-robin dealt by the caller).
    fn append(&mut self, r: usize, size: usize, fill: u8) {
        let rig = &mut self.rigs[r];
        let id = rig.next_id;
        rig.next_id += 1;
        let data = vec![fill; size];
        match rig
            .log()
            .append_block(CHAOS_SERVICE, &id.to_le_bytes(), &data)
        {
            Ok(addr) => rig.model.lock().pending.push((
                id,
                BlockState {
                    addr,
                    len: size,
                    fill,
                },
            )),
            // Append can fail when a sealed fragment's store cascades;
            // the block was never acked, so the model simply never
            // learns about it.
            Err(e) => {
                swarm_metrics::trace!("chaos", "append {id} failed: {e}");
            }
        }
    }

    /// One client deletes its oldest acked block.
    fn delete_oldest(&mut self, r: usize) {
        let rig = &self.rigs[r];
        let oldest = rig
            .model
            .lock()
            .acked
            .iter()
            .next()
            .map(|(&id, state)| (id, state.addr));
        if let Some((id, addr)) = oldest {
            match rig.log().delete_block(CHAOS_SERVICE, addr) {
                // The record may still be unflushed, but dropping the
                // block from the model is safe either way: we just stop
                // verifying it.
                Ok(_) => {
                    rig.model.lock().acked.remove(&id);
                }
                Err(e) => {
                    swarm_metrics::trace!("chaos", "delete of {id} failed: {e}");
                }
            }
        }
    }

    /// A successful flush acked everything the rig had pending.
    fn ack_pending(&mut self, r: usize) {
        let mut model = self.rigs[r].model.lock();
        let pending = std::mem::take(&mut model.pending);
        for (id, state) in pending {
            self.acked_blocks += 1;
            model.acked.insert(id, state);
        }
    }

    /// A failed flush leaves pending blocks unacked. They may or may not
    /// be durable ("limbo"); the harness never verifies them.
    fn drop_pending(&mut self, r: usize) {
        self.rigs[r].model.lock().pending.clear();
    }

    fn quiesce(&mut self, i: usize, verify_down: DownSet) {
        // Unconsumed one-shot injections must not leak into verification
        // traffic.
        self.cluster.clear_transients();
        for r in 0..self.rigs.len() {
            // First flush drains any store errors accumulated during
            // fault windows; on a restored cluster the retry succeeds.
            let flushed = match self.rigs[r].log().flush() {
                Ok(()) => true,
                Err(e) => {
                    swarm_metrics::trace!("chaos", "quiesce flush drained errors: {e}");
                    self.drop_pending(r);
                    match self.rigs[r].log().flush() {
                        Ok(()) => true,
                        Err(e) => {
                            let client = self.rigs[r].client;
                            self.failures.push(format!(
                                "[{i}] client {client} flush failed on a healthy cluster: {e}"
                            ));
                            false
                        }
                    }
                }
            };
            if flushed {
                self.ack_pending(r);
                self.check_recovery_head(r, i);
            }
        }
        self.verify_all(i, "at quiesce");
        if !verify_down.is_empty() {
            // Hold the listed servers (up to `m`) down simultaneously and
            // verify again: every read touching them must come back via
            // erasure decoding — XOR for one loss, Reed–Solomon beyond.
            for server in verify_down.iter() {
                self.cluster.plan(server).set_down(true);
            }
            self.verify_all(i, "with servers held down");
            for server in verify_down.iter() {
                self.cluster.plan(server).set_down(false);
            }
        }
    }

    /// Every rig's acked blocks verify byte-exact — each against its own
    /// model, so any bleed-through between client logs surfaces here.
    fn verify_all(&mut self, i: usize, context: &str) {
        for r in 0..self.rigs.len() {
            self.verify(r, i, context);
        }
    }

    /// Invariant: recovery rollforward reaches the live (flushed) log
    /// head — same next sequence number, nothing silently dropped.
    fn check_recovery_head(&mut self, r: usize, i: usize) {
        let client = self.rigs[r].client;
        let config = match make_config(
            client,
            self.cluster.servers(),
            self.parity,
            self.write_window,
            self.read_window,
        ) {
            Ok(c) => c,
            Err(e) => {
                self.failures
                    .push(format!("[{i}] config rebuild failed: {e}"));
                return;
            }
        };
        match recover(self.cluster.transport(), config, &[CHAOS_SERVICE]) {
            Ok((recovered, _replay)) => {
                let live = self.rigs[r].log().next_seq();
                let got = recovered.next_seq();
                if got != live {
                    self.failures.push(format!(
                        "[{i}] client {client} recovery stopped short of the log head: \
                         recovered next_seq {got}, live next_seq {live}"
                    ));
                }
            }
            Err(e) => self.failures.push(format!(
                "[{i}] client {client} recovery of a flushed log failed: {e}"
            )),
        }
    }

    /// Invariant: every acked block reads back with its exact bytes.
    fn verify(&mut self, r: usize, i: usize, context: &str) {
        let client = self.rigs[r].client;
        let log = self.rigs[r].log();
        let snapshot: Vec<(u64, BlockState)> = self.rigs[r]
            .model
            .lock()
            .acked
            .iter()
            .map(|(&id, &state)| (id, state))
            .collect();
        for (id, state) in &snapshot {
            if self.failures.len() >= MAX_FAILURES {
                return;
            }
            match log.read(state.addr) {
                Ok(bytes) => {
                    if bytes.len() != state.len || bytes.as_slice().iter().any(|&b| b != state.fill)
                    {
                        self.failures.push(format!(
                            "[{i}] client {client} block {id} corrupt {context}: \
                             want {} x {:#04x}, got {} bytes",
                            state.len,
                            state.fill,
                            bytes.len()
                        ));
                    } else {
                        self.verified_reads += 1;
                    }
                }
                Err(e) => self.failures.push(format!(
                    "[{i}] client {client} acked block {id} unreadable {context} \
                     (addr {:?}): {e}",
                    state.addr
                )),
            }
        }
        self.verify_scan(r, i, &snapshot, context);
    }

    /// Invariant: the batched scan path agrees with the model too —
    /// `read_many` returns every acked block byte-exact, in order, even
    /// when a held-down server forces the reconstruction fallback.
    fn verify_scan(&mut self, r: usize, i: usize, snapshot: &[(u64, BlockState)], context: &str) {
        if self.failures.len() >= MAX_FAILURES || snapshot.is_empty() {
            return;
        }
        let client = self.rigs[r].client;
        let addrs: Vec<BlockAddr> = snapshot.iter().map(|(_, s)| s.addr).collect();
        match self.rigs[r].log().read_many(&addrs) {
            Ok(results) => {
                for ((id, state), bytes) in snapshot.iter().zip(&results) {
                    if bytes.len() != state.len || bytes.as_slice().iter().any(|&b| b != state.fill)
                    {
                        self.failures.push(format!(
                            "[{i}] client {client} block {id} corrupt in scan {context}: \
                             want {} x {:#04x}, got {} bytes",
                            state.len,
                            state.fill,
                            bytes.len()
                        ));
                        if self.failures.len() >= MAX_FAILURES {
                            return;
                        }
                    }
                }
            }
            Err(e) => self.failures.push(format!(
                "[{i}] client {client} scan of acked blocks failed {context}: {e}"
            )),
        }
    }

    /// Drops one client without flushing (a crash), recovers, and
    /// verifies through the recovered log.
    fn crash_recover(&mut self, r: usize, i: usize) {
        // Unflushed appends die with the client; they were never acked.
        self.drop_pending(r);
        let client = self.rigs[r].client;
        // The cleaner holds the only other reference to the log; dropping
        // both simulates the client process dying. The open fragment is
        // lost — exactly the torn tail recovery must discard.
        self.rigs[r].cleaner = None;
        self.rigs[r].log = None;
        let config = match make_config(
            client,
            self.cluster.servers(),
            self.parity,
            self.write_window,
            self.read_window,
        ) {
            Ok(c) => c,
            Err(e) => {
                self.failures
                    .push(format!("[{i}] config rebuild failed: {e}"));
                return;
            }
        };
        match recover(self.cluster.transport(), config, &[CHAOS_SERVICE]) {
            Ok((log, replay)) => {
                if let Err(e) = self.rigs[r].stack.recover(&replay) {
                    self.failures
                        .push(format!("[{i}] client {client} service replay failed: {e}"));
                }
                let log = Arc::new(log);
                self.rigs[r].cleaner = Some(Cleaner::new(
                    log.clone(),
                    self.rigs[r].stack.clone(),
                    CleanPolicy::CostBenefit,
                ));
                self.rigs[r].log = Some(log);
                self.verify(r, i, "after crash recovery");
            }
            Err(e) => {
                // Leaves the rig log-less; the step loop stops.
                self.failures
                    .push(format!("[{i}] client {client} crash recovery failed: {e}"));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every failing seed prints a replay command; this pins the contract
    /// that the printed line carries the *full* option set — parsing it
    /// back yields options identical to the run's.
    #[test]
    fn replay_line_round_trips_every_option() {
        let all = [
            RunOptions {
                seed: 42,
                transport: TransportKind::Mem,
                store: StoreKind::Mem,
                events: 64,
                servers: 4,
                parity: 1,
                write_window: 8,
                read_window: 8,
                clients: 1,
            },
            RunOptions {
                seed: u64::MAX,
                transport: TransportKind::tcp(),
                store: StoreKind::File,
                events: 256,
                servers: 6,
                parity: 2,
                write_window: 1,
                read_window: 16,
                clients: 8,
            },
            RunOptions {
                seed: 7,
                transport: TransportKind::Mem,
                store: StoreKind::File,
                events: 48,
                servers: 11,
                parity: 3,
                write_window: 4,
                read_window: 1,
                clients: 32,
            },
        ];
        for options in all {
            let line = options.to_string();
            for flag in [
                "--seed",
                "--transport",
                "--store",
                "--events",
                "--geometry",
                "--write-window",
                "--read-window",
                "--clients",
            ] {
                assert!(line.contains(flag), "replay line lost {flag}: {line}");
            }
            let parsed: RunOptions = line.parse().expect("replay line parses");
            assert_eq!(parsed, options, "round-trip changed {line}");
        }
    }

    /// Replay lines printed before multi-client runs existed have no
    /// `--clients` flag; they must keep parsing as one-client runs.
    #[test]
    fn legacy_replay_line_defaults_to_one_client() {
        let line = "swarm-chaos --seed 3 --transport mem --store mem --events 32 \
                    --geometry 3+1 --write-window 8 --read-window 8";
        let parsed: RunOptions = line.parse().expect("legacy line parses");
        assert_eq!(parsed.clients, 1);
    }

    /// The report's replay command is the same canonical line.
    #[test]
    fn report_replay_command_matches_options() {
        let report = RunReport {
            seed: 9,
            transport: TransportKind::Mem,
            store: StoreKind::Mem,
            hash: 0,
            events: 70,
            verified_reads: 0,
            acked_blocks: 0,
            write_window: 8,
            read_window: 8,
            parity: 2,
            clients: 8,
            failures: Vec::new(),
        };
        let line = report.replay_command(64, 6);
        assert_eq!(line, report.options(64, 6).to_string());
        let parsed: RunOptions = line.parse().expect("parses");
        assert_eq!(parsed.servers, 6);
        assert_eq!(parsed.parity, 2);
        assert_eq!(parsed.events, 64);
        assert_eq!(parsed.clients, 8);
    }
}
