//! Deterministic chaos harness for the Swarm storage stack.
//!
//! The paper's availability claims (§2.3.3, §3.3) are about what happens
//! *between* the happy paths: a storage server dies mid-stripe, a reply
//! frame is torn on the wire, a disk fills while the cleaner is moving
//! blocks. This crate turns those situations into a repeatable experiment:
//!
//! 1. [`schedule::Schedule::generate`] expands a 64-bit seed into a typed
//!    event list — appends, flushes, checkpoints, connection resets,
//!    truncated replies, server kill/restart pairs, disk-full windows,
//!    cleaner passes, and whole-client crash/recover cycles. Generation
//!    uses only the seeded RNG, so the same seed always produces the same
//!    schedule (and the same [`schedule::Schedule::hash`]).
//! 2. [`cluster::Cluster`] stands up the same cluster over either
//!    transport: in-process [`swarm_net::MemTransport`] or real sockets
//!    via [`swarm_net::tcp::TcpTransport`], both wrapped in the shared
//!    [`swarm_net::FaultTransport`] so one schedule drives both.
//! 3. [`runner::Runner`] executes the schedule against a live
//!    log + cleaner + service stack while maintaining a model of every
//!    *acknowledged* write, and checks the crash-consistency invariants at
//!    every quiesce point:
//!
//!    * every acked block is readable with its exact bytes, including via
//!      parity reconstruction with up to `m` servers held down at once
//!      (XOR for `m = 1`, Reed–Solomon decode for wider geometries);
//!    * recovery rollforward reaches the live log head;
//!    * the cleaner never reclaims a live stripe (checked indirectly —
//!      blocks stay readable at their possibly-moved addresses after every
//!      cleaning pass).
//!
//! A failing seed prints a one-line replay command; because neither the
//! schedule nor the verdict depends on wall-clock time or unseeded
//! randomness, rerunning that command reproduces the failure.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod runner;
pub mod schedule;

pub use cluster::{Cluster, StoreKind, TransportKind};
pub use runner::{RunOptions, RunReport, Runner};
pub use schedule::{ChaosEvent, DownSet, Schedule, ScheduleConfig};
