//! Seeded fault-schedule generation.
//!
//! A schedule is a flat list of [`ChaosEvent`]s expanded from a 64-bit
//! seed by a deterministic RNG. The generator enforces one structural
//! rule — **at most `m` impaired servers (down or disk-full) at any
//! time, with a flush barrier closing every impairment window** — the
//! fault model of an `m`-parity stripe: every stripe's write window sees
//! at most `m` failed members, so every acked stripe is either complete
//! or decodable. The paper's single-XOR-parity shape is `m = 1`.
//!
//! Schedules canonicalize to text (one event per line) and hash with
//! FNV-1a 64; the hash covers the seed, the cluster shape, and every
//! event, so "same seed ⇒ same schedule" is checkable across transports
//! and across machines.

use std::fmt;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Shape parameters for schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Number of storage servers (= stripe width `k + m`). At least 3,
    /// so the cluster survives held-down servers during verification.
    pub servers: u32,
    /// Number of body events to generate (restores and the verification
    /// tail are appended on top).
    pub events: usize,
    /// Parity members per stripe (`m`) — the impairment budget: the
    /// generator keeps at most `m` servers impaired at once and the
    /// verification tail holds `m` servers down.
    pub parity: u32,
    /// Concurrent client logs sharing the cluster. The runner deals
    /// work events round-robin across them and verifies every client's
    /// acked blocks at every quiesce (zero cross-client interference).
    pub clients: u32,
}

impl ScheduleConfig {
    /// Creates a single-parity (XOR) config; panics if `servers < 3` or
    /// `events == 0`.
    pub fn new(servers: u32, events: usize) -> ScheduleConfig {
        ScheduleConfig::with_parity(servers, events, 1)
    }

    /// Creates a config for a `servers - parity` + `parity` geometry;
    /// panics if `servers < 3`, `events == 0`, or `parity` leaves no
    /// data members.
    pub fn with_parity(servers: u32, events: usize, parity: u32) -> ScheduleConfig {
        assert!(servers >= 3, "chaos needs >= 3 servers for reconstruction");
        assert!(events > 0, "chaos needs at least one event");
        assert!(
            parity >= 1 && parity < servers,
            "parity must be 1..servers (k >= 1 data members)"
        );
        ScheduleConfig {
            servers,
            events,
            parity,
            clients: 1,
        }
    }

    /// Sets the number of concurrent client logs; panics if zero.
    pub fn clients(mut self, clients: u32) -> ScheduleConfig {
        assert!(clients >= 1, "chaos needs at least one client");
        self.clients = clients;
        self
    }
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig::new(4, 64)
    }
}

/// A set of server indices packed into a bitmask, so [`ChaosEvent`]
/// stays `Copy` while quiesce checks hold up to `m` servers down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DownSet(u64);

impl DownSet {
    /// The empty set.
    pub const EMPTY: DownSet = DownSet(0);

    /// Adds server `s` (idempotent).
    pub fn add(&mut self, s: u32) {
        debug_assert!(s < 64);
        self.0 |= 1 << s;
    }

    /// Is server `s` in the set?
    pub fn contains(self, s: u32) -> bool {
        self.0 & (1 << s) != 0
    }

    /// Is the set empty?
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of servers in the set.
    pub fn len(self) -> u32 {
        self.0.count_ones()
    }

    /// The member indices, ascending.
    pub fn iter(self) -> impl Iterator<Item = u32> {
        (0..64).filter(move |s| self.contains(*s))
    }
}

impl FromIterator<u32> for DownSet {
    fn from_iter<I: IntoIterator<Item = u32>>(iter: I) -> DownSet {
        let mut set = DownSet::EMPTY;
        for s in iter {
            set.add(s);
        }
        set
    }
}

impl fmt::Display for DownSet {
    /// Comma-separated ascending indices (`"1,3"`); empty set prints
    /// nothing.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for s in self.iter() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
            first = false;
        }
        Ok(())
    }
}

/// One step of a chaos schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Append one block of `size` bytes, each byte `fill`.
    Append {
        /// Block length in bytes.
        size: usize,
        /// Fill byte (verification recomputes the expected contents).
        fill: u8,
    },
    /// Flush the log; on success every pending append becomes *acked*.
    Flush,
    /// Write a service checkpoint (implies a flush; creates a recovery
    /// anchor and makes older stripes cleanable).
    Checkpoint,
    /// Append a deletion record for the oldest acked block.
    DeleteOldest,
    /// Sever the next connection to `server` before the request lands.
    ConnReset {
        /// Target server index.
        server: u32,
    },
    /// Delay the next call to `server` by `micros` microseconds.
    Delay {
        /// Target server index.
        server: u32,
        /// One-shot delay in microseconds.
        micros: u64,
    },
    /// Truncate the next reply from `server`: the request is processed
    /// but the ack is lost (the duplicate-store path).
    TruncateNext {
        /// Target server index.
        server: u32,
    },
    /// Hold `server`'s next store for `millis` milliseconds server-side —
    /// the journal committer wedged mid-commit. Stores queued behind it
    /// (group commit batches them) must land late, not lost.
    ServerStall {
        /// Target server index.
        server: u32,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Take `server` down (refuses connections; TCP also closes the
    /// listening socket).
    KillServer {
        /// Target server index.
        server: u32,
    },
    /// Bring `server` back (TCP respawns on a fresh port).
    RestartServer {
        /// Target server index.
        server: u32,
    },
    /// `server` starts rejecting stores with `OutOfSpace`.
    DiskFull {
        /// Target server index.
        server: u32,
    },
    /// `server` accepts stores again.
    DiskFree {
        /// Target server index.
        server: u32,
    },
    /// Run one cleaner pass (up to 4 stripes), then verify the model.
    CleanPass,
    /// Settle the cluster: clear transient faults, flush, check that
    /// recovery reaches the log head, and verify every acked block —
    /// optionally once more with up to `m` servers held down
    /// simultaneously to force multi-erasure decoding.
    Quiesce {
        /// Servers to hold down during a second verification pass
        /// (empty = no held-down pass).
        verify_down: DownSet,
    },
    /// Drop the client (log + cleaner) *without* flushing, run crash
    /// recovery, and verify every acked block through the recovered log.
    CrashRecover,
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChaosEvent::Append { size, fill } => write!(f, "append size={size} fill={fill:02x}"),
            ChaosEvent::Flush => write!(f, "flush"),
            ChaosEvent::Checkpoint => write!(f, "checkpoint"),
            ChaosEvent::DeleteOldest => write!(f, "delete-oldest"),
            ChaosEvent::ConnReset { server } => write!(f, "conn-reset server={server}"),
            ChaosEvent::Delay { server, micros } => {
                write!(f, "delay server={server} micros={micros}")
            }
            ChaosEvent::TruncateNext { server } => write!(f, "truncate server={server}"),
            ChaosEvent::ServerStall { server, millis } => {
                write!(f, "server-stall server={server} millis={millis}")
            }
            ChaosEvent::KillServer { server } => write!(f, "kill server={server}"),
            ChaosEvent::RestartServer { server } => write!(f, "restart server={server}"),
            ChaosEvent::DiskFull { server } => write!(f, "disk-full server={server}"),
            ChaosEvent::DiskFree { server } => write!(f, "disk-free server={server}"),
            ChaosEvent::CleanPass => write!(f, "clean-pass"),
            ChaosEvent::Quiesce { verify_down } if verify_down.is_empty() => write!(f, "quiesce"),
            ChaosEvent::Quiesce { verify_down } => write!(f, "quiesce verify-down={verify_down}"),
            ChaosEvent::CrashRecover => write!(f, "crash-recover"),
        }
    }
}

/// A fully expanded, replayable fault schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// Cluster width the schedule was generated for.
    pub servers: u32,
    /// Parity members per stripe (`m`) — the impairment budget the
    /// schedule was generated under.
    pub parity: u32,
    /// Concurrent client logs the schedule is dealt across.
    pub clients: u32,
    /// The event list, in execution order.
    pub events: Vec<ChaosEvent>,
}

/// Generator-side impairment tracking: who is down / full right now.
/// Down servers and the disk-full server share the `m` impairment slots.
#[derive(Default)]
struct Impairment {
    down: Vec<u32>,
    full: Option<u32>,
}

impl Impairment {
    /// Occupied impairment slots.
    fn slots(&self) -> u32 {
        self.down.len() as u32 + self.full.is_some() as u32
    }

    /// Is `server` currently down or disk-full?
    fn is_impaired(&self, server: u32) -> bool {
        self.full == Some(server) || self.down.contains(&server)
    }

    /// Picks a random currently-healthy server. Terminates because the
    /// impairment budget (`m < servers`) always leaves a healthy one.
    fn pick_healthy(&self, rng: &mut StdRng, servers: u32) -> u32 {
        loop {
            let s = rng.gen_range(0..servers);
            if !self.is_impaired(s) {
                return s;
            }
        }
    }

    /// Emits the restore events (plus the flush barrier that closes any
    /// stripes written during the impairment window) needed to return the
    /// cluster to full health.
    fn restore(&mut self, events: &mut Vec<ChaosEvent>) {
        let mut restored = false;
        for s in self.down.drain(..) {
            events.push(ChaosEvent::RestartServer { server: s });
            restored = true;
        }
        if let Some(s) = self.full.take() {
            events.push(ChaosEvent::DiskFree { server: s });
            restored = true;
        }
        if restored {
            events.push(ChaosEvent::Flush);
        }
    }
}

impl Schedule {
    /// Expands `seed` into a schedule. Pure function of `(seed, cfg)`:
    /// no wall clock, no global RNG.
    pub fn generate(seed: u64, cfg: &ScheduleConfig) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(cfg.events + 16);
        let mut imp = Impairment::default();

        for _ in 0..cfg.events {
            let roll = rng.gen_range(0u32..100);
            match roll {
                // Ordinary work: the majority of events, so faults always
                // have traffic to bite.
                0..=31 => events.push(ChaosEvent::Append {
                    size: rng.gen_range(64usize..1800),
                    fill: rng.gen::<u8>(),
                }),
                32..=43 => events.push(ChaosEvent::Flush),
                44..=49 => {
                    imp.restore(&mut events);
                    events.push(ChaosEvent::Checkpoint);
                }
                50..=55 => events.push(ChaosEvent::DeleteOldest),
                // Transient wire faults: safe at any time (retries absorb
                // them; unconsumed ones are cleared at quiesce points).
                56..=62 => events.push(ChaosEvent::ConnReset {
                    server: rng.gen_range(0..cfg.servers),
                }),
                63..=65 => events.push(ChaosEvent::Delay {
                    server: rng.gen_range(0..cfg.servers),
                    micros: rng.gen_range(500u64..15_000),
                }),
                66..=67 => events.push(ChaosEvent::ServerStall {
                    server: rng.gen_range(0..cfg.servers),
                    millis: rng.gen_range(1u64..40),
                }),
                68..=73 => events.push(ChaosEvent::TruncateNext {
                    server: rng.gen_range(0..cfg.servers),
                }),
                // Server impairments: at most `m` at a time (down servers
                // and the disk-full server share the budget), every window
                // ended by a restore + flush barrier so no stripe ever
                // sees more than `m` failed members.
                74..=81 => {
                    if imp.slots() < cfg.parity {
                        let s = imp.pick_healthy(&mut rng, cfg.servers);
                        imp.down.push(s);
                        events.push(ChaosEvent::KillServer { server: s });
                    } else if let Some(s) = imp.down.pop() {
                        events.push(ChaosEvent::RestartServer { server: s });
                        events.push(ChaosEvent::Flush);
                    }
                }
                82..=87 => {
                    if let Some(s) = imp.full.take() {
                        events.push(ChaosEvent::DiskFree { server: s });
                        events.push(ChaosEvent::Flush);
                    } else if imp.slots() < cfg.parity {
                        let s = imp.pick_healthy(&mut rng, cfg.servers);
                        imp.full = Some(s);
                        events.push(ChaosEvent::DiskFull { server: s });
                    }
                }
                // Whole-cluster checks: always on a restored cluster.
                88..=91 => {
                    imp.restore(&mut events);
                    events.push(ChaosEvent::CleanPass);
                }
                92..=95 => {
                    imp.restore(&mut events);
                    let mut verify_down = DownSet::EMPTY;
                    if rng.gen_bool(0.5) {
                        let count = rng.gen_range(1..=cfg.parity);
                        while verify_down.len() < count {
                            verify_down.add(rng.gen_range(0..cfg.servers));
                        }
                    }
                    events.push(ChaosEvent::Quiesce { verify_down });
                }
                _ => {
                    imp.restore(&mut events);
                    events.push(ChaosEvent::CrashRecover);
                }
            }
        }

        // Verification tail: every schedule ends with a settled check, a
        // crash/recover cycle, and a decode-forcing check with the full
        // impairment budget (`m` distinct servers) held down at once.
        imp.restore(&mut events);
        events.push(ChaosEvent::Quiesce {
            verify_down: DownSet::EMPTY,
        });
        events.push(ChaosEvent::CrashRecover);
        let mut tail_down = DownSet::EMPTY;
        while tail_down.len() < cfg.parity {
            tail_down.add(rng.gen_range(0..cfg.servers));
        }
        events.push(ChaosEvent::Quiesce {
            verify_down: tail_down,
        });

        Schedule {
            seed,
            servers: cfg.servers,
            parity: cfg.parity,
            clients: cfg.clients,
            events,
        }
    }

    /// FNV-1a 64 over the canonical text form (seed, shape, every event).
    pub fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |line: &str| {
            for b in line.bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h = (h ^ b'\n' as u64).wrapping_mul(PRIME);
        };
        eat(&format!(
            "seed={} servers={} parity={} clients={}",
            self.seed, self.servers, self.parity, self.clients
        ));
        for e in &self.events {
            eat(&e.to_string());
        }
        h
    }

    /// The canonical text form: a header line plus one numbered line per
    /// event. Suitable for CI artifacts and eyeballing failing seeds.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "# seed={} servers={} parity={} clients={} events={} hash={:#018x}\n",
            self.seed,
            self.servers,
            self.parity,
            self.clients,
            self.events.len(),
            self.hash()
        );
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{i:4}  {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_and_hash() {
        let cfg = ScheduleConfig::new(4, 64);
        let a = Schedule::generate(42, &cfg);
        let b = Schedule::generate(42, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.hash(), b.hash());
        let c = Schedule::generate(43, &cfg);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn at_most_m_impaired_servers_with_flush_barriers() {
        for (servers, parity) in [(4u32, 1u32), (6, 2), (11, 3)] {
            let cfg = ScheduleConfig::with_parity(servers, 256, parity);
            for seed in 0..64 {
                let s = Schedule::generate(seed, &cfg);
                let mut down: Vec<u32> = Vec::new();
                let mut full: Option<u32> = None;
                // A new impairment may only begin after the previous
                // restore was sealed by a flush barrier.
                let mut flushed_since_restore = true;
                for (i, e) in s.events.iter().enumerate() {
                    let slots = down.len() as u32 + full.is_some() as u32;
                    match *e {
                        ChaosEvent::KillServer { server } => {
                            assert!(slots < parity, "seed {seed} event {i}: budget");
                            assert!(
                                !down.contains(&server) && full != Some(server),
                                "seed {seed} event {i}: double impairment"
                            );
                            assert!(flushed_since_restore, "seed {seed} event {i}: no barrier");
                            down.push(server);
                        }
                        ChaosEvent::RestartServer { server } => {
                            let pos = down.iter().position(|&d| d == server);
                            assert!(pos.is_some(), "seed {seed} event {i}: restart of live");
                            down.remove(pos.unwrap());
                            flushed_since_restore = false;
                        }
                        ChaosEvent::DiskFull { server } => {
                            assert!(slots < parity, "seed {seed} event {i}: budget");
                            assert!(
                                !down.contains(&server) && full.is_none(),
                                "seed {seed} event {i}: double impairment"
                            );
                            assert!(flushed_since_restore, "seed {seed} event {i}: no barrier");
                            full = Some(server);
                        }
                        ChaosEvent::DiskFree { server } => {
                            assert_eq!(full, Some(server), "seed {seed} event {i}");
                            full = None;
                            flushed_since_restore = false;
                        }
                        ChaosEvent::Flush | ChaosEvent::Checkpoint => flushed_since_restore = true,
                        ChaosEvent::CleanPass | ChaosEvent::CrashRecover => {
                            assert!(
                                down.is_empty() && full.is_none(),
                                "seed {seed} event {i}: cluster check while impaired"
                            );
                        }
                        ChaosEvent::Quiesce { verify_down } => {
                            assert!(
                                down.is_empty() && full.is_none(),
                                "seed {seed} event {i}: cluster check while impaired"
                            );
                            assert!(
                                verify_down.len() <= parity,
                                "seed {seed} event {i}: verify-down beyond budget"
                            );
                            for s in verify_down.iter() {
                                assert!(s < servers, "seed {seed} event {i}: bad server");
                            }
                        }
                        _ => {}
                    }
                }
                assert!(
                    down.is_empty() && full.is_none(),
                    "seed {seed}: unrestored tail"
                );
                // Every schedule ends with the verification tail: a
                // crash/recover cycle then a quiesce holding the full
                // `m`-server budget down.
                let n = s.events.len();
                match s.events[n - 1] {
                    ChaosEvent::Quiesce { verify_down } => {
                        assert_eq!(verify_down.len(), parity, "seed {seed}: tail budget")
                    }
                    _ => panic!("seed {seed}: tail is not a quiesce"),
                }
                assert!(matches!(s.events[n - 2], ChaosEvent::CrashRecover));
            }
        }
    }

    #[test]
    fn down_set_tracks_members_and_prints_comma_lists() {
        let mut set = DownSet::EMPTY;
        assert!(set.is_empty());
        assert_eq!(set.to_string(), "");
        set.add(3);
        set.add(1);
        set.add(3);
        assert_eq!(set.len(), 2);
        assert!(set.contains(1) && set.contains(3) && !set.contains(2));
        assert_eq!(set.to_string(), "1,3");
        assert_eq!(set.iter().collect::<Vec<_>>(), vec![1, 3]);
        let from: DownSet = [5u32, 0, 5].into_iter().collect();
        assert_eq!(from.to_string(), "0,5");
        assert_eq!(
            ChaosEvent::Quiesce { verify_down: from }.to_string(),
            "quiesce verify-down=0,5"
        );
        assert_eq!(
            ChaosEvent::Quiesce {
                verify_down: DownSet::EMPTY
            }
            .to_string(),
            "quiesce"
        );
    }

    #[test]
    fn parity_changes_the_schedule_hash() {
        let a = Schedule::generate(9, &ScheduleConfig::with_parity(6, 32, 1));
        let b = Schedule::generate(9, &ScheduleConfig::with_parity(6, 32, 2));
        assert_ne!(a.hash(), b.hash());
        assert_eq!(a.parity, 1);
        assert_eq!(b.parity, 2);
    }

    #[test]
    fn clients_change_the_hash_but_not_the_events() {
        let cfg = ScheduleConfig::new(4, 32);
        let a = Schedule::generate(5, &cfg);
        let b = Schedule::generate(5, &cfg.clients(8));
        assert_eq!(a.events, b.events, "client count deals work, not events");
        assert_ne!(a.hash(), b.hash(), "clients must be covered by the hash");
        assert!(b.dump().contains("clients=8"));
    }

    #[test]
    fn dump_roundtrips_the_event_count() {
        let s = Schedule::generate(7, &ScheduleConfig::new(4, 32));
        let dump = s.dump();
        // Header + one line per event.
        assert_eq!(dump.lines().count(), s.events.len() + 1);
        assert!(dump.starts_with("# seed=7 "));
    }
}
