//! Seeded fault-schedule generation.
//!
//! A schedule is a flat list of [`ChaosEvent`]s expanded from a 64-bit
//! seed by a deterministic RNG. The generator enforces one structural
//! rule — **at most one impaired server (down or disk-full) at any
//! time, with a flush barrier between impairment windows** — which is
//! exactly the paper's single-parity fault model: every stripe's write
//! window sees at most one failed member, so every acked stripe is
//! either complete or reconstructible.
//!
//! Schedules canonicalize to text (one event per line) and hash with
//! FNV-1a 64; the hash covers the seed, the cluster shape, and every
//! event, so "same seed ⇒ same schedule" is checkable across transports
//! and across machines.

use std::fmt;

use rand::{rngs::StdRng, Rng, SeedableRng};

/// Shape parameters for schedule generation.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleConfig {
    /// Number of storage servers (= stripe width). At least 3, so the
    /// cluster survives one held-down server during verification.
    pub servers: u32,
    /// Number of body events to generate (restores and the verification
    /// tail are appended on top).
    pub events: usize,
}

impl ScheduleConfig {
    /// Creates a config; panics if `servers < 3` or `events == 0`.
    pub fn new(servers: u32, events: usize) -> ScheduleConfig {
        assert!(servers >= 3, "chaos needs >= 3 servers for reconstruction");
        assert!(events > 0, "chaos needs at least one event");
        ScheduleConfig { servers, events }
    }
}

impl Default for ScheduleConfig {
    fn default() -> Self {
        ScheduleConfig::new(4, 64)
    }
}

/// One step of a chaos schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosEvent {
    /// Append one block of `size` bytes, each byte `fill`.
    Append {
        /// Block length in bytes.
        size: usize,
        /// Fill byte (verification recomputes the expected contents).
        fill: u8,
    },
    /// Flush the log; on success every pending append becomes *acked*.
    Flush,
    /// Write a service checkpoint (implies a flush; creates a recovery
    /// anchor and makes older stripes cleanable).
    Checkpoint,
    /// Append a deletion record for the oldest acked block.
    DeleteOldest,
    /// Sever the next connection to `server` before the request lands.
    ConnReset {
        /// Target server index.
        server: u32,
    },
    /// Delay the next call to `server` by `micros` microseconds.
    Delay {
        /// Target server index.
        server: u32,
        /// One-shot delay in microseconds.
        micros: u64,
    },
    /// Truncate the next reply from `server`: the request is processed
    /// but the ack is lost (the duplicate-store path).
    TruncateNext {
        /// Target server index.
        server: u32,
    },
    /// Hold `server`'s next store for `millis` milliseconds server-side —
    /// the journal committer wedged mid-commit. Stores queued behind it
    /// (group commit batches them) must land late, not lost.
    ServerStall {
        /// Target server index.
        server: u32,
        /// Stall duration in milliseconds.
        millis: u64,
    },
    /// Take `server` down (refuses connections; TCP also closes the
    /// listening socket).
    KillServer {
        /// Target server index.
        server: u32,
    },
    /// Bring `server` back (TCP respawns on a fresh port).
    RestartServer {
        /// Target server index.
        server: u32,
    },
    /// `server` starts rejecting stores with `OutOfSpace`.
    DiskFull {
        /// Target server index.
        server: u32,
    },
    /// `server` accepts stores again.
    DiskFree {
        /// Target server index.
        server: u32,
    },
    /// Run one cleaner pass (up to 4 stripes), then verify the model.
    CleanPass,
    /// Settle the cluster: clear transient faults, flush, check that
    /// recovery reaches the log head, and verify every acked block —
    /// optionally once more with one server held down to force parity
    /// reconstruction.
    Quiesce {
        /// Server to hold down during a second verification pass.
        verify_down: Option<u32>,
    },
    /// Drop the client (log + cleaner) *without* flushing, run crash
    /// recovery, and verify every acked block through the recovered log.
    CrashRecover,
}

impl fmt::Display for ChaosEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ChaosEvent::Append { size, fill } => write!(f, "append size={size} fill={fill:02x}"),
            ChaosEvent::Flush => write!(f, "flush"),
            ChaosEvent::Checkpoint => write!(f, "checkpoint"),
            ChaosEvent::DeleteOldest => write!(f, "delete-oldest"),
            ChaosEvent::ConnReset { server } => write!(f, "conn-reset server={server}"),
            ChaosEvent::Delay { server, micros } => {
                write!(f, "delay server={server} micros={micros}")
            }
            ChaosEvent::TruncateNext { server } => write!(f, "truncate server={server}"),
            ChaosEvent::ServerStall { server, millis } => {
                write!(f, "server-stall server={server} millis={millis}")
            }
            ChaosEvent::KillServer { server } => write!(f, "kill server={server}"),
            ChaosEvent::RestartServer { server } => write!(f, "restart server={server}"),
            ChaosEvent::DiskFull { server } => write!(f, "disk-full server={server}"),
            ChaosEvent::DiskFree { server } => write!(f, "disk-free server={server}"),
            ChaosEvent::CleanPass => write!(f, "clean-pass"),
            ChaosEvent::Quiesce { verify_down: None } => write!(f, "quiesce"),
            ChaosEvent::Quiesce {
                verify_down: Some(s),
            } => write!(f, "quiesce verify-down={s}"),
            ChaosEvent::CrashRecover => write!(f, "crash-recover"),
        }
    }
}

/// A fully expanded, replayable fault schedule.
#[derive(Debug, Clone)]
pub struct Schedule {
    /// The seed the schedule was generated from.
    pub seed: u64,
    /// Cluster width the schedule was generated for.
    pub servers: u32,
    /// The event list, in execution order.
    pub events: Vec<ChaosEvent>,
}

/// Generator-side impairment tracking: who is down / full right now.
#[derive(Default)]
struct Impairment {
    down: Option<u32>,
    full: Option<u32>,
}

impl Impairment {
    fn any(&self) -> bool {
        self.down.is_some() || self.full.is_some()
    }

    /// Emits the restore events (plus the flush barrier that closes any
    /// stripes written during the impairment window) needed to return the
    /// cluster to full health.
    fn restore(&mut self, events: &mut Vec<ChaosEvent>) {
        let mut restored = false;
        if let Some(s) = self.down.take() {
            events.push(ChaosEvent::RestartServer { server: s });
            restored = true;
        }
        if let Some(s) = self.full.take() {
            events.push(ChaosEvent::DiskFree { server: s });
            restored = true;
        }
        if restored {
            events.push(ChaosEvent::Flush);
        }
    }
}

impl Schedule {
    /// Expands `seed` into a schedule. Pure function of `(seed, cfg)`:
    /// no wall clock, no global RNG.
    pub fn generate(seed: u64, cfg: &ScheduleConfig) -> Schedule {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::with_capacity(cfg.events + 16);
        let mut imp = Impairment::default();

        for _ in 0..cfg.events {
            let roll = rng.gen_range(0u32..100);
            match roll {
                // Ordinary work: the majority of events, so faults always
                // have traffic to bite.
                0..=31 => events.push(ChaosEvent::Append {
                    size: rng.gen_range(64usize..1800),
                    fill: rng.gen::<u8>(),
                }),
                32..=43 => events.push(ChaosEvent::Flush),
                44..=49 => {
                    imp.restore(&mut events);
                    events.push(ChaosEvent::Checkpoint);
                }
                50..=55 => events.push(ChaosEvent::DeleteOldest),
                // Transient wire faults: safe at any time (retries absorb
                // them; unconsumed ones are cleared at quiesce points).
                56..=62 => events.push(ChaosEvent::ConnReset {
                    server: rng.gen_range(0..cfg.servers),
                }),
                63..=65 => events.push(ChaosEvent::Delay {
                    server: rng.gen_range(0..cfg.servers),
                    micros: rng.gen_range(500u64..15_000),
                }),
                66..=67 => events.push(ChaosEvent::ServerStall {
                    server: rng.gen_range(0..cfg.servers),
                    millis: rng.gen_range(1u64..40),
                }),
                68..=73 => events.push(ChaosEvent::TruncateNext {
                    server: rng.gen_range(0..cfg.servers),
                }),
                // Server impairments: one at a time, ended by a restore +
                // flush barrier so no stripe ever sees two failed members.
                74..=81 => {
                    if let Some(s) = imp.down.take() {
                        events.push(ChaosEvent::RestartServer { server: s });
                        events.push(ChaosEvent::Flush);
                    } else if !imp.any() {
                        let s = rng.gen_range(0..cfg.servers);
                        imp.down = Some(s);
                        events.push(ChaosEvent::KillServer { server: s });
                    }
                }
                82..=87 => {
                    if let Some(s) = imp.full.take() {
                        events.push(ChaosEvent::DiskFree { server: s });
                        events.push(ChaosEvent::Flush);
                    } else if !imp.any() {
                        let s = rng.gen_range(0..cfg.servers);
                        imp.full = Some(s);
                        events.push(ChaosEvent::DiskFull { server: s });
                    }
                }
                // Whole-cluster checks: always on a restored cluster.
                88..=91 => {
                    imp.restore(&mut events);
                    events.push(ChaosEvent::CleanPass);
                }
                92..=95 => {
                    imp.restore(&mut events);
                    let verify_down = rng.gen_bool(0.5).then(|| rng.gen_range(0..cfg.servers));
                    events.push(ChaosEvent::Quiesce { verify_down });
                }
                _ => {
                    imp.restore(&mut events);
                    events.push(ChaosEvent::CrashRecover);
                }
            }
        }

        // Verification tail: every schedule ends with a settled check, a
        // crash/recover cycle, and a reconstruction-forcing check.
        imp.restore(&mut events);
        events.push(ChaosEvent::Quiesce { verify_down: None });
        events.push(ChaosEvent::CrashRecover);
        events.push(ChaosEvent::Quiesce {
            verify_down: Some(rng.gen_range(0..cfg.servers)),
        });

        Schedule {
            seed,
            servers: cfg.servers,
            events,
        }
    }

    /// FNV-1a 64 over the canonical text form (seed, shape, every event).
    pub fn hash(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut h = OFFSET;
        let mut eat = |line: &str| {
            for b in line.bytes() {
                h = (h ^ b as u64).wrapping_mul(PRIME);
            }
            h = (h ^ b'\n' as u64).wrapping_mul(PRIME);
        };
        eat(&format!("seed={} servers={}", self.seed, self.servers));
        for e in &self.events {
            eat(&e.to_string());
        }
        h
    }

    /// The canonical text form: a header line plus one numbered line per
    /// event. Suitable for CI artifacts and eyeballing failing seeds.
    pub fn dump(&self) -> String {
        use std::fmt::Write;
        let mut out = format!(
            "# seed={} servers={} events={} hash={:#018x}\n",
            self.seed,
            self.servers,
            self.events.len(),
            self.hash()
        );
        for (i, e) in self.events.iter().enumerate() {
            let _ = writeln!(out, "{i:4}  {e}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_and_hash() {
        let cfg = ScheduleConfig::new(4, 64);
        let a = Schedule::generate(42, &cfg);
        let b = Schedule::generate(42, &cfg);
        assert_eq!(a.events, b.events);
        assert_eq!(a.hash(), b.hash());
        let c = Schedule::generate(43, &cfg);
        assert_ne!(a.hash(), c.hash());
    }

    #[test]
    fn at_most_one_impaired_server_with_flush_barriers() {
        let cfg = ScheduleConfig::new(4, 256);
        for seed in 0..64 {
            let s = Schedule::generate(seed, &cfg);
            let mut down: Option<u32> = None;
            let mut full: Option<u32> = None;
            // A new impairment may only begin after the previous window
            // was closed by a flush.
            let mut flushed_since_restore = true;
            for (i, e) in s.events.iter().enumerate() {
                match *e {
                    ChaosEvent::KillServer { server } => {
                        assert!(down.is_none() && full.is_none(), "seed {seed} event {i}");
                        assert!(flushed_since_restore, "seed {seed} event {i}: no barrier");
                        down = Some(server);
                    }
                    ChaosEvent::RestartServer { server } => {
                        assert_eq!(down, Some(server), "seed {seed} event {i}");
                        down = None;
                        flushed_since_restore = false;
                    }
                    ChaosEvent::DiskFull { server } => {
                        assert!(down.is_none() && full.is_none(), "seed {seed} event {i}");
                        assert!(flushed_since_restore, "seed {seed} event {i}: no barrier");
                        full = Some(server);
                    }
                    ChaosEvent::DiskFree { server } => {
                        assert_eq!(full, Some(server), "seed {seed} event {i}");
                        full = None;
                        flushed_since_restore = false;
                    }
                    ChaosEvent::Flush | ChaosEvent::Checkpoint => flushed_since_restore = true,
                    ChaosEvent::CleanPass
                    | ChaosEvent::Quiesce { .. }
                    | ChaosEvent::CrashRecover => {
                        assert!(
                            down.is_none() && full.is_none(),
                            "seed {seed} event {i}: cluster check while impaired"
                        );
                    }
                    _ => {}
                }
            }
            assert!(
                down.is_none() && full.is_none(),
                "seed {seed}: unrestored tail"
            );
            // Every schedule ends with the verification tail.
            let n = s.events.len();
            assert!(matches!(
                s.events[n - 1],
                ChaosEvent::Quiesce {
                    verify_down: Some(_)
                }
            ));
            assert!(matches!(s.events[n - 2], ChaosEvent::CrashRecover));
        }
    }

    #[test]
    fn dump_roundtrips_the_event_count() {
        let s = Schedule::generate(7, &ScheduleConfig::new(4, 32));
        let dump = s.dump();
        // Header + one line per event.
        assert_eq!(dump.lines().count(), s.events.len() + 1);
        assert!(dump.starts_with("# seed=7 "));
    }
}
