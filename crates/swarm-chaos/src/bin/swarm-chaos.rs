//! Seeded chaos runner CLI.
//!
//! ```text
//! swarm-chaos --seed 42                      # one seed, both transports
//! swarm-chaos --seeds 0..16 --transport mem  # a CI shard
//! swarm-chaos --seeds 0..16 --store file     # durable FileStore backing
//! swarm-chaos --seeds 0..8 --geometry 3+1,4+2,8+3   # RS geometry sweep
//! swarm-chaos --seed 42 --dump               # print the schedule
//! swarm-chaos --seeds 0..256 --dump-failures target/chaos
//! ```
//!
//! Exit status is 0 iff every seed passed on every requested transport.
//! Each failing seed prints its invariant violations and a one-line
//! replay command carrying the full option set (transport, store,
//! geometry, write/read windows).

use std::process::ExitCode;

use swarm_chaos::{RunReport, Runner, Schedule, ScheduleConfig, StoreKind, TransportKind};
use swarm_types::Geometry;

struct Args {
    seeds: Vec<u64>,
    transports: Vec<TransportKind>,
    stores: Vec<StoreKind>,
    windows: Vec<usize>,
    read_windows: Vec<usize>,
    events: usize,
    servers: u32,
    clients: u32,
    geometries: Option<Vec<Geometry>>,
    dump: bool,
    dump_failures: Option<String>,
}

const USAGE: &str = "usage: swarm-chaos [--seed N | --seeds A..B] \
[--transport mem|tcp|tcp-blocking|tcp-epoll|all] [--store mem|file|both] \
[--write-window N|both] [--read-window N|both] [--events N] \
[--servers N] [--clients N] [--geometry K+M[,K+M...]] [--dump] \
[--dump-failures DIR]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seeds: vec![0],
        transports: TransportKind::all(),
        stores: vec![StoreKind::Mem],
        windows: vec![swarm_log::DEFAULT_WRITE_WINDOW],
        read_windows: vec![swarm_log::DEFAULT_READ_WINDOW],
        events: 64,
        servers: 4,
        clients: 1,
        geometries: None,
        dump: false,
        dump_failures: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .ok_or_else(|| format!("{name} needs a value\n{USAGE}"))
        };
        match flag.as_str() {
            "--seed" => {
                let v = value("--seed")?;
                args.seeds = vec![v.parse().map_err(|e| format!("--seed {v}: {e}"))?];
            }
            "--seeds" => {
                let v = value("--seeds")?;
                let (a, b) = v
                    .split_once("..")
                    .ok_or_else(|| format!("--seeds wants A..B, got {v}"))?;
                let a: u64 = a.parse().map_err(|e| format!("--seeds {v}: {e}"))?;
                let b: u64 = b.parse().map_err(|e| format!("--seeds {v}: {e}"))?;
                if a >= b {
                    return Err(format!("--seeds {v}: empty range"));
                }
                args.seeds = (a..b).collect();
            }
            "--transport" => {
                let v = value("--transport")?;
                args.transports = match v.as_str() {
                    "both" | "all" => TransportKind::all(),
                    one => vec![one.parse()?],
                };
            }
            "--store" => {
                let v = value("--store")?;
                args.stores = match v.as_str() {
                    "both" => vec![StoreKind::Mem, StoreKind::File],
                    one => vec![one.parse()?],
                };
            }
            "--write-window" => {
                let v = value("--write-window")?;
                args.windows = match v.as_str() {
                    // Serial (paper-faithful) and windowed, the matrix CI runs.
                    "both" => vec![1, swarm_log::DEFAULT_WRITE_WINDOW],
                    one => {
                        let w: usize = one
                            .parse()
                            .map_err(|e| format!("--write-window {v}: {e}"))?;
                        if w == 0 {
                            return Err("--write-window must be >= 1".into());
                        }
                        vec![w]
                    }
                };
            }
            "--read-window" => {
                let v = value("--read-window")?;
                args.read_windows = match v.as_str() {
                    // Serial reads and the windowed default, as CI runs.
                    "both" => vec![1, swarm_log::DEFAULT_READ_WINDOW],
                    one => {
                        let w: usize =
                            one.parse().map_err(|e| format!("--read-window {v}: {e}"))?;
                        if w == 0 {
                            return Err("--read-window must be >= 1".into());
                        }
                        vec![w]
                    }
                };
            }
            "--events" => {
                let v = value("--events")?;
                args.events = v.parse().map_err(|e| format!("--events {v}: {e}"))?;
            }
            "--servers" => {
                let v = value("--servers")?;
                args.servers = v.parse().map_err(|e| format!("--servers {v}: {e}"))?;
            }
            "--clients" => {
                let v = value("--clients")?;
                args.clients = v.parse().map_err(|e| format!("--clients {v}: {e}"))?;
                if args.clients == 0 {
                    return Err("--clients must be >= 1".into());
                }
            }
            "--geometry" => {
                let v = value("--geometry")?;
                let mut list = Vec::new();
                for g in v.split(',') {
                    list.push(
                        g.parse::<Geometry>()
                            .map_err(|e| format!("--geometry {g}: {e}"))?,
                    );
                }
                args.geometries = Some(list);
            }
            "--dump" => args.dump = true,
            "--dump-failures" => args.dump_failures = Some(value("--dump-failures")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag {other}\n{USAGE}")),
        }
    }
    Ok(args)
}

fn report_line(report: &RunReport, geometry: Geometry) -> String {
    format!(
        "seed {:>6} transport={} store={} geometry={} clients={} window={} rwindow={} \
         hash={:#018x} events={} acked={} reads={} {}",
        report.seed,
        report.transport,
        report.store,
        geometry,
        report.clients,
        report.write_window,
        report.read_window,
        report.hash,
        report.events,
        report.acked_blocks,
        report.verified_reads,
        if report.passed() { "PASS" } else { "FAIL" }
    )
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    // No --geometry means the classic single-XOR-parity cluster of
    // --servers members ((servers-1)+1), matching historical behavior.
    let geometries = match &args.geometries {
        Some(list) => list.clone(),
        None => match Geometry::xor(args.servers as u8) {
            Ok(g) => vec![g],
            Err(e) => {
                eprintln!("--servers {}: {e}", args.servers);
                return ExitCode::from(2);
            }
        },
    };
    let mut failed = 0usize;
    let mut ran = 0usize;

    for &geometry in &geometries {
        let servers = geometry.width() as u32;
        let cfg = ScheduleConfig::with_parity(servers, args.events, geometry.parity() as u32)
            .clients(args.clients);
        for &seed in &args.seeds {
            let schedule = Schedule::generate(seed, &cfg);
            if args.dump {
                print!("{}", schedule.dump());
            }
            let mut hashes = Vec::new();
            for &kind in &args.transports {
                for &store in &args.stores {
                    for &window in &args.windows {
                        for &read_window in &args.read_windows {
                            ran += 1;
                            let report = match Runner::run_with_options(
                                &schedule,
                                kind,
                                store,
                                window,
                                read_window,
                            ) {
                                Ok(r) => r,
                                Err(e) => {
                                    eprintln!(
                                        "seed {seed} transport={kind} store={store} \
                                         geometry={geometry} window={window} \
                                         rwindow={read_window}: setup failed: {e}"
                                    );
                                    failed += 1;
                                    continue;
                                }
                            };
                            println!("{}", report_line(&report, geometry));
                            hashes.push(report.hash);
                            if !report.passed() {
                                failed += 1;
                                for f in &report.failures {
                                    eprintln!("  {f}");
                                }
                                eprintln!(
                                    "  replay: {}",
                                    report.replay_command(args.events, servers)
                                );
                                if let Some(dir) = &args.dump_failures {
                                    let path = format!(
                                        "{dir}/seed-{seed}-{kind}-{store}-g{}p{}-w{window}\
                                         -r{read_window}.schedule",
                                        geometry.data(),
                                        geometry.parity()
                                    );
                                    if std::fs::create_dir_all(dir)
                                        .and_then(|_| {
                                            let mut dump = schedule.dump();
                                            dump.push_str("\n# failures:\n");
                                            for f in &report.failures {
                                                dump.push_str(&format!("# {f}\n"));
                                            }
                                            std::fs::write(&path, dump)
                                        })
                                        .is_ok()
                                    {
                                        eprintln!("  schedule dumped to {path}");
                                    }
                                }
                            }
                        }
                    }
                }
            }
            if hashes.windows(2).any(|w| w[0] != w[1]) {
                eprintln!(
                    "seed {seed} geometry {geometry}: schedule hash differs across transports (bug)"
                );
                failed += 1;
            }
        }
    }

    println!(
        "chaos: {ran} runs, {} passed, {failed} failed",
        ran - failed.min(ran)
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
