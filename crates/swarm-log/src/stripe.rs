//! Stripe planning: which fragment goes where (§2.1.2).
//!
//! A client's log is cut into stripes of a fixed width `w` (`k` data
//! members plus `m` parity members; the paper's shape is `m = 1`). Stripe
//! `s` owns the fragment sequence numbers `[s*w, (s+1)*w)`; consecutive
//! numbering within a stripe is what lets reconstruction find stripe-mates
//! of a lost fragment by probing `fid ± 1` (§2.3.3). Member `i` of stripe
//! `s` is placed on `group[(s + i) mod w]`, so the parity members (always
//! the last `m` fids of the stripe) rotate across the servers stripe by
//! stripe — the paper's load-balancing rule for reconstruction traffic,
//! applied to every parity.
//!
//! Stripes are always *complete*: if the log is flushed mid-stripe, the
//! unfilled data slots are padded with header-only empty fragments so that
//! every stripe has exactly `w` members and the fid arithmetic never
//! breaks. (Empty fragments cost ~64 bytes each and are reclaimed with
//! their stripe by the cleaner.)

use swarm_types::{ClientId, FragmentId, Geometry, Result, ServerId, StripeSeq, SwarmError};

use crate::fragment::FragmentHeader;

/// Maximum stripe width (data + parity).
pub const MAX_WIDTH: usize = swarm_types::MAX_STRIPE_WIDTH;

/// A validated stripe group: the ordered set of servers a client stripes
/// across.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripeGroup {
    servers: Vec<ServerId>,
    parity: u8,
}

impl StripeGroup {
    /// Creates a single-parity (XOR) stripe group from distinct servers —
    /// the paper's configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if fewer than 2 servers are
    /// given ("a stripe is a set of two or more fragments"), more than
    /// [`MAX_WIDTH`], or any duplicates.
    pub fn new(servers: Vec<ServerId>) -> Result<StripeGroup> {
        let geometry = Geometry::xor(servers.len().min(MAX_WIDTH) as u8)?;
        StripeGroup::with_geometry(servers, geometry)
    }

    /// Creates a stripe group with an explicit `k+m` [`Geometry`]; the
    /// group must have exactly `k + m` distinct servers.
    ///
    /// # Errors
    ///
    /// As for [`StripeGroup::new`], plus a width/geometry mismatch.
    pub fn with_geometry(servers: Vec<ServerId>, geometry: Geometry) -> Result<StripeGroup> {
        if servers.len() < 2 {
            return Err(SwarmError::invalid(
                "a stripe group needs at least 2 servers (1 data + 1 parity)",
            ));
        }
        if servers.len() > MAX_WIDTH {
            return Err(SwarmError::invalid(format!(
                "stripe group of {} servers exceeds maximum width {MAX_WIDTH}",
                servers.len()
            )));
        }
        if servers.len() != geometry.width() as usize {
            return Err(SwarmError::invalid(format!(
                "geometry {geometry} wants {} servers, group has {}",
                geometry.width(),
                servers.len()
            )));
        }
        let mut sorted = servers.clone();
        sorted.sort_unstable();
        sorted.dedup();
        if sorted.len() != servers.len() {
            return Err(SwarmError::invalid("stripe group has duplicate servers"));
        }
        Ok(StripeGroup {
            servers,
            parity: geometry.parity(),
        })
    }

    /// Stripe width (number of members, data + parity).
    pub fn width(&self) -> u8 {
        self.servers.len() as u8
    }

    /// Number of data members per stripe (`k`).
    pub fn data_width(&self) -> u8 {
        self.width() - self.parity
    }

    /// Number of parity members per stripe (`m`).
    pub fn parity_count(&self) -> u8 {
        self.parity
    }

    /// The group's stripe shape.
    pub fn geometry(&self) -> Geometry {
        Geometry::new(self.data_width(), self.parity).expect("group was validated")
    }

    /// The member servers in declaration order.
    pub fn servers(&self) -> &[ServerId] {
        &self.servers
    }

    /// Plans stripe `s`: placement and fragment ids for every member.
    pub fn plan(&self, client: ClientId, stripe: StripeSeq) -> StripePlan {
        let w = self.servers.len();
        let s = stripe.raw();
        let rotated: Vec<ServerId> = (0..w)
            .map(|i| self.servers[((s as usize) + i) % w])
            .collect();
        StripePlan {
            client,
            stripe,
            first_seq: s * w as u64,
            servers: rotated,
            parity: self.parity,
        }
    }
}

/// Placement of one stripe's members.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StripePlan {
    /// Log owner.
    pub client: ClientId,
    /// Which stripe this is.
    pub stripe: StripeSeq,
    /// Sequence number of member 0.
    pub first_seq: u64,
    /// Member `i` is stored on `servers[i]` (already rotated).
    pub servers: Vec<ServerId>,
    /// Number of parity members (`m`); the last `m` fids of the stripe.
    pub parity: u8,
}

impl StripePlan {
    /// Stripe width.
    pub fn width(&self) -> u8 {
        self.servers.len() as u8
    }

    /// Index of the *first* parity member (= `k`, the number of data
    /// members). Members `parity_index()..width()` are all parity, in
    /// coding-row order; data members fill the fids below it.
    pub fn parity_index(&self) -> u8 {
        self.width() - self.parity
    }

    /// Number of data members (`k`).
    pub fn data_count(&self) -> u8 {
        self.width() - self.parity
    }

    /// Number of parity members (`m`).
    pub fn parity_count(&self) -> u8 {
        self.parity
    }

    /// Fragment id of member `i`.
    pub fn member_fid(&self, i: u8) -> FragmentId {
        FragmentId::new(self.client, self.first_seq + i as u64)
    }

    /// Server holding member `i`.
    pub fn member_server(&self, i: u8) -> ServerId {
        self.servers[i as usize]
    }

    /// Builds the header template for member `i` (body fields zeroed;
    /// parity flag and length table added later for the parity member).
    pub fn header(&self, i: u8) -> FragmentHeader {
        FragmentHeader {
            flags: 0,
            fid: self.member_fid(i),
            stripe: self.stripe,
            stripe_first_seq: self.first_seq,
            member_count: self.width(),
            my_index: i,
            parity_index: self.parity_index(),
            body_len: 0,
            body_crc: 0,
            group: self.servers.clone(),
            member_lens: vec![],
        }
    }

    /// Which stripe a fragment sequence number belongs to, given width.
    pub fn stripe_of(seq: u64, width: u8) -> StripeSeq {
        StripeSeq::new(seq / width as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(n: u32) -> StripeGroup {
        StripeGroup::new((0..n).map(ServerId::new).collect()).unwrap()
    }

    #[test]
    fn rejects_tiny_groups_and_duplicates() {
        assert!(StripeGroup::new(vec![ServerId::new(0)]).is_err());
        assert!(StripeGroup::new(vec![]).is_err());
        assert!(StripeGroup::new(vec![ServerId::new(1), ServerId::new(1)]).is_err());
        assert!(StripeGroup::new((0..MAX_WIDTH as u32 + 1).map(ServerId::new).collect()).is_err());
    }

    #[test]
    fn parity_rotates_across_stripes() {
        let g = group(4);
        let client = ClientId::new(1);
        let mut parity_servers = Vec::new();
        for s in 0..8 {
            let plan = g.plan(client, StripeSeq::new(s));
            parity_servers.push(plan.member_server(plan.parity_index()));
        }
        // Over `width` consecutive stripes, parity lands on every server.
        let mut seen = parity_servers[..4].to_vec();
        seen.sort_unstable();
        assert_eq!(
            seen,
            vec![
                ServerId::new(0),
                ServerId::new(1),
                ServerId::new(2),
                ServerId::new(3)
            ]
        );
        // And the rotation repeats with period `width`.
        assert_eq!(parity_servers[0], parity_servers[4]);
    }

    #[test]
    fn members_of_a_stripe_land_on_distinct_servers() {
        let g = group(5);
        for s in 0..10 {
            let plan = g.plan(ClientId::new(2), StripeSeq::new(s));
            let mut servers = plan.servers.clone();
            servers.sort_unstable();
            servers.dedup();
            assert_eq!(servers.len(), 5, "stripe {s}");
        }
    }

    #[test]
    fn fids_are_consecutive_within_a_stripe() {
        let g = group(3);
        let plan = g.plan(ClientId::new(1), StripeSeq::new(7));
        assert_eq!(plan.first_seq, 21);
        assert_eq!(plan.member_fid(0).seq(), 21);
        assert_eq!(plan.member_fid(1).seq(), 22);
        assert_eq!(plan.member_fid(2).seq(), 23);
        assert_eq!(StripePlan::stripe_of(22, 3), StripeSeq::new(7));
        assert_eq!(StripePlan::stripe_of(23, 3), StripeSeq::new(7));
        assert_eq!(StripePlan::stripe_of(24, 3), StripeSeq::new(8));
    }

    #[test]
    fn header_template_is_consistent() {
        let g = group(3);
        let plan = g.plan(ClientId::new(1), StripeSeq::new(2));
        for i in 0..3u8 {
            let h = plan.header(i);
            assert_eq!(h.fid, plan.member_fid(i));
            assert_eq!(h.my_index, i);
            assert_eq!(h.member_count, 3);
            assert_eq!(h.parity_index, 2);
            assert_eq!(h.member_server(i), plan.member_server(i));
            assert_eq!(h.member_fid(i), plan.member_fid(i));
        }
    }

    #[test]
    fn geometry_group_places_m_parities() {
        let g = StripeGroup::with_geometry(
            (0..6).map(ServerId::new).collect(),
            Geometry::new(4, 2).unwrap(),
        )
        .unwrap();
        assert_eq!(g.data_width(), 4);
        assert_eq!(g.parity_count(), 2);
        assert_eq!(g.geometry().to_string(), "4+2");
        let plan = g.plan(ClientId::new(1), StripeSeq::new(3));
        assert_eq!(plan.parity_index(), 4);
        assert_eq!(plan.data_count(), 4);
        assert_eq!(plan.parity_count(), 2);
        for i in 0..6u8 {
            assert_eq!(plan.header(i).parity_index, 4);
        }
        // Parity members rotate like every other member: over width
        // consecutive stripes the first parity visits every server.
        let mut seen: Vec<ServerId> = (0..6)
            .map(|s| {
                let p = g.plan(ClientId::new(1), StripeSeq::new(s));
                p.member_server(p.parity_index())
            })
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 6);
        // Width/geometry mismatch is rejected.
        assert!(StripeGroup::with_geometry(
            (0..5).map(ServerId::new).collect(),
            Geometry::new(4, 2).unwrap(),
        )
        .is_err());
    }

    #[test]
    fn minimum_two_server_group_mirrors() {
        let g = group(2);
        assert_eq!(g.data_width(), 1);
        let plan = g.plan(ClientId::new(1), StripeSeq::new(0));
        assert_eq!(plan.width(), 2);
        assert_eq!(plan.parity_index(), 1);
    }
}
