//! Client crash recovery: checkpoint discovery and log rollforward
//! (§2.1.3, §2.3.1).
//!
//! After a client crash, recovery proceeds in stages:
//!
//! 1. **Anchor** — broadcast `LastMarked` to every server; the newest
//!    marked fragment holds the client's most recent checkpoint *and* the
//!    log layer's checkpoint directory (the positions of every service's
//!    newest checkpoint — §2.1.3: "the log layer tracks the most
//!    recently written checkpoint for each service and makes it
//!    available to the service on restart").
//! 2. **Checkpoint discovery** — read the directory from the anchor
//!    fragment and fetch each service's checkpoint directly. (Fallback
//!    for anchors without a directory: walk backward until a checkpoint
//!    has been found for every expected service or the log begins.)
//! 3. **Rollforward** — scan *forward* from the oldest needed checkpoint
//!    to the end of the log, collecting every entry. Missing fragments are
//!    reconstructed from parity; the end of the log is the first fragment
//!    that neither exists nor can be reconstructed.
//! 4. **Torn-tail discard** — if the scan ends mid-stripe (the client
//!    crashed before the stripe's parity shipped), the partial stripe's
//!    entries are discarded and its surviving fragments deleted. This is
//!    the strict durability rule: data is acknowledged by `flush()`,
//!    `flush()` always completes stripes, so anything in an incomplete
//!    stripe was never acknowledged — and keeping it would leave bytes
//!    with no parity protection. (Like a torn journal record: the
//!    servers' atomic stores guarantee entries never tear *within* a
//!    fragment; stripes can still tear *across* fragments.)
//! 5. **Re-anchor** — a discarded stripe's sequence numbers are never
//!    reused, so the discard leaves a permanent hole in the log. Recovery
//!    writes a *marked* fragment (checkpoint directory only) at the new
//!    head so the hole falls below the anchor, where the rollforward scan
//!    skips missing stripes; without it, the *next* recovery would stop
//!    at the hole and lose every acknowledged write beyond it.
//!
//! The caller (usually the service stack) then feeds
//! [`Replay::checkpoint_data`] and [`Replay::records_for`] to each
//! service.

use std::collections::HashMap;
use std::sync::{mpsc, Arc};

use swarm_net::{ConnectionPool, Request, Response, Transport};
use swarm_types::{
    BlockAddr, Bytes, ClientId, FragmentId, Result, ServerId, ServiceId, SwarmError,
};

use crate::entry::Entry;
use crate::log::{Log, LogConfig, LogPosition};
use crate::reader::ReadEngine;
use crate::reconstruct;

struct RecoveryMetrics {
    recoveries: swarm_metrics::Counter,
    fragments_scanned: swarm_metrics::Counter,
    reconstructions: swarm_metrics::Counter,
    torn_tails: swarm_metrics::Counter,
    recover_us: swarm_metrics::Histogram,
}

fn metrics() -> &'static RecoveryMetrics {
    static M: std::sync::OnceLock<RecoveryMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| RecoveryMetrics {
        recoveries: swarm_metrics::counter("recovery.recoveries"),
        fragments_scanned: swarm_metrics::counter("recovery.fragments_scanned"),
        reconstructions: swarm_metrics::counter("recovery.reconstructions"),
        torn_tails: swarm_metrics::counter("recovery.torn_tails"),
        recover_us: swarm_metrics::histogram("recovery.recover_us"),
    })
}

/// One replayed log entry with its position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayEntry {
    /// Where in the log the entry sits.
    pub pos: LogPosition,
    /// The entry itself.
    pub entry: Entry,
    /// For Block entries, the address of the data payload.
    pub block_addr: Option<BlockAddr>,
}

/// Everything recovery learned from the log.
#[derive(Debug, Default)]
pub struct Replay {
    /// Newest checkpoint per service: position and payload.
    pub checkpoints: HashMap<ServiceId, (LogPosition, Vec<u8>)>,
    /// All entries from the scan start to the end of the log, in order.
    pub entries: Vec<ReplayEntry>,
    /// Highest fragment sequence number found.
    pub last_seq: Option<u64>,
    /// Where each scanned fragment lives (seeds the new log's map).
    pub fragment_homes: Vec<(FragmentId, ServerId)>,
}

impl Replay {
    /// The checkpoint payload for `service`, if one was found.
    pub fn checkpoint_data(&self, service: ServiceId) -> Option<&[u8]> {
        self.checkpoints.get(&service).map(|(_, d)| d.as_slice())
    }

    /// Entries belonging to `service` that postdate its checkpoint (all of
    /// its entries if it has no checkpoint), in log order.
    ///
    /// These are exactly the records the paper says a service must replay:
    /// "the log layer provides each service with the records the service
    /// wrote after its most recent checkpoint".
    pub fn records_for(&self, service: ServiceId) -> Vec<&ReplayEntry> {
        let after = self
            .checkpoints
            .get(&service)
            .map(|(pos, _)| *pos)
            .unwrap_or(LogPosition { seq: 0, offset: 0 });
        let has_ckpt = self.checkpoints.contains_key(&service);
        self.entries
            .iter()
            .filter(|e| e.entry.service() == service)
            .filter(|e| if has_ckpt { e.pos > after } else { true })
            .filter(|e| !matches!(e.entry, Entry::Checkpoint { .. }))
            .collect()
    }
}

/// Recovers a client's log after a crash.
///
/// `expected_services` lists the services that will run on this client;
/// their checkpoints are fetched via the anchor fragment's checkpoint
/// directory (services absent from the directory get a full-log scan).
/// Returns a [`Log`] ready for new appends (sequence numbers continue
/// after the recovered log) plus the [`Replay`] data.
///
/// # Errors
///
/// Returns transport errors if no server is reachable, and corruption
/// errors if recovered fragments fail validation.
pub fn recover(
    transport: Arc<dyn Transport>,
    config: LogConfig,
    expected_services: &[ServiceId],
) -> Result<(Log, Replay)> {
    let m = metrics();
    m.recoveries.inc();
    let _span = m.recover_us.span("recovery.recover");
    let client = config.client;
    let width = config.group.width() as u64;
    // One pool for the whole recovery; it is handed to the recovered Log
    // afterwards so new reads start on already-warm connections.
    let pool = Arc::new(ConnectionPool::new(transport.clone(), client));

    let anchor = find_anchor(&pool);
    swarm_metrics::trace!("recovery", "client {} anchor={:?}", client, anchor);
    let mut replay = Replay::default();

    let scan_start = match anchor {
        None => 0,
        Some(anchor_fid) => {
            match read_checkpoint_dir(&pool, anchor_fid)? {
                Some(directory) => {
                    discover_from_directory(&pool, &directory, expected_services, &mut replay)?
                }
                // No directory (e.g. the anchor predates directories, or
                // its record was unreadable): legacy backward walk.
                None => discover_checkpoints(&pool, anchor_fid, expected_services, &mut replay)?,
            }
        }
    };
    let anchor_seq = anchor.map(|a| a.seq()).unwrap_or(0);

    // Rollforward, pipelined: while fragment `seq` is parsed, fragments
    // `seq+1..=seq+K` are already being fetched in the background. The
    // fetches ride the configured read window, so a larger window deepens
    // the recovery read-ahead along with it.
    let engine = ReadEngine::new(Arc::clone(&pool), config.read_window);
    let depth = config.read_ahead.max(config.read_window) as u64;
    let mut ahead = ReadAhead::new(engine, depth);
    let mut seq = scan_start;
    loop {
        let fid = FragmentId::new(client, seq);
        let fetch = ahead.next(seq, client)?;
        let Some(bytes) = fetch.bytes else {
            // Below the anchor a missing fragment is a *cleaned* stripe
            // (the cleaner only reclaims regions older than every
            // checkpoint that matters) — skip it. At or beyond the
            // anchor, a miss is the end of the log or a torn tail.
            if seq < anchor_seq {
                seq += 1;
                continue;
            }
            break;
        };
        if let Some(server) = fetch.home {
            replay.fragment_homes.push((fid, server));
        }
        m.fragments_scanned.inc();
        replay.last_seq = Some(seq);
        let view = crate::fragment::FragmentView::parse(&bytes)?;
        if view.header.member_count as u32 != width as u32 {
            return Err(SwarmError::invalid(format!(
                "log was written with stripe width {}, but recovery was configured \
                 with width {} — recover with the original stripe group",
                view.header.member_count, width
            )));
        }
        if view.header.parity_index != config.group.data_width() {
            return Err(SwarmError::invalid(format!(
                "log was written with geometry {}+{}, but recovery was configured \
                 with {}+{} — recover with the original geometry",
                view.header.data_count(),
                view.header.parity_count(),
                config.group.data_width(),
                config.group.parity_count(),
            )));
        }
        if !view.header.is_parity() {
            for le in view.entries {
                let pos = LogPosition {
                    seq,
                    offset: le.entry_offset,
                };
                if let Entry::Checkpoint { service, data } = &le.entry {
                    // Forward scan may see newer checkpoints than the
                    // backward discovery found (it starts at the oldest).
                    let newer = replay
                        .checkpoints
                        .get(service)
                        .map(|(p, _)| pos > *p)
                        .unwrap_or(true);
                    if newer {
                        replay.checkpoints.insert(*service, (pos, data.clone()));
                    }
                }
                replay.entries.push(ReplayEntry {
                    pos,
                    entry: le.entry,
                    block_addr: le.block_addr,
                });
            }
        }
        seq += 1;
    }

    // The scan concluded "end of log" at `seq`. That conclusion is only
    // sound if enough of the stripe group answered: every stripe spans
    // the whole group, so any k reachable servers are guaranteed to hold
    // members of every surviving stripe. With fewer than k servers
    // answering, a partitioned (or connection-saturated) cluster is
    // indistinguishable from a short log — recovering "empty" here would
    // silently abandon acknowledged writes, so refuse instead.
    let reachable = pool
        .broadcast(&Request::Ping)
        .into_iter()
        .filter(|(_, resp)| matches!(resp, Response::Ok))
        .count();
    if (reachable as u8) < config.group.data_width() {
        return Err(SwarmError::Io(std::io::Error::new(
            std::io::ErrorKind::NotConnected,
            format!(
                "recovery reached only {reachable} of {width} servers (need {} to \
                 prove the log head) — refusing to recover a possibly-truncated log",
                config.group.data_width()
            ),
        )));
    }

    // Torn-tail discard: the scan stopped at `seq`. If that is mid-stripe,
    // the final stripe never completed (no parity): drop its entries and
    // best-effort delete its surviving fragments so they don't linger as
    // unprotected, unaccounted data.
    let torn = !seq.is_multiple_of(width);
    if torn {
        m.torn_tails.inc();
        let torn_first = (seq / width) * width;
        swarm_metrics::trace!("recovery", "discarding torn tail from seq {}", torn_first);
        replay.entries.retain(|e| e.pos.seq < torn_first);
        replay
            .checkpoints
            .retain(|_, (pos, _)| pos.seq < torn_first);
        let torn_homes: Vec<(FragmentId, ServerId)> = replay
            .fragment_homes
            .iter()
            .filter(|(fid, _)| fid.seq() >= torn_first)
            .copied()
            .collect();
        replay
            .fragment_homes
            .retain(|(fid, _)| fid.seq() < torn_first);
        replay.last_seq = torn_first.checked_sub(1);
        for (fid, server) in torn_homes {
            let _ = pool.call(server, &Request::Delete { fid });
        }
    }

    // New appends start one stripe past the last stripe the scan touched
    // (found *or* torn) — never reuse a torn fragment's id even if its
    // best-effort deletion failed on a down server.
    let next_seq = if seq == 0 {
        0
    } else {
        ((seq - 1) / width + 1) * width
    };
    let log = Log::with_engine(transport, config, next_seq, pool)?;
    log.seed_fragment_map(replay.fragment_homes.iter().copied());
    for (service, (pos, _)) in &replay.checkpoints {
        log.seed_checkpoint(*service, *pos);
    }
    if let Some(a) = anchor {
        log.seed_anchor(a.seq());
    }
    // A discarded stripe leaves a permanent hole in the sequence space
    // (its ids are never reused), and the rollforward scan above only
    // skips missing stripes *below* the anchor. Re-anchor past the hole
    // by writing a marked directory fragment at the new head; otherwise
    // a second crash would truncate recovery at the hole, losing every
    // acknowledged write beyond it. Best-effort: if the cluster is too
    // degraded to store a stripe right now, the recovered log still
    // works, and the next successful checkpoint closes the window.
    if torn {
        match log.write_anchor() {
            Ok(pos) => {
                swarm_metrics::trace!("recovery", "re-anchored past torn tail at seq {}", pos.seq);
            }
            Err(e) => {
                swarm_metrics::trace!(
                    "recovery",
                    "re-anchor after torn tail failed (gap stays above anchor): {e}"
                );
            }
        }
    }
    Ok((log, replay))
}

/// One fetched (or missing) fragment from the rollforward pipeline.
struct FragmentFetch {
    /// The server a broadcast locate found the fragment on, if any.
    home: Option<ServerId>,
    /// The fragment bytes; `None` when the fragment neither exists nor
    /// can be reconstructed (end of log, torn tail, or cleaned stripe).
    bytes: Option<Bytes>,
}

/// Locate → fetch → reconstruct for one fragment, exactly the rollforward
/// semantics: a located-but-unfetchable fragment falls back to rebuild,
/// and "cannot be reconstructed" is a `None`, not an error.
fn fetch_anywhere_with_home(engine: &ReadEngine, fid: FragmentId) -> Result<FragmentFetch> {
    let located = reconstruct::locate_fragment(engine.pool(), fid);
    match located {
        Some((server, _)) => match reconstruct::fetch_fragment_with(engine, server, fid) {
            Ok(b) => Ok(FragmentFetch {
                home: Some(server),
                bytes: Some(b),
            }),
            Err(e) if e.is_unavailability() => Ok(FragmentFetch {
                home: Some(server),
                bytes: try_reconstruct(engine, fid)?,
            }),
            Err(e) => Err(e),
        },
        None => Ok(FragmentFetch {
            home: None,
            bytes: try_reconstruct(engine, fid)?,
        }),
    }
}

/// The rollforward read-ahead pipeline: keeps fetches for the next `depth`
/// fragments in flight on background threads while the caller parses the
/// current one.
struct ReadAhead {
    engine: ReadEngine,
    depth: u64,
    inflight: HashMap<u64, mpsc::Receiver<Result<FragmentFetch>>>,
}

impl ReadAhead {
    fn new(engine: ReadEngine, depth: u64) -> ReadAhead {
        ReadAhead {
            engine,
            depth,
            inflight: HashMap::new(),
        }
    }

    fn spawn(&mut self, seq: u64, client: ClientId) {
        if self.inflight.contains_key(&seq) {
            return;
        }
        let (tx, rx) = mpsc::channel();
        let engine = self.engine.clone();
        std::thread::spawn(move || {
            let _ = tx.send(fetch_anywhere_with_home(
                &engine,
                FragmentId::new(client, seq),
            ));
        });
        self.inflight.insert(seq, rx);
    }

    /// Returns fragment `seq`, first queuing background fetches for
    /// `seq+1..=seq+depth` so the network overlaps with parsing.
    fn next(&mut self, seq: u64, client: ClientId) -> Result<FragmentFetch> {
        for s in seq + 1..=seq + self.depth {
            self.spawn(s, client);
        }
        match self.inflight.remove(&seq) {
            Some(rx) => rx.recv().unwrap_or_else(|_| {
                fetch_anywhere_with_home(&self.engine, FragmentId::new(client, seq))
            }),
            None => fetch_anywhere_with_home(&self.engine, FragmentId::new(client, seq)),
        }
    }
}

fn try_reconstruct(engine: &ReadEngine, fid: FragmentId) -> Result<Option<Bytes>> {
    match reconstruct::reconstruct_fragment_with(engine, fid) {
        Ok(bytes) => {
            metrics().reconstructions.inc();
            Ok(Some(bytes))
        }
        // Unreconstructible during a rollforward scan = end of log or a
        // torn tail; both mean "stop scanning", not "fail recovery".
        Err(SwarmError::ReconstructionFailed { .. }) => Ok(None),
        Err(e) if e.is_unavailability() => Ok(None),
        Err(e) => Err(e),
    }
}

/// Broadcast `LastMarked` (in parallel); the newest reply is the recovery
/// anchor.
fn find_anchor(pool: &Arc<ConnectionPool>) -> Option<FragmentId> {
    pool.broadcast(&Request::LastMarked)
        .into_iter()
        .filter_map(|(_, resp)| match resp.into_result() {
            Ok(Response::LastMarked(fid)) => fid,
            _ => None,
        })
        .max()
}

/// Reads the log layer's checkpoint directory from the anchor fragment,
/// if present (the newest CHECKPOINT_DIR record wins).
fn read_checkpoint_dir(
    pool: &Arc<ConnectionPool>,
    anchor: FragmentId,
) -> Result<Option<Vec<(ServiceId, crate::log::LogPosition)>>> {
    if std::env::var("SWARM_DISABLE_CKPT_DIR").is_ok() {
        return Ok(None); // test hook: force the legacy backward walk
    }
    let Some(bytes) = reconstruct::read_fragment_anywhere(pool, anchor)? else {
        return Ok(None);
    };
    let view = crate::fragment::FragmentView::parse(&bytes)?;
    for le in view.entries.iter().rev() {
        if let Entry::Record {
            service,
            kind,
            data,
        } = &le.entry
        {
            if *service == ServiceId::LOG_LAYER && *kind == crate::log::log_record::CHECKPOINT_DIR {
                return Ok(Some(crate::log::decode_checkpoint_dir(data)?));
            }
        }
    }
    Ok(None)
}

/// Fetches each expected service's checkpoint straight from the
/// directory; returns the forward-scan start (the oldest position that
/// still matters).
fn discover_from_directory(
    pool: &Arc<ConnectionPool>,
    directory: &[(ServiceId, LogPosition)],
    expected: &[ServiceId],
    replay: &mut Replay,
) -> Result<u64> {
    let mut scan_start = u64::MAX;
    for (service, pos) in directory {
        if !expected.contains(service) {
            continue;
        }
        let fid = FragmentId::new(pool.client(), pos.seq);
        let Some(bytes) = reconstruct::read_fragment_anywhere(pool, fid)? else {
            // The directory references a fragment that is gone — fall
            // back to scanning from the beginning for safety.
            scan_start = 0;
            continue;
        };
        let view = crate::fragment::FragmentView::parse(&bytes)?;
        for le in &view.entries {
            if le.entry_offset == pos.offset {
                if let Entry::Checkpoint { service: s, data } = &le.entry {
                    if s == service {
                        replay.checkpoints.insert(*service, (*pos, data.clone()));
                    }
                }
            }
        }
        scan_start = scan_start.min(pos.seq);
    }
    // Services expected but absent from the directory never checkpointed:
    // their records are everywhere, so scan from the very beginning (the
    // cleaner cannot have reclaimed any stripe holding their records).
    let all_listed = expected
        .iter()
        .all(|svc| directory.iter().any(|(s, _)| s == svc));
    if !all_listed || scan_start == u64::MAX {
        scan_start = 0;
    }
    Ok(scan_start)
}

/// Walks backward from the anchor collecting the newest checkpoint per
/// service; returns the sequence number the forward scan should start at.
fn discover_checkpoints(
    pool: &Arc<ConnectionPool>,
    anchor: FragmentId,
    expected: &[ServiceId],
    replay: &mut Replay,
) -> Result<u64> {
    let mut scan_start = anchor.seq();
    let mut seq = anchor.seq() as i128;
    loop {
        if seq < 0 {
            break;
        }
        let fid = FragmentId::new(pool.client(), seq as u64);
        let bytes = match reconstruct::read_fragment_anywhere(pool, fid) {
            Ok(Some(b)) => b,
            // A cleaned region (or a second failure): stop walking.
            Ok(None) => break,
            Err(e) if e.is_unavailability() => break,
            Err(e) => return Err(e),
        };
        let view = crate::fragment::FragmentView::parse(&bytes)?;
        if !view.header.is_parity() {
            // Within one fragment, later entries are newer: iterate in
            // reverse so the newest checkpoint of each service wins.
            for le in view.entries.iter().rev() {
                if let Entry::Checkpoint { service, data } = &le.entry {
                    replay.checkpoints.entry(*service).or_insert_with(|| {
                        (
                            LogPosition {
                                seq: seq as u64,
                                offset: le.entry_offset,
                            },
                            data.clone(),
                        )
                    });
                }
            }
        }
        scan_start = seq as u64;
        let all_found = expected.iter().all(|s| replay.checkpoints.contains_key(s));
        if all_found && !expected.is_empty() {
            break;
        }
        seq -= 1;
    }
    // Positions found by the backward walk are authoritative starting
    // points; the forward scan re-reads from the oldest of them (or the
    // oldest reachable fragment when some service never checkpointed).
    let oldest_ckpt = replay
        .checkpoints
        .values()
        .map(|(p, _)| p.seq)
        .min()
        .unwrap_or(scan_start);
    Ok(scan_start.min(oldest_ckpt))
}
