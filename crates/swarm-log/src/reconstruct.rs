//! Fragment reconstruction (§2.3.3).
//!
//! "If fragment N needs to be reconstructed, then either fragment N-1 or
//! fragment N+1 is in the same stripe. A client finds fragment N-1 and N+1
//! by broadcasting to all storage servers. Once the client locates a
//! fragment in the same stripe … it uses the stripe group information in
//! that fragment to access the other fragments in the stripe and perform
//! the reconstruction."
//!
//! Reconstruction is entirely client-side; servers only answer `Locate`
//! and `Read` and never learn that a reconstruction is happening.
//!
//! All functions here run over a shared [`ConnectionPool`]: locates use
//! the pool's first-positive-wins broadcast, and stripe members — which by
//! construction live on *different* servers — are fetched in parallel and
//! XORed into the accumulator in arrival order (XOR is commutative, so
//! arrival order does not affect the result).
//!
//! Single-parity stripes rebuild exactly as the paper describes. Stripes
//! with `m > 1` Reed–Solomon parities tolerate up to `m` concurrent member
//! losses: the fetch fans out to every other member, the first `k` arrivals
//! win, and the lost fragment is decoded as a GF(2^8) linear combination of
//! those survivors ([`crate::gf::decode_rows`]).

use std::sync::Arc;

use swarm_net::{ConnectionPool, Request, Response};
use swarm_types::{Bytes, FragmentId, Result, ServerId, SwarmError, MAX_PARITY};

use crate::fragment::{parse_header, FragmentHeader, LOCATE_HEADER_LEN};
use crate::gf;
use crate::parity::xor_into;
use crate::reader::{ReadEngine, DEFAULT_READ_WINDOW};

/// Broadcasts a `Locate` for `fid`, returning the first server that holds
/// it plus its parsed header. First positive reply wins; a hit on one
/// server does not wait for the rest of the cluster.
pub fn locate_fragment(
    pool: &Arc<ConnectionPool>,
    fid: FragmentId,
) -> Option<(ServerId, FragmentHeader)> {
    let request = Request::Locate {
        fid,
        header_len: LOCATE_HEADER_LEN,
    };
    let (server, resp) =
        pool.broadcast_first(&request, |r| matches!(r, Response::Located(Some(_))))?;
    if let Response::Located(Some(prefix)) = resp {
        if let Ok(header) = parse_header(&prefix) {
            return Some((server, header));
        }
    }
    // The winning prefix failed to parse (corrupt header): fall back to a
    // full broadcast and accept any server whose copy parses.
    for (server, resp) in pool.broadcast(&request) {
        if let Ok(Response::Located(Some(prefix))) = resp.into_result() {
            if let Ok(header) = parse_header(&prefix) {
                return Some((server, header));
            }
        }
    }
    None
}

/// Fetches the complete bytes of a fragment from a specific server over a
/// pooled connection (a default-window [`ReadEngine`]; callers with a
/// configured engine use [`fetch_fragment_with`]). Zero-copy: the
/// returned [`Bytes`] is the decoded wire frame's payload, shared, not
/// copied.
///
/// # Errors
///
/// Propagates transport and server errors ([`SwarmError::FragmentNotFound`],
/// [`SwarmError::ServerUnavailable`], …) and validates the header.
pub fn fetch_fragment(
    pool: &Arc<ConnectionPool>,
    server: ServerId,
    fid: FragmentId,
) -> Result<Bytes> {
    fetch_fragment_with(
        &ReadEngine::new(pool.clone(), DEFAULT_READ_WINDOW),
        server,
        fid,
    )
}

/// [`fetch_fragment`] through an existing [`ReadEngine`] — the locate and
/// the body read ride the engine's window (and its priority lane on the
/// mux, so a reconstruction is not stuck behind queued store payloads).
pub fn fetch_fragment_with(
    engine: &ReadEngine,
    server: ServerId,
    fid: FragmentId,
) -> Result<Bytes> {
    match engine.fetch_whole(server, &[fid]).pop().expect("one fid") {
        Ok(Some(bytes)) => Ok(bytes),
        Ok(None) => Err(SwarmError::FragmentNotFound(fid)),
        Err(e) => Err(e),
    }
}

/// Finds a surviving stripe-mate's header for `fid` by probing `fid ± 1`
/// first (the paper's rule), then outward: multi-parity stripes can lose
/// both immediate neighbours, but never more than `m <=` [`MAX_PARITY`]
/// members total, so a surviving mate — if the stripe exists at all — sits
/// within `MAX_PARITY` fids. Any located header of this log reveals the
/// uniform stripe width, which prunes probes outside `fid`'s own stripe.
fn find_stripe_header(pool: &Arc<ConnectionPool>, fid: FragmentId) -> Option<FragmentHeader> {
    let mut width: Option<u64> = None;
    for d in 1..=MAX_PARITY as u64 {
        let below = fid.seq().checked_sub(d);
        let above = fid.seq().checked_add(d);
        for candidate in [below, above].into_iter().flatten() {
            if let Some(w) = width {
                let first = fid.seq() / w * w;
                if !(first..first + w).contains(&candidate) {
                    continue;
                }
            }
            let mate = FragmentId::new(fid.client(), candidate);
            if let Some((_, header)) = locate_fragment(pool, mate) {
                let first = header.stripe_first_seq;
                let count = header.member_count as u64;
                if (first..first + count).contains(&fid.seq()) {
                    return Some(header);
                }
                // A neighbour from an adjacent stripe: remember the log's
                // stripe width so further probing stays in-stripe.
                width = Some(count);
            }
        }
        if let Some(w) = width {
            let first = fid.seq() / w * w;
            let below_done = fid.seq().checked_sub(d + 1).is_none_or(|c| c < first);
            let above_done = fid.seq() + d + 1 >= first + w;
            if below_done && above_done {
                break;
            }
        }
    }
    None
}

/// Fetches the stripe members named by `indices` and feeds each to
/// `on_member` as it arrives. Members live on different servers, so the
/// fetches fan out across threads; `on_member` runs on the calling thread
/// in arrival order. The first fetch error (or `on_member` error) aborts,
/// after the in-flight fetches drain.
fn fetch_members<F>(
    engine: &ReadEngine,
    header: &FragmentHeader,
    indices: &[u8],
    mut on_member: F,
) -> Result<()>
where
    F: FnMut(u8, Bytes) -> Result<()>,
{
    if indices.len() <= 1 || !engine.pool().fanout_enabled() {
        for &i in indices {
            let bytes = fetch_member(engine, header, i)?;
            on_member(i, bytes)?;
        }
        return Ok(());
    }
    std::thread::scope(|s| {
        let (tx, rx) = std::sync::mpsc::channel();
        for &i in indices {
            let tx = tx.clone();
            s.spawn(move || {
                let _ = tx.send((i, fetch_member(engine, header, i)));
            });
        }
        drop(tx);
        for (i, result) in rx {
            on_member(i, result?)?;
        }
        Ok(())
    })
}

/// Reconstructs the complete bytes of fragment `fid` from the surviving
/// members of its stripe, fetching them in parallel.
///
/// # Errors
///
/// Returns [`SwarmError::ReconstructionFailed`] when no stripe-mate can be
/// located (e.g. the fragment never existed, or more than one member of
/// the stripe is unavailable), and [`SwarmError::Corrupt`] if the rebuilt
/// bytes fail validation.
pub fn reconstruct_fragment(pool: &Arc<ConnectionPool>, fid: FragmentId) -> Result<Bytes> {
    reconstruct_fragment_with(&ReadEngine::new(pool.clone(), DEFAULT_READ_WINDOW), fid)
}

/// [`reconstruct_fragment`] through an existing [`ReadEngine`]: member
/// fetches ride the engine's window and priority lane.
pub fn reconstruct_fragment_with(engine: &ReadEngine, fid: FragmentId) -> Result<Bytes> {
    let pool = engine.pool();
    let header = find_stripe_header(pool, fid).ok_or_else(|| SwarmError::ReconstructionFailed {
        fid,
        reason: "no surviving stripe-mate located via broadcast".into(),
    })?;

    let my_index = (fid.seq() - header.stripe_first_seq) as u8;
    if header.parity_count() > 1 {
        // Reed–Solomon stripe: any k survivors decode any member.
        return reconstruct_rs(engine, fid, &header, my_index);
    }
    reconstruct_xor(engine, fid, &header, my_index)
}

/// The paper's single-parity rebuild: fetch every other member (all are
/// required) and XOR them in arrival order.
fn reconstruct_xor(
    engine: &ReadEngine,
    fid: FragmentId,
    header: &FragmentHeader,
    my_index: u8,
) -> Result<Bytes> {
    let parity_index = header.parity_index;

    if my_index == parity_index {
        // Rebuild the parity fragment by re-XOR-ing all data members.
        // XOR is commutative: fold each member in as it arrives.
        let indices: Vec<u8> = (0..header.member_count)
            .filter(|i| *i != parity_index)
            .collect();
        let mut acc_buf: Vec<u8> = Vec::new();
        let mut lens = vec![0u32; header.member_count as usize];
        fetch_members(engine, header, &indices, |i, bytes| {
            lens[i as usize] = bytes.len() as u32;
            xor_into(&mut acc_buf, &bytes);
            Ok(())
        })?;
        let lens: Vec<u32> = indices.iter().map(|i| lens[*i as usize]).collect();
        let mut parity_header = FragmentHeader {
            flags: 0,
            fid,
            stripe: header.stripe,
            stripe_first_seq: header.stripe_first_seq,
            member_count: header.member_count,
            my_index,
            parity_index,
            body_len: 0,
            body_crc: 0,
            group: header.group.clone(),
            member_lens: vec![],
        };
        parity_header.flags |= crate::fragment::FLAG_PARITY;
        parity_header.member_lens = lens;
        parity_header.body_len = acc_buf.len() as u32;
        parity_header.body_crc = swarm_types::crc32(&acc_buf);
        let mut w =
            swarm_types::ByteWriter::with_capacity(parity_header.encoded_len() + acc_buf.len());
        use swarm_types::Encode;
        parity_header.encode(&mut w);
        w.put_raw(&acc_buf);
        return Ok(Bytes::from(w.into_bytes()));
    }

    // Rebuild a data member: parity body XOR all other data members. The
    // parity member rides the same fan-out; when it arrives, its header
    // supplies the rebuilt fragment's true length.
    let indices: Vec<u8> = (0..header.member_count)
        .filter(|i| *i != my_index)
        .collect();
    let mut acc: Vec<u8> = Vec::new();
    let mut true_len: Option<usize> = None;
    fetch_members(engine, header, &indices, |i, bytes| {
        if i == parity_index {
            let parity_header = parse_header(&bytes)?;
            if !parity_header.is_parity() {
                return Err(SwarmError::corrupt(format!(
                    "member {parity_index} of {} is not a parity fragment",
                    header.stripe
                )));
            }
            true_len = Some(
                *parity_header
                    .member_lens
                    .get(my_index as usize)
                    .ok_or_else(|| SwarmError::corrupt("parity member_lens table too short"))?
                    as usize,
            );
            xor_into(&mut acc, &bytes[parity_header.encoded_len()..]);
        } else {
            xor_into(&mut acc, &bytes);
        }
        Ok(())
    })?;
    let true_len = true_len.ok_or_else(|| SwarmError::corrupt("parity member missing"))?;
    acc.truncate(true_len);
    let rebuilt = acc;

    // Validate before handing back.
    let view = crate::fragment::FragmentView::parse(&rebuilt).map_err(|e| {
        SwarmError::ReconstructionFailed {
            fid,
            reason: format!("rebuilt bytes failed validation: {e}"),
        }
    })?;
    if view.header.fid != fid {
        return Err(SwarmError::ReconstructionFailed {
            fid,
            reason: format!("rebuilt fragment identifies as {}", view.header.fid),
        });
    }
    Ok(Bytes::from(rebuilt))
}

/// Fetches every stripe member except `exclude` in parallel and keeps the
/// first `need` that arrive — the tolerant fan-out under the Reed–Solomon
/// decode, where any `k` of the `k + m - 1` other members suffice.
/// Unavailable members are skipped, not fatal; fewer than `need` total is
/// a [`SwarmError::ReconstructionFailed`] naming every failure.
fn fetch_survivors(
    engine: &ReadEngine,
    header: &FragmentHeader,
    exclude: u8,
    need: usize,
) -> Result<Vec<(u8, Bytes)>> {
    let indices: Vec<u8> = (0..header.member_count).filter(|i| *i != exclude).collect();
    let mut out: Vec<(u8, Bytes)> = Vec::with_capacity(need);
    let mut reasons: Vec<String> = Vec::new();
    if indices.len() <= 1 || !engine.pool().fanout_enabled() {
        for &i in &indices {
            if out.len() == need {
                break;
            }
            match fetch_member(engine, header, i) {
                Ok(bytes) => out.push((i, bytes)),
                Err(e) => reasons.push(format!("member {i}: {e}")),
            }
        }
    } else {
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            for &i in &indices {
                let tx = tx.clone();
                s.spawn(move || {
                    let _ = tx.send((i, fetch_member(engine, header, i)));
                });
            }
            drop(tx);
            for (i, result) in rx {
                match result {
                    Ok(bytes) => {
                        out.push((i, bytes));
                        if out.len() == need {
                            // Dropping the receiver lets the laggards'
                            // sends fail; the scope still joins them.
                            break;
                        }
                    }
                    Err(e) => reasons.push(format!("member {i}: {e}")),
                }
            }
        });
    }
    if out.len() < need {
        return Err(SwarmError::ReconstructionFailed {
            fid: header.member_fid(exclude),
            reason: format!(
                "only {} of the {} survivors needed are available ({})",
                out.len(),
                need,
                reasons.join("; ")
            ),
        });
    }
    Ok(out)
}

/// Rebuilds any member of a Reed–Solomon stripe from the first `k`
/// surviving members to arrive.
///
/// Data members come back as a [`gf::decode_rows`] combination of the
/// survivors' symbols (a data member's symbol is its full stored bytes, a
/// parity member's is its body). A lost parity is re-encoded through the
/// same inversion: its [`gf::coding_row`] composed with the survivor
/// inverse gives one coefficient per survivor, so no intermediate data
/// rebuild is materialized.
fn reconstruct_rs(
    engine: &ReadEngine,
    fid: FragmentId,
    header: &FragmentHeader,
    my_index: u8,
) -> Result<Bytes> {
    let k = header.data_count() as usize;
    let survivors = fetch_survivors(engine, header, my_index, k)?;

    // Split each survivor into its symbol (full bytes for data members,
    // body for parity members) and harvest a parity's member-length table
    // for trimming.
    let mut lens_from_parity: Option<Vec<u32>> = None;
    let mut symbols: Vec<(usize, Bytes, usize)> = Vec::with_capacity(k); // (member, bytes, body offset)
    for (i, bytes) in survivors {
        if header.is_parity_member(i) {
            let ph = parse_header(&bytes)?;
            if !ph.is_parity() {
                return Err(SwarmError::corrupt(format!(
                    "member {i} of {} is not a parity fragment",
                    header.stripe
                )));
            }
            if lens_from_parity.is_none() {
                lens_from_parity = Some(ph.member_lens.clone());
            }
            let body = ph.encoded_len();
            symbols.push((i as usize, bytes, body));
        } else {
            symbols.push((i as usize, bytes, 0));
        }
    }
    let survivor_indices: Vec<usize> = symbols.iter().map(|(i, _, _)| *i).collect();

    // True stored length of each data member: a surviving parity's table,
    // or — when all k data members survived (only a parity was lost) —
    // their own lengths.
    let data_len = |i: usize| -> Result<usize> {
        if let Some(lens) = &lens_from_parity {
            return Ok(*lens
                .get(i)
                .ok_or_else(|| SwarmError::corrupt("parity member_lens table too short"))?
                as usize);
        }
        symbols
            .iter()
            .find(|(s, _, _)| *s == i)
            .map(|(_, bytes, _)| bytes.len())
            .ok_or_else(|| SwarmError::corrupt("no parity survivor names the lost member's length"))
    };

    let mut rebuilt: Vec<u8> = Vec::new();
    if my_index < header.parity_index {
        // Lost data member: one decode row recombines the survivors.
        // (Rebuilding data means at most k-1 data survivors, so the k
        // survivors always include a parity and `data_len` never misses.)
        let rows = gf::decode_rows(k, &survivor_indices, &[my_index as usize])
            .ok_or_else(|| SwarmError::corrupt("survivor matrix is singular"))?;
        for ((_, bytes, body), &c) in symbols.iter().zip(&rows[0]) {
            gf::mul_into(&mut rebuilt, &bytes[*body..], c);
        }
        let true_len = data_len(my_index as usize)?;
        // Shorter-than-true folds only happen when every longer survivor
        // carried a zero coefficient — the symbol really is zero there.
        rebuilt.resize(true_len.max(rebuilt.len()), 0);
        rebuilt.truncate(true_len);

        let view = crate::fragment::FragmentView::parse(&rebuilt).map_err(|e| {
            SwarmError::ReconstructionFailed {
                fid,
                reason: format!("rebuilt bytes failed validation: {e}"),
            }
        })?;
        if view.header.fid != fid {
            return Err(SwarmError::ReconstructionFailed {
                fid,
                reason: format!("rebuilt fragment identifies as {}", view.header.fid),
            });
        }
        return Ok(Bytes::from(rebuilt));
    }

    // Lost parity member: compose its coding row with the survivor
    // inverse to get coefficients directly over the survivors.
    let row_j = (my_index - header.parity_index) as usize;
    let all_data: Vec<usize> = (0..k).collect();
    let inverse = gf::decode_rows(k, &survivor_indices, &all_data)
        .ok_or_else(|| SwarmError::corrupt("survivor matrix is singular"))?;
    let target = gf::coding_row(k, row_j);
    let coeffs: Vec<u8> = (0..k)
        .map(|s| {
            let mut acc = 0u8;
            for (i, &t) in target.iter().enumerate() {
                acc ^= gf::mul(t, inverse[i][s]);
            }
            acc
        })
        .collect();
    for ((_, bytes, body), &c) in symbols.iter().zip(&coeffs) {
        gf::mul_into(&mut rebuilt, &bytes[*body..], c);
    }

    // Parity bodies span the longest member; their headers carry the
    // member-length table.
    let mut lens = Vec::with_capacity(k);
    for i in 0..k {
        lens.push(data_len(i)? as u32);
    }
    let body_len = lens.iter().map(|l| *l as usize).max().unwrap_or(0);
    rebuilt.resize(body_len.max(rebuilt.len()), 0);
    rebuilt.truncate(body_len);

    let parity_header = FragmentHeader {
        flags: crate::fragment::FLAG_PARITY,
        fid,
        stripe: header.stripe,
        stripe_first_seq: header.stripe_first_seq,
        member_count: header.member_count,
        my_index,
        parity_index: header.parity_index,
        body_len: rebuilt.len() as u32,
        body_crc: swarm_types::crc32(&rebuilt),
        group: header.group.clone(),
        member_lens: lens,
    };
    let mut w = swarm_types::ByteWriter::with_capacity(parity_header.encoded_len() + rebuilt.len());
    use swarm_types::Encode;
    parity_header.encode(&mut w);
    w.put_raw(&rebuilt);
    Ok(Bytes::from(w.into_bytes()))
}

/// Fetches stripe member `i`, trying its home server first and falling
/// back to a broadcast locate (the member may have been re-homed or its
/// header map stale).
fn fetch_member(engine: &ReadEngine, header: &FragmentHeader, i: u8) -> Result<Bytes> {
    let fid = header.member_fid(i);
    let home = header.member_server(i);
    match fetch_fragment_with(engine, home, fid) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.is_unavailability() => {
            if let Some((server, _)) = locate_fragment(engine.pool(), fid) {
                fetch_fragment_with(engine, server, fid)
            } else {
                Err(SwarmError::ReconstructionFailed {
                    fid,
                    reason: format!("stripe member {i} unavailable ({e})"),
                })
            }
        }
        Err(e) => Err(e),
    }
}

/// Reads the complete bytes of `fid` from wherever they are, falling back
/// to reconstruction; `Ok(None)` means the fragment does not exist in the
/// cluster at all (end of log, or a cleaned stripe).
pub fn read_fragment_anywhere(
    pool: &Arc<ConnectionPool>,
    fid: FragmentId,
) -> Result<Option<Bytes>> {
    read_fragment_anywhere_with(&ReadEngine::new(pool.clone(), DEFAULT_READ_WINDOW), fid)
}

/// [`read_fragment_anywhere`] through an existing [`ReadEngine`].
pub fn read_fragment_anywhere_with(engine: &ReadEngine, fid: FragmentId) -> Result<Option<Bytes>> {
    if let Some((server, _)) = locate_fragment(engine.pool(), fid) {
        match fetch_fragment_with(engine, server, fid) {
            Ok(bytes) => return Ok(Some(bytes)),
            Err(e) if e.is_unavailability() => {} // fall through to rebuild
            Err(e) => return Err(e),
        }
    }
    match reconstruct_fragment_with(engine, fid) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(SwarmError::ReconstructionFailed { reason, .. })
            if reason.contains("no surviving stripe-mate") =>
        {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}
