//! Fragment reconstruction (§2.3.3).
//!
//! "If fragment N needs to be reconstructed, then either fragment N-1 or
//! fragment N+1 is in the same stripe. A client finds fragment N-1 and N+1
//! by broadcasting to all storage servers. Once the client locates a
//! fragment in the same stripe … it uses the stripe group information in
//! that fragment to access the other fragments in the stripe and perform
//! the reconstruction."
//!
//! Reconstruction is entirely client-side; servers only answer `Locate`
//! and `Read` and never learn that a reconstruction is happening.

use swarm_net::{broadcast, Request, Transport};
use swarm_types::{ClientId, FragmentId, Result, ServerId, SwarmError};

use crate::fragment::{parse_header, FragmentHeader, LOCATE_HEADER_LEN};
use crate::parity::{xor_into, ParityAccumulator};

/// Broadcasts a `Locate` for `fid`, returning the first server that holds
/// it plus its parsed header.
pub fn locate_fragment(
    transport: &dyn Transport,
    client: ClientId,
    fid: FragmentId,
) -> Option<(ServerId, FragmentHeader)> {
    let replies = broadcast(
        transport,
        client,
        &Request::Locate {
            fid,
            header_len: LOCATE_HEADER_LEN,
        },
    );
    for (server, resp) in replies {
        if let Ok(swarm_net::Response::Located(Some(prefix))) = resp.into_result() {
            if let Ok(header) = parse_header(&prefix) {
                return Some((server, header));
            }
        }
    }
    None
}

/// Fetches the complete bytes of a fragment from a specific server.
///
/// # Errors
///
/// Propagates transport and server errors ([`SwarmError::FragmentNotFound`],
/// [`SwarmError::ServerUnavailable`], …) and validates the header.
pub fn fetch_fragment(
    transport: &dyn Transport,
    client: ClientId,
    server: ServerId,
    fid: FragmentId,
) -> Result<Vec<u8>> {
    let mut conn = transport.connect(server, client)?;
    // First get the header to learn the total length.
    let resp = conn
        .call(&Request::Locate {
            fid,
            header_len: LOCATE_HEADER_LEN,
        })?
        .into_result()?;
    let prefix = match resp {
        swarm_net::Response::Located(Some(p)) => p,
        swarm_net::Response::Located(None) => return Err(SwarmError::FragmentNotFound(fid)),
        other => {
            return Err(SwarmError::protocol(format!(
                "unexpected locate reply {other:?}"
            )))
        }
    };
    let header = parse_header(&prefix)?;
    let total = header.encoded_len() as u32 + header.body_len;
    let resp = conn
        .call(&Request::Read {
            fid,
            offset: 0,
            len: total,
        })?
        .into_result()?;
    match resp {
        swarm_net::Response::Data(bytes) => Ok(bytes.to_vec()),
        other => Err(SwarmError::protocol(format!(
            "unexpected read reply {other:?}"
        ))),
    }
}

/// Finds a surviving stripe-mate's header for `fid` by probing `fid ± 1`
/// (and, transitively, every member the first discovered header names).
fn find_stripe_header(
    transport: &dyn Transport,
    client: ClientId,
    fid: FragmentId,
) -> Option<FragmentHeader> {
    let mut candidates = Vec::new();
    if let Some(prev) = fid.prev() {
        candidates.push(prev);
    }
    if let Some(next) = fid.next() {
        candidates.push(next);
    }
    for candidate in candidates {
        if let Some((_, header)) = locate_fragment(transport, client, candidate) {
            let first = header.stripe_first_seq;
            let count = header.member_count as u64;
            if (first..first + count).contains(&fid.seq()) {
                return Some(header);
            }
        }
    }
    None
}

/// Reconstructs the complete bytes of fragment `fid` from the surviving
/// members of its stripe.
///
/// # Errors
///
/// Returns [`SwarmError::ReconstructionFailed`] when no stripe-mate can be
/// located (e.g. the fragment never existed, or more than one member of
/// the stripe is unavailable), and [`SwarmError::Corrupt`] if the rebuilt
/// bytes fail validation.
pub fn reconstruct_fragment(
    transport: &dyn Transport,
    client: ClientId,
    fid: FragmentId,
) -> Result<Vec<u8>> {
    let header = find_stripe_header(transport, client, fid).ok_or_else(|| {
        SwarmError::ReconstructionFailed {
            fid,
            reason: "no surviving stripe-mate located via broadcast".into(),
        }
    })?;

    let my_index = (fid.seq() - header.stripe_first_seq) as u8;
    let parity_index = header.parity_index;

    if my_index == parity_index {
        // Rebuild the parity fragment by re-XOR-ing all data members.
        let mut acc_buf: Vec<u8> = Vec::new();
        let mut lens = Vec::new();
        for i in 0..header.member_count {
            if i == parity_index {
                continue;
            }
            let bytes = fetch_member(transport, client, &header, i)?;
            lens.push(bytes.len() as u32);
            xor_into(&mut acc_buf, &bytes);
        }
        let mut parity_header = FragmentHeader {
            flags: 0,
            fid,
            stripe: header.stripe,
            stripe_first_seq: header.stripe_first_seq,
            member_count: header.member_count,
            my_index,
            parity_index,
            body_len: 0,
            body_crc: 0,
            group: header.group.clone(),
            member_lens: vec![],
        };
        parity_header.flags |= crate::fragment::FLAG_PARITY;
        parity_header.member_lens = lens;
        parity_header.body_len = acc_buf.len() as u32;
        parity_header.body_crc = swarm_types::crc32(&acc_buf);
        let mut w =
            swarm_types::ByteWriter::with_capacity(parity_header.encoded_len() + acc_buf.len());
        use swarm_types::Encode;
        parity_header.encode(&mut w);
        w.put_raw(&acc_buf);
        return Ok(w.into_bytes());
    }

    // Rebuild a data member: parity body XOR all other data members.
    let parity_bytes = fetch_member(transport, client, &header, parity_index)?;
    let parity_header = parse_header(&parity_bytes)?;
    if !parity_header.is_parity() {
        return Err(SwarmError::corrupt(format!(
            "member {parity_index} of {} is not a parity fragment",
            header.stripe
        )));
    }
    let true_len = *parity_header
        .member_lens
        .get(my_index as usize)
        .ok_or_else(|| SwarmError::corrupt("parity member_lens table too short"))?;
    let parity_body = &parity_bytes[parity_header.encoded_len()..];

    let mut surviving = Vec::new();
    for i in 0..header.member_count {
        if i == my_index || i == parity_index {
            continue;
        }
        surviving.push(fetch_member(transport, client, &header, i)?);
    }
    let rebuilt = ParityAccumulator::reconstruct(parity_body, surviving, true_len as usize);

    // Validate before handing back.
    let view = crate::fragment::FragmentView::parse(&rebuilt).map_err(|e| {
        SwarmError::ReconstructionFailed {
            fid,
            reason: format!("rebuilt bytes failed validation: {e}"),
        }
    })?;
    if view.header.fid != fid {
        return Err(SwarmError::ReconstructionFailed {
            fid,
            reason: format!("rebuilt fragment identifies as {}", view.header.fid),
        });
    }
    Ok(rebuilt)
}

/// Fetches stripe member `i`, trying its home server first and falling
/// back to a broadcast locate (the member may have been re-homed or its
/// header map stale).
fn fetch_member(
    transport: &dyn Transport,
    client: ClientId,
    header: &FragmentHeader,
    i: u8,
) -> Result<Vec<u8>> {
    let fid = header.member_fid(i);
    let home = header.member_server(i);
    match fetch_fragment(transport, client, home, fid) {
        Ok(bytes) => Ok(bytes),
        Err(e) if e.is_unavailability() => {
            if let Some((server, _)) = locate_fragment(transport, client, fid) {
                fetch_fragment(transport, client, server, fid)
            } else {
                Err(SwarmError::ReconstructionFailed {
                    fid,
                    reason: format!("stripe member {i} unavailable ({e})"),
                })
            }
        }
        Err(e) => Err(e),
    }
}

/// Reads the complete bytes of `fid` from wherever they are, falling back
/// to reconstruction; `Ok(None)` means the fragment does not exist in the
/// cluster at all (end of log, or a cleaned stripe).
pub fn read_fragment_anywhere(
    transport: &dyn Transport,
    client: ClientId,
    fid: FragmentId,
) -> Result<Option<Vec<u8>>> {
    if let Some((server, _)) = locate_fragment(transport, client, fid) {
        match fetch_fragment(transport, client, server, fid) {
            Ok(bytes) => return Ok(Some(bytes)),
            Err(e) if e.is_unavailability() => {} // fall through to rebuild
            Err(e) => return Err(e),
        }
    }
    match reconstruct_fragment(transport, client, fid) {
        Ok(bytes) => Ok(Some(bytes)),
        Err(SwarmError::ReconstructionFailed { reason, .. })
            if reason.contains("no surviving stripe-mate") =>
        {
            Ok(None)
        }
        Err(e) => Err(e),
    }
}
