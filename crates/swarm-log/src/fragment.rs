//! Fragment format: the unit of striping and storage (§2.1.1–2.1.2).
//!
//! A fragment is `header || body`. The header makes every fragment
//! *self-identifying* — it names the stripe the fragment belongs to, the
//! stripe's full membership (fragment ids are consecutive, so only the
//! first sequence number and count are needed), and which server holds
//! each member. This is what lets a client reconstruct a lost fragment
//! after finding *any* surviving member of the same stripe via broadcast
//! (§2.3.3: "reconstruction on the client is made possible by storing
//! stripe group information in each fragment of a stripe").
//!
//! The body is a dense sequence of [`Entry`] encodings. Blocks are
//! addressed by `(fid, absolute byte offset)`, so the storage server can
//! serve block reads without understanding the format. Header and body are
//! independently checksummed.

use swarm_types::constants::{FORMAT_VERSION, FRAGMENT_MAGIC};
use swarm_types::{
    crc32, BlockAddr, ByteReader, ByteWriter, Bytes, Decode, Encode, FragmentId, Result, ServerId,
    ServiceId, StripeSeq, SwarmError,
};

use crate::entry::{Entry, LocatedEntry};

/// Flag bit: this fragment holds parity, not data.
pub const FLAG_PARITY: u16 = 1 << 0;
/// Flag bit: this fragment was stored *marked* (contains a checkpoint).
pub const FLAG_MARKED: u16 = 1 << 1;

/// How many leading bytes of a fragment a `Locate` request must fetch to
/// be guaranteed the complete header (group and length tables included).
pub const LOCATE_HEADER_LEN: u32 = 1024;

/// The self-identifying fragment header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Format flags ([`FLAG_PARITY`], [`FLAG_MARKED`]).
    pub flags: u16,
    /// This fragment's id.
    pub fid: FragmentId,
    /// Which stripe of this client's log the fragment belongs to.
    pub stripe: StripeSeq,
    /// Sequence number of the stripe's first member fragment; member `i`
    /// has fid `client/(first_seq + i)`.
    pub stripe_first_seq: u64,
    /// Number of fragments in the stripe (data + parity).
    pub member_count: u8,
    /// This fragment's index within the stripe.
    pub my_index: u8,
    /// Index of the *first* parity member (= number of data members `k`).
    /// Members `parity_index..member_count` are all parity; the paper's
    /// single-XOR shape has `parity_index == member_count - 1`.
    pub parity_index: u8,
    /// Length of the body in bytes.
    pub body_len: u32,
    /// CRC32 of the body.
    pub body_crc: u32,
    /// Member `i` of the stripe is stored on `group[i]`.
    pub group: Vec<ServerId>,
    /// Full stored length of each member fragment (parity fragments only;
    /// empty for data fragments). Needed to trim a reconstructed fragment
    /// to its true length.
    pub member_lens: Vec<u32>,
}

impl FragmentHeader {
    /// Is this a parity fragment?
    pub fn is_parity(&self) -> bool {
        self.flags & FLAG_PARITY != 0
    }

    /// Number of data members in the stripe (`k`).
    pub fn data_count(&self) -> u8 {
        self.parity_index
    }

    /// Number of parity members in the stripe (`m`).
    pub fn parity_count(&self) -> u8 {
        self.member_count - self.parity_index
    }

    /// Is stripe member `i` a parity member?
    pub fn is_parity_member(&self, i: u8) -> bool {
        i >= self.parity_index
    }

    /// Coding row of parity member `i` (0 = the XOR row).
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `i` is a data member.
    pub fn parity_row(&self, i: u8) -> u8 {
        debug_assert!(self.is_parity_member(i));
        i - self.parity_index
    }

    /// Encoded header length in bytes (stable once `group` and
    /// `member_lens` are fixed).
    pub fn encoded_len(&self) -> usize {
        // magic4 ver2 flags2 fid8 stripe8 first8 count1 idx1 par1 pad1
        // body_len4 body_crc4 = 44, then group(4+4n) lens(4+4m) crc4
        44 + 4 + 4 * self.group.len() + 4 + 4 * self.member_lens.len() + 4
    }

    /// Fid of stripe member `i`.
    pub fn member_fid(&self, i: u8) -> FragmentId {
        FragmentId::new(self.fid.client(), self.stripe_first_seq + i as u64)
    }

    /// Server holding stripe member `i`.
    pub fn member_server(&self, i: u8) -> ServerId {
        self.group[i as usize]
    }

    fn encode_body(&self, w: &mut ByteWriter) {
        w.put_u32(FRAGMENT_MAGIC);
        w.put_u16(FORMAT_VERSION);
        w.put_u16(self.flags);
        self.fid.encode(w);
        self.stripe.encode(w);
        w.put_u64(self.stripe_first_seq);
        w.put_u8(self.member_count);
        w.put_u8(self.my_index);
        w.put_u8(self.parity_index);
        w.put_u8(0);
        w.put_u32(self.body_len);
        w.put_u32(self.body_crc);
        self.group.encode(w);
        w.put_u32(self.member_lens.len() as u32);
        for len in &self.member_lens {
            w.put_u32(*len);
        }
    }
}

impl Encode for FragmentHeader {
    fn encode(&self, w: &mut ByteWriter) {
        let mut inner = ByteWriter::with_capacity(self.encoded_len());
        self.encode_body(&mut inner);
        let crc = crc32(inner.as_slice());
        w.put_raw(inner.as_slice());
        w.put_u32(crc);
    }
}

impl Decode for FragmentHeader {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let start = r.position();
        let magic = r.get_u32()?;
        if magic != FRAGMENT_MAGIC {
            return Err(SwarmError::corrupt(format!(
                "bad fragment magic {magic:#010x}"
            )));
        }
        let version = r.get_u16()?;
        if version != FORMAT_VERSION {
            return Err(SwarmError::corrupt(format!(
                "unsupported fragment format version {version}"
            )));
        }
        let flags = r.get_u16()?;
        let fid = FragmentId::decode(r)?;
        let stripe = StripeSeq::decode(r)?;
        let stripe_first_seq = r.get_u64()?;
        let member_count = r.get_u8()?;
        let my_index = r.get_u8()?;
        let parity_index = r.get_u8()?;
        let _pad = r.get_u8()?;
        let body_len = r.get_u32()?;
        let body_crc = r.get_u32()?;
        let group = Vec::<ServerId>::decode(r)?;
        let n_lens = r.get_u32()? as usize;
        if n_lens > crate::stripe::MAX_WIDTH {
            return Err(SwarmError::corrupt("member_lens too long"));
        }
        let mut member_lens = Vec::with_capacity(n_lens);
        for _ in 0..n_lens {
            member_lens.push(r.get_u32()?);
        }
        let end = r.position();
        let header = FragmentHeader {
            flags,
            fid,
            stripe,
            stripe_first_seq,
            member_count,
            my_index,
            parity_index,
            body_len,
            body_crc,
            group,
            member_lens,
        };
        // Verify header CRC over the *raw consumed bytes* — not a
        // re-encoding — so any flipped bit (even in padding) is caught.
        let stored_crc = r.get_u32()?;
        let raw = r.slice(start, end)?;
        if crc32(raw) != stored_crc {
            return Err(SwarmError::corrupt("fragment header checksum mismatch"));
        }
        if header.member_count as usize != header.group.len() {
            return Err(SwarmError::corrupt(format!(
                "member_count {} != group size {}",
                header.member_count,
                header.group.len()
            )));
        }
        if header.my_index >= header.member_count
            || header.parity_index >= header.member_count
            || header.parity_index == 0
        {
            return Err(SwarmError::corrupt("member index out of range"));
        }
        Ok(header)
    }
}

/// Parses just the header from a fragment prefix (what `Locate` returns).
///
/// # Errors
///
/// Returns [`SwarmError::Corrupt`] on malformed or truncated headers.
pub fn parse_header(prefix: &[u8]) -> Result<FragmentHeader> {
    let mut r = ByteReader::new(prefix);
    FragmentHeader::decode(&mut r)
}

/// A sealed fragment, ready to hand to the write pipeline.
#[derive(Debug, Clone)]
pub struct SealedFragment {
    /// Parsed copy of the header (identical to the encoded prefix of
    /// `bytes`).
    pub header: FragmentHeader,
    /// Complete fragment bytes (header || body), shared so the write
    /// pipeline, parity accumulator, and fragment cache can all hold the
    /// sealed buffer without copying it.
    pub bytes: Bytes,
    /// Store this fragment marked (contains a checkpoint).
    pub marked: bool,
}

impl SealedFragment {
    /// The fragment id.
    pub fn fid(&self) -> FragmentId {
        self.header.fid
    }

    /// Total length in bytes.
    pub fn len(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// A sealed fragment always contains at least a header.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Incrementally builds one data fragment.
///
/// Appends return the *absolute* byte address of the appended item, which
/// is what the log layer reports back to services ("when a service stores
/// a block in the log, the log layer responds with the FID and offset of
/// the block", §2.1.1).
#[derive(Debug)]
pub struct FragmentBuilder {
    header: FragmentHeader,
    buf: Vec<u8>,
    header_len: usize,
    capacity: usize,
    entries: u32,
    marked: bool,
}

impl FragmentBuilder {
    /// Starts a fragment. `header.body_len`/`body_crc` are patched at
    /// seal time; `capacity` bounds the total fragment size.
    pub fn new(mut header: FragmentHeader, capacity: usize) -> Self {
        header.body_len = 0;
        header.body_crc = 0;
        let header_len = header.encoded_len();
        assert!(
            capacity > header_len,
            "fragment capacity {capacity} smaller than header {header_len}"
        );
        let mut buf = Vec::with_capacity(capacity);
        buf.resize(header_len, 0); // placeholder; rewritten at seal
        FragmentBuilder {
            header,
            buf,
            header_len,
            capacity,
            entries: 0,
            marked: false,
        }
    }

    /// The fragment id being built.
    pub fn fid(&self) -> FragmentId {
        self.header.fid
    }

    /// Bytes still available for entries.
    pub fn remaining(&self) -> usize {
        self.capacity - self.buf.len()
    }

    /// Would an entry of `len` encoded bytes fit?
    pub fn fits(&self, len: usize) -> bool {
        len <= self.remaining()
    }

    /// Number of entries appended so far.
    pub fn entry_count(&self) -> u32 {
        self.entries
    }

    /// `true` if no entries have been appended.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Current fragment length (header + body so far).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Reads bytes already appended to this (still open) fragment.
    /// Entries are immutable once appended, so serving reads from the
    /// build buffer is safe; the header region is still provisional.
    ///
    /// Returns `None` if the range extends past what has been appended
    /// or into the unsealed header.
    pub fn read_range(&self, offset: u32, len: u32) -> Option<&[u8]> {
        let start = offset as usize;
        let end = start + len as usize;
        if start < self.header_len || end > self.buf.len() {
            return None;
        }
        Some(&self.buf[start..end])
    }

    fn append_entry(&mut self, entry: &Entry) -> u32 {
        let offset = self.buf.len() as u32;
        let mut w = ByteWriter::with_capacity(entry.encoded_len());
        entry.encode(&mut w);
        debug_assert_eq!(w.len(), entry.encoded_len());
        self.buf.extend_from_slice(w.as_slice());
        self.entries += 1;
        offset
    }

    /// Appends a block entry, returning the address of its data payload.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not fit — callers check [`Self::fits`]
    /// first (the log layer seals and rolls to a new fragment instead).
    pub fn append_block(&mut self, service: ServiceId, create: &[u8], data: &[u8]) -> BlockAddr {
        let entry = Entry::Block {
            service,
            create: create.to_vec(),
            data: data.to_vec(),
        };
        assert!(self.fits(entry.encoded_len()), "block does not fit");
        let entry_offset = self.append_entry(&entry);
        let data_offset = entry_offset + Entry::block_data_offset(create.len()) as u32;
        BlockAddr::new(self.header.fid, data_offset, data.len() as u32)
    }

    /// Appends a service record, returning its entry offset.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not fit (see [`Self::append_block`]).
    pub fn append_record(&mut self, service: ServiceId, kind: u16, data: &[u8]) -> u32 {
        let entry = Entry::Record {
            service,
            kind,
            data: data.to_vec(),
        };
        assert!(self.fits(entry.encoded_len()), "record does not fit");
        self.append_entry(&entry)
    }

    /// Appends a block-deletion record.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not fit (see [`Self::append_block`]).
    pub fn append_delete(&mut self, service: ServiceId, addr: BlockAddr) -> u32 {
        let entry = Entry::Delete { service, addr };
        assert!(self.fits(entry.encoded_len()), "delete does not fit");
        self.append_entry(&entry)
    }

    /// Appends a checkpoint entry and marks the fragment.
    ///
    /// # Panics
    ///
    /// Panics if the entry does not fit (see [`Self::append_block`]).
    pub fn append_checkpoint(&mut self, service: ServiceId, data: &[u8]) -> u32 {
        let entry = Entry::Checkpoint {
            service,
            data: data.to_vec(),
        };
        assert!(self.fits(entry.encoded_len()), "checkpoint does not fit");
        self.marked = true;
        self.append_entry(&entry)
    }

    /// Forces the fragment to be stored *marked* even without a checkpoint
    /// entry. Recovery uses this to write an anchor fragment (checkpoint
    /// directory only) past a torn-tail gap.
    pub fn mark(&mut self) {
        self.marked = true;
    }

    /// Finalizes the fragment: fills in body length/CRC and the header
    /// checksum.
    pub fn seal(mut self) -> SealedFragment {
        let body = &self.buf[self.header_len..];
        self.header.body_len = body.len() as u32;
        self.header.body_crc = crc32(body);
        if self.marked {
            self.header.flags |= FLAG_MARKED;
        }
        let mut w = ByteWriter::with_capacity(self.header_len);
        self.header.encode(&mut w);
        debug_assert_eq!(w.len(), self.header_len);
        self.buf[..self.header_len].copy_from_slice(w.as_slice());
        SealedFragment {
            header: self.header,
            bytes: self.buf.into(),
            marked: self.marked,
        }
    }
}

/// A parsed fragment: header plus located entries.
#[derive(Debug, Clone)]
pub struct FragmentView {
    /// The fragment header.
    pub header: FragmentHeader,
    /// Entries in log order with their addresses.
    pub entries: Vec<LocatedEntry>,
}

impl FragmentView {
    /// Parses and verifies a complete fragment.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::Corrupt`] on checksum mismatch or malformed
    /// entries. Parity fragments parse with an empty entry list (their
    /// body is XOR data, not entries).
    pub fn parse(bytes: &[u8]) -> Result<FragmentView> {
        let mut r = ByteReader::new(bytes);
        let header = FragmentHeader::decode(&mut r)?;
        let header_len = r.position();
        let body_end = header_len + header.body_len as usize;
        if body_end > bytes.len() {
            return Err(SwarmError::corrupt(format!(
                "fragment truncated: header says body ends at {body_end}, have {}",
                bytes.len()
            )));
        }
        let body = &bytes[header_len..body_end];
        if crc32(body) != header.body_crc {
            return Err(SwarmError::corrupt("fragment body checksum mismatch"));
        }
        let mut entries = Vec::new();
        if !header.is_parity() {
            let mut er = ByteReader::new(body);
            while !er.is_empty() {
                let entry_offset = (header_len + er.position()) as u32;
                let entry = Entry::decode(&mut er)?;
                let block_addr = match &entry {
                    Entry::Block { create, data, .. } => Some(BlockAddr::new(
                        header.fid,
                        entry_offset + Entry::block_data_offset(create.len()) as u32,
                        data.len() as u32,
                    )),
                    _ => None,
                };
                entries.push(LocatedEntry {
                    entry,
                    entry_offset,
                    block_addr,
                });
            }
        }
        Ok(FragmentView { header, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::ClientId;

    fn header(fid_seq: u64) -> FragmentHeader {
        FragmentHeader {
            flags: 0,
            fid: FragmentId::new(ClientId::new(1), fid_seq),
            stripe: StripeSeq::new(0),
            stripe_first_seq: 0,
            member_count: 3,
            my_index: fid_seq as u8,
            parity_index: 2,
            body_len: 0,
            body_crc: 0,
            group: vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)],
            member_lens: vec![],
        }
    }

    #[test]
    fn header_roundtrip() {
        let mut h = header(1);
        h.body_len = 123;
        h.body_crc = 456;
        h.member_lens = vec![100, 200];
        let buf = h.encode_to_vec();
        assert_eq!(buf.len(), h.encoded_len());
        assert_eq!(FragmentHeader::decode_all(&buf).unwrap(), h);
    }

    #[test]
    fn header_checksum_detects_flips() {
        let h = header(0);
        let mut buf = h.encode_to_vec();
        buf[10] ^= 1;
        assert!(parse_header(&buf).is_err());
    }

    #[test]
    fn header_parses_from_oversized_prefix() {
        let h = header(0);
        let mut buf = h.encode_to_vec();
        buf.extend_from_slice(&[0xff; 300]); // trailing body bytes
        let parsed = parse_header(&buf).unwrap();
        assert_eq!(parsed, h);
    }

    #[test]
    fn locate_header_len_covers_max_header() {
        let h = FragmentHeader {
            group: (0..crate::stripe::MAX_WIDTH as u32)
                .map(ServerId::new)
                .collect(),
            member_lens: vec![0; crate::stripe::MAX_WIDTH],
            member_count: crate::stripe::MAX_WIDTH as u8,
            ..header(0)
        };
        assert!(h.encoded_len() as u32 <= LOCATE_HEADER_LEN);
    }

    #[test]
    fn build_seal_parse_roundtrip() {
        let mut b = FragmentBuilder::new(header(0), 8192);
        let a1 = b.append_block(ServiceId::new(1), b"meta1", b"block one data");
        let r1 = b.append_record(ServiceId::new(1), 42, b"record payload");
        let a2 = b.append_block(ServiceId::new(2), b"", b"second");
        b.append_delete(ServiceId::new(1), a1);
        b.append_checkpoint(ServiceId::new(1), b"ckpt");
        let sealed = b.seal();
        assert!(sealed.marked);
        assert!(sealed.header.flags & FLAG_MARKED != 0);

        let view = FragmentView::parse(&sealed.bytes).unwrap();
        assert_eq!(view.entries.len(), 5);
        // Block addresses computed at append time match parse-time ones.
        assert_eq!(view.entries[0].block_addr, Some(a1));
        assert_eq!(view.entries[2].block_addr, Some(a2));
        assert_eq!(view.entries[1].entry_offset, r1);
        // The data bytes really live at the address.
        let addr = a1;
        assert_eq!(
            &sealed.bytes[addr.offset as usize..addr.end() as usize],
            b"block one data"
        );
        match &view.entries[4].entry {
            Entry::Checkpoint { data, .. } => assert_eq!(data, b"ckpt"),
            e => panic!("{e:?}"),
        }
    }

    #[test]
    fn builder_capacity_accounting() {
        let h = header(0);
        let hlen = h.encoded_len();
        let mut b = FragmentBuilder::new(h, hlen + 100);
        assert_eq!(b.remaining(), 100);
        assert!(b.is_empty());
        let e = Entry::Record {
            service: ServiceId::new(1),
            kind: 0,
            data: vec![0; 50],
        };
        assert!(b.fits(e.encoded_len()));
        b.append_record(ServiceId::new(1), 0, &[0; 50]);
        assert!(!b.fits(e.encoded_len()));
        assert_eq!(b.entry_count(), 1);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn overfull_append_panics() {
        let h = header(0);
        let hlen = h.encoded_len();
        let mut b = FragmentBuilder::new(h, hlen + 10);
        b.append_record(ServiceId::new(1), 0, &[0; 50]);
    }

    #[test]
    fn corrupt_body_detected() {
        let mut b = FragmentBuilder::new(header(0), 4096);
        b.append_block(ServiceId::new(1), b"", b"data");
        let sealed = b.seal();
        let mut bytes = sealed.bytes.to_vec();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        assert!(FragmentView::parse(&bytes).is_err());
    }

    #[test]
    fn truncated_fragment_detected() {
        let mut b = FragmentBuilder::new(header(0), 4096);
        b.append_block(ServiceId::new(1), b"", b"data");
        let sealed = b.seal();
        let cut = &sealed.bytes[..sealed.bytes.len() - 2];
        assert!(FragmentView::parse(cut).is_err());
    }

    #[test]
    fn parity_fragment_parses_without_entries() {
        let mut h = header(2);
        h.flags = FLAG_PARITY;
        h.member_lens = vec![10, 20];
        let body = vec![0xab; 64];
        h.body_len = body.len() as u32;
        h.body_crc = crc32(&body);
        let mut w = ByteWriter::new();
        h.encode(&mut w);
        w.put_raw(&body);
        let view = FragmentView::parse(w.as_slice()).unwrap();
        assert!(view.header.is_parity());
        assert!(view.entries.is_empty());
    }
}
