//! Parity computation (§2.1.2).
//!
//! "A stripe's parity is computed as its fragments are written": the
//! [`ParityAccumulator`] folds each sealed data fragment into `m` running
//! parity buffers, so by the time the last data fragment of a stripe ships,
//! every parity fragment is ready too. Parity row 0 is the paper's XOR
//! (the all-ones row of the normalized Cauchy matrix — see [`crate::gf`]);
//! rows 1.. are GF(2^8) Reed–Solomon combinations, and together the `m`
//! rows survive any `m` concurrent member losses. Fragments in a stripe
//! may have different lengths (the final stripe before a flush can be
//! short); shorter fragments are treated as zero-padded, and the true
//! lengths are recorded in every parity fragment's header so
//! reconstruction can trim its output.

use swarm_types::{crc32, ByteWriter, Encode, FragmentId};

use crate::fragment::{FragmentHeader, SealedFragment, FLAG_PARITY};
use crate::gf;

/// XORs `src` into `dst`, growing `dst` with zero padding if needed.
///
/// The hot loop works a u64 word at a time (`chunks_exact` pairs), which
/// the compiler further widens to SIMD; the sub-word tail is folded
/// byte-wise. Results are identical to the byte loop for every length and
/// alignment (the words are assembled with native-endian loads/stores, and
/// XOR is bytewise-independent).
pub fn xor_into(dst: &mut Vec<u8>, src: &[u8]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    let n = src.len();
    let mut d_words = dst[..n].chunks_exact_mut(8);
    let mut s_words = src.chunks_exact(8);
    for (d, s) in (&mut d_words).zip(&mut s_words) {
        let word = u64::from_ne_bytes(d[..8].try_into().expect("chunk is 8 bytes"))
            ^ u64::from_ne_bytes(s[..8].try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in d_words.into_remainder().iter_mut().zip(s_words.remainder()) {
        *d ^= s;
    }
}

/// Reference byte-at-a-time XOR, kept for differential tests and as the
/// benchmark baseline. The per-byte `black_box` pins the loop to scalar
/// code so the comparison measures the word-wide kernel, not the
/// auto-vectorizer.
#[doc(hidden)]
pub fn xor_into_baseline(dst: &mut Vec<u8>, src: &[u8]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = std::hint::black_box(*d ^ *s);
    }
}

/// Accumulates `m` parity rows over the data fragments of one stripe as
/// they seal.
///
/// Row 0 is always plain XOR ([`xor_into`] — the all-ones coding row), so
/// single-parity stripes pay no table lookups and produce bytes identical
/// to the paper's XOR parity. Rows 1.. fold each member through the
/// word-wide GF(2^8) kernel with its [`gf::coding_row`] coefficient.
#[derive(Debug)]
pub struct ParityAccumulator {
    rows: Vec<Vec<u8>>,
    /// Coding rows 1..m (row 0 is implicit all-ones); empty when `m == 1`.
    coding: Vec<Vec<u8>>,
    members: Vec<(FragmentId, u32)>,
}

impl Default for ParityAccumulator {
    fn default() -> Self {
        ParityAccumulator::new()
    }
}

impl ParityAccumulator {
    /// Starts an empty single-parity (XOR) accumulator — the paper's
    /// configuration (one per in-flight stripe).
    pub fn new() -> Self {
        ParityAccumulator {
            rows: vec![Vec::new()],
            coding: Vec::new(),
            members: Vec::new(),
        }
    }

    /// Starts an accumulator for a `data + parity` stripe. `parity == 1`
    /// is identical to [`ParityAccumulator::new`].
    pub fn with_geometry(data: usize, parity: usize) -> Self {
        debug_assert!(data >= 1 && parity >= 1);
        ParityAccumulator {
            rows: vec![Vec::new(); parity],
            coding: (1..parity).map(|j| gf::coding_row(data, j)).collect(),
            members: Vec::new(),
        }
    }

    /// Number of parity rows this accumulator seals (`m`).
    pub fn parity_count(&self) -> usize {
        self.rows.len()
    }

    /// Folds a sealed data fragment into every parity row.
    pub fn add(&mut self, fragment: &SealedFragment) {
        let i = self.members.len();
        xor_into(&mut self.rows[0], &fragment.bytes);
        for (row, coeffs) in self.rows[1..].iter_mut().zip(&self.coding) {
            gf::mul_into(row, &fragment.bytes, coeffs[i]);
        }
        self.members.push((fragment.fid(), fragment.len()));
    }

    /// Number of data fragments folded in so far.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// `true` if nothing has been folded in.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member fragment lengths accumulated so far.
    pub fn member_lens(&self) -> Vec<u32> {
        self.members.iter().map(|(_, len)| *len).collect()
    }

    /// Finalizes a single-parity accumulator into its parity fragment.
    ///
    /// `header` must describe the parity member (its fid, index, stripe
    /// membership); this method fills in the parity flag, body fields, and
    /// member length table.
    ///
    /// # Panics
    ///
    /// Panics if the accumulator was built with more than one parity row —
    /// use [`ParityAccumulator::build_parities`] for those.
    pub fn build_parity(self, header: FragmentHeader) -> SealedFragment {
        assert_eq!(
            self.rows.len(),
            1,
            "multi-parity stripes use build_parities"
        );
        self.build_parities([header])
            .pop()
            .expect("one row in, one out")
    }

    /// Finalizes into `m` parity fragments, one per row, consuming the
    /// accumulator. `headers` must describe the parity members in row
    /// order (member indices `k`, `k+1`, …); each gets the parity flag,
    /// body fields, and the shared member length table filled in.
    pub fn build_parities(
        self,
        headers: impl IntoIterator<Item = FragmentHeader>,
    ) -> Vec<SealedFragment> {
        let lens = self.member_lens();
        let mut out = Vec::with_capacity(self.rows.len());
        let mut headers = headers.into_iter();
        for body in self.rows {
            let mut header = headers.next().expect("a header per parity row");
            header.flags |= FLAG_PARITY;
            header.member_lens = lens.clone();
            header.body_len = body.len() as u32;
            header.body_crc = crc32(&body);
            let mut w = ByteWriter::with_capacity(header.encoded_len() + body.len());
            header.encode(&mut w);
            w.put_raw(&body);
            out.push(SealedFragment {
                header,
                bytes: w.into_bytes().into(),
                marked: false,
            });
        }
        assert!(headers.next().is_none(), "a header per parity row");
        out
    }

    /// Reconstructs a missing data fragment from the parity *body* and the
    /// surviving data fragments' bytes, trimming to `true_len`.
    ///
    /// The caller supplies the parity fragment's body (XOR of all data
    /// members, zero-padded) and every surviving data member's full bytes.
    pub fn reconstruct(
        parity_body: &[u8],
        surviving: impl IntoIterator<Item = Vec<u8>>,
        true_len: usize,
    ) -> Vec<u8> {
        let mut buf = parity_body.to_vec();
        for frag in surviving {
            xor_into(&mut buf, &frag);
        }
        buf.truncate(true_len);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use swarm_types::{ClientId, ServerId, ServiceId, StripeSeq};

    use crate::fragment::FragmentBuilder;

    fn header(seq: u64, idx: u8, count: u8) -> FragmentHeader {
        FragmentHeader {
            flags: 0,
            fid: FragmentId::new(ClientId::new(1), seq),
            stripe: StripeSeq::new(0),
            stripe_first_seq: 0,
            member_count: count,
            my_index: idx,
            parity_index: count - 1,
            body_len: 0,
            body_crc: 0,
            group: (0..count as u32).map(ServerId::new).collect(),
            member_lens: vec![],
        }
    }

    fn data_fragment(seq: u64, idx: u8, count: u8, payload: &[u8]) -> SealedFragment {
        let mut b = FragmentBuilder::new(header(seq, idx, count), 1 << 16);
        b.append_block(ServiceId::new(1), b"", payload);
        b.seal()
    }

    #[test]
    fn xor_into_extends_and_xors() {
        let mut dst = vec![0b1010];
        xor_into(&mut dst, &[0b0110, 0b1111]);
        assert_eq!(dst, vec![0b1100, 0b1111]);
    }

    #[test]
    fn word_kernel_matches_baseline_at_all_lengths() {
        // Cover every word/tail split up to a few words, plus a large
        // buffer, for both src-longer and dst-longer shapes.
        let pattern: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        for &(dst_len, src_len) in &[
            (0usize, 0usize),
            (0, 7),
            (3, 29),
            (29, 3),
            (8, 8),
            (64, 63),
            (63, 64),
            (4096, 4000),
            (4000, 4096),
        ] {
            let mut fast = pattern[..dst_len].to_vec();
            let mut slow = fast.clone();
            xor_into(&mut fast, &pattern[..src_len]);
            xor_into_baseline(&mut slow, &pattern[..src_len]);
            assert_eq!(fast, slow, "dst {dst_len} src {src_len}");
        }
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = vec![1u8, 2, 3, 4];
        let mut acc = Vec::new();
        xor_into(&mut acc, &a);
        xor_into(&mut acc, &a);
        assert!(acc.iter().all(|&b| b == 0));
    }

    #[test]
    fn any_single_member_is_reconstructible() {
        // Three data fragments of different lengths + parity.
        let frags = vec![
            data_fragment(0, 0, 4, &[1u8; 100]),
            data_fragment(1, 1, 4, &[2u8; 500]),
            data_fragment(2, 2, 4, &[3u8; 50]),
        ];
        let mut acc = ParityAccumulator::new();
        for f in &frags {
            acc.add(f);
        }
        let lens = acc.member_lens();
        let parity = acc.build_parity(header(3, 3, 4));
        let parity_view = crate::fragment::FragmentView::parse(&parity.bytes).unwrap();
        assert!(parity_view.header.is_parity());
        assert_eq!(parity_view.header.member_lens, lens);

        let parity_header_len = parity.header.encoded_len();
        let parity_body = &parity.bytes[parity_header_len..];

        for lost in 0..3 {
            let surviving: Vec<Vec<u8>> = frags
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, f)| f.bytes.to_vec())
                .collect();
            let rebuilt =
                ParityAccumulator::reconstruct(parity_body, surviving, lens[lost] as usize);
            assert_eq!(rebuilt, frags[lost].bytes, "member {lost}");
            // Rebuilt bytes parse as a valid fragment.
            crate::fragment::FragmentView::parse(&rebuilt).unwrap();
        }
    }

    #[test]
    fn parity_of_single_fragment_is_a_mirror() {
        // The 1-client/2-server minimum configuration (§3.4): stripe =
        // one data fragment + parity ⇒ parity body == data bytes.
        let f = data_fragment(0, 0, 2, b"mirrored payload");
        let mut acc = ParityAccumulator::new();
        acc.add(&f);
        let parity = acc.build_parity(header(1, 1, 2));
        let body_start = parity.header.encoded_len();
        assert_eq!(&parity.bytes[body_start..], &f.bytes[..]);
    }

    #[test]
    fn single_parity_rs_is_bitwise_xor() {
        // m = 1 through with_geometry must produce byte-identical output
        // to the paper's XOR accumulator, whatever k is.
        for k in [1u8, 3, 7] {
            let frags: Vec<SealedFragment> = (0..k)
                .map(|i| {
                    data_fragment(
                        i as u64,
                        i,
                        k + 1,
                        &vec![i.wrapping_mul(37); 64 + i as usize * 111],
                    )
                })
                .collect();
            let mut xor = ParityAccumulator::new();
            let mut rs = ParityAccumulator::with_geometry(k as usize, 1);
            for f in &frags {
                xor.add(f);
                rs.add(f);
            }
            let a = xor.build_parity(header(k as u64, k, k + 1));
            let b = rs.build_parity(header(k as u64, k, k + 1));
            assert_eq!(a.bytes, b.bytes, "k={k}");
        }
    }

    fn rs_headers(k: u8, m: u8) -> Vec<FragmentHeader> {
        (0..m)
            .map(|j| {
                let mut h = header((k + j) as u64, k + j, k + m);
                h.parity_index = k;
                h
            })
            .collect()
    }

    #[test]
    fn multi_parity_row_zero_is_xor() {
        // The first of m parities is still plain XOR: a 1-down failure in
        // any geometry can be repaired by the old XOR path.
        let frags = vec![
            data_fragment(0, 0, 6, &[5u8; 320]),
            data_fragment(1, 1, 6, &[9u8; 17]),
            data_fragment(2, 2, 6, &[13u8; 199]),
            data_fragment(3, 3, 6, &[17u8; 64]),
        ];
        let mut xor = ParityAccumulator::new();
        let mut rs = ParityAccumulator::with_geometry(4, 2);
        for f in &frags {
            xor.add(f);
            rs.add(f);
        }
        let xor_parity = xor.build_parity({
            let mut h = header(4, 4, 6);
            h.parity_index = 4;
            h
        });
        let parities = rs.build_parities(rs_headers(4, 2));
        assert_eq!(parities.len(), 2);
        assert_eq!(parities[0].bytes, xor_parity.bytes);
        assert_ne!(
            &parities[1].bytes[parities[1].header.encoded_len()..],
            &parities[0].bytes[parities[0].header.encoded_len()..],
        );
    }

    /// Decodes the erased members of a stripe from ≥k survivors using the
    /// gf kernel — the same math `reconstruct.rs` runs against fetched
    /// bytes.
    fn rs_decode(k: usize, survivors: &[(usize, &[u8])], wanted: &[usize]) -> Vec<Vec<u8>> {
        let indices: Vec<usize> = survivors.iter().map(|(i, _)| *i).collect();
        let rows = crate::gf::decode_rows(k, &indices, wanted).expect("MDS");
        rows.into_iter()
            .map(|row| {
                let mut out = Vec::new();
                for ((_, bytes), &c) in survivors.iter().zip(&row) {
                    crate::gf::mul_into(&mut out, bytes, c);
                }
                out
            })
            .collect()
    }

    proptest! {
        #[test]
        fn prop_rs_roundtrips_every_erasure_pattern(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..400), 2..5),
            m in 2usize..4,
        ) {
            let k = payloads.len();
            let width = (k + m) as u8;
            let frags: Vec<SealedFragment> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let mut h = header(i as u64, i as u8, width);
                    h.parity_index = k as u8;
                    let mut b = FragmentBuilder::new(h, 1 << 16);
                    b.append_block(ServiceId::new(1), b"", p);
                    b.seal()
                })
                .collect();
            let mut acc = ParityAccumulator::with_geometry(k, m);
            for f in &frags {
                acc.add(f);
            }
            let lens = acc.member_lens();
            let parities = acc.build_parities(rs_headers(k as u8, m as u8));
            // Member symbol i: data members contribute their full bytes
            // (zero-padded by the kernels); parities contribute bodies.
            let symbol = |i: usize| -> Vec<u8> {
                if i < k {
                    frags[i].bytes.to_vec()
                } else {
                    let p = &parities[i - k];
                    p.bytes[p.header.encoded_len()..].to_vec()
                }
            };
            // Every erasure pattern of size exactly m (subsumes < m).
            let width = k + m;
            for pattern in 0u32..(1 << width) {
                if pattern.count_ones() as usize != m {
                    continue;
                }
                let erased: Vec<usize> =
                    (0..width).filter(|i| pattern & (1 << i) != 0).collect();
                let surv_syms: Vec<Vec<u8>> = (0..width)
                    .filter(|i| !erased.contains(i))
                    .map(symbol)
                    .collect();
                let survivors: Vec<(usize, &[u8])> = (0..width)
                    .filter(|i| !erased.contains(i))
                    .zip(surv_syms.iter().map(|s| s.as_slice()))
                    .take(k)
                    .collect();
                let wanted: Vec<usize> =
                    erased.iter().copied().filter(|&i| i < k).collect();
                let rebuilt = rs_decode(k, &survivors, &wanted);
                for (w, got) in wanted.iter().zip(&rebuilt) {
                    let mut expect = frags[*w].bytes.to_vec();
                    // Decoded symbols are stripe-width, zero-padded.
                    let mut got = got.clone();
                    got.truncate(lens[*w] as usize);
                    expect.truncate(lens[*w] as usize);
                    prop_assert_eq!(&got, &expect, "pattern {:b} member {}", pattern, w);
                }
            }
        }

        #[test]
        fn prop_reconstruction_recovers_any_member(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..800), 1..6),
            lost_idx in 0usize..6,
        ) {
            let count = payloads.len() as u8 + 1;
            let frags: Vec<SealedFragment> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| data_fragment(i as u64, i as u8, count, p))
                .collect();
            let lost = lost_idx % frags.len();
            let mut acc = ParityAccumulator::new();
            for f in &frags {
                acc.add(f);
            }
            let lens = acc.member_lens();
            let parity = acc.build_parity(header(payloads.len() as u64, count - 1, count));
            let body = &parity.bytes[parity.header.encoded_len()..];
            let surviving: Vec<Vec<u8>> = frags
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, f)| f.bytes.to_vec())
                .collect();
            let rebuilt =
                ParityAccumulator::reconstruct(body, surviving, lens[lost] as usize);
            prop_assert_eq!(&rebuilt, &frags[lost].bytes);
        }
    }
}
