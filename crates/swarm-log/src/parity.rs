//! Parity computation (§2.1.2).
//!
//! "A stripe's parity is computed as its fragments are written": the
//! [`ParityAccumulator`] XORs each sealed data fragment into a running
//! buffer, so by the time the last data fragment of a stripe ships, the
//! parity fragment is ready too. Fragments in a stripe may have different
//! lengths (the final stripe before a flush can be short); shorter
//! fragments are treated as zero-padded, and the true lengths are recorded
//! in the parity fragment's header so reconstruction can trim its output.

use swarm_types::{crc32, ByteWriter, Encode, FragmentId};

use crate::fragment::{FragmentHeader, SealedFragment, FLAG_PARITY};

/// XORs `src` into `dst`, growing `dst` with zero padding if needed.
///
/// The hot loop works a u64 word at a time (`chunks_exact` pairs), which
/// the compiler further widens to SIMD; the sub-word tail is folded
/// byte-wise. Results are identical to the byte loop for every length and
/// alignment (the words are assembled with native-endian loads/stores, and
/// XOR is bytewise-independent).
pub fn xor_into(dst: &mut Vec<u8>, src: &[u8]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    let n = src.len();
    let mut d_words = dst[..n].chunks_exact_mut(8);
    let mut s_words = src.chunks_exact(8);
    for (d, s) in (&mut d_words).zip(&mut s_words) {
        let word = u64::from_ne_bytes(d[..8].try_into().expect("chunk is 8 bytes"))
            ^ u64::from_ne_bytes(s[..8].try_into().expect("chunk is 8 bytes"));
        d.copy_from_slice(&word.to_ne_bytes());
    }
    for (d, s) in d_words.into_remainder().iter_mut().zip(s_words.remainder()) {
        *d ^= s;
    }
}

/// Reference byte-at-a-time XOR, kept for differential tests and as the
/// benchmark baseline. The per-byte `black_box` pins the loop to scalar
/// code so the comparison measures the word-wide kernel, not the
/// auto-vectorizer.
#[doc(hidden)]
pub fn xor_into_baseline(dst: &mut Vec<u8>, src: &[u8]) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = std::hint::black_box(*d ^ *s);
    }
}

/// Accumulates the XOR of data fragments as they seal.
#[derive(Debug, Default)]
pub struct ParityAccumulator {
    buf: Vec<u8>,
    members: Vec<(FragmentId, u32)>,
}

impl ParityAccumulator {
    /// Starts an empty accumulator (one per in-flight stripe).
    pub fn new() -> Self {
        ParityAccumulator {
            buf: Vec::new(),
            members: Vec::new(),
        }
    }

    /// Folds a sealed data fragment into the parity.
    pub fn add(&mut self, fragment: &SealedFragment) {
        xor_into(&mut self.buf, &fragment.bytes);
        self.members.push((fragment.fid(), fragment.len()));
    }

    /// Number of data fragments folded in so far.
    pub fn member_count(&self) -> usize {
        self.members.len()
    }

    /// `true` if nothing has been folded in.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// The member fragment lengths accumulated so far.
    pub fn member_lens(&self) -> Vec<u32> {
        self.members.iter().map(|(_, len)| *len).collect()
    }

    /// Finalizes into a parity fragment.
    ///
    /// `header` must describe the parity member (its fid, index, stripe
    /// membership); this method fills in the parity flag, body fields, and
    /// member length table.
    pub fn build_parity(self, mut header: FragmentHeader) -> SealedFragment {
        header.flags |= FLAG_PARITY;
        header.member_lens = self.member_lens();
        header.body_len = self.buf.len() as u32;
        header.body_crc = crc32(&self.buf);
        let mut w = ByteWriter::with_capacity(header.encoded_len() + self.buf.len());
        header.encode(&mut w);
        w.put_raw(&self.buf);
        SealedFragment {
            header,
            bytes: w.into_bytes().into(),
            marked: false,
        }
    }

    /// Reconstructs a missing data fragment from the parity *body* and the
    /// surviving data fragments' bytes, trimming to `true_len`.
    ///
    /// The caller supplies the parity fragment's body (XOR of all data
    /// members, zero-padded) and every surviving data member's full bytes.
    pub fn reconstruct(
        parity_body: &[u8],
        surviving: impl IntoIterator<Item = Vec<u8>>,
        true_len: usize,
    ) -> Vec<u8> {
        let mut buf = parity_body.to_vec();
        for frag in surviving {
            xor_into(&mut buf, &frag);
        }
        buf.truncate(true_len);
        buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use swarm_types::{ClientId, ServerId, ServiceId, StripeSeq};

    use crate::fragment::FragmentBuilder;

    fn header(seq: u64, idx: u8, count: u8) -> FragmentHeader {
        FragmentHeader {
            flags: 0,
            fid: FragmentId::new(ClientId::new(1), seq),
            stripe: StripeSeq::new(0),
            stripe_first_seq: 0,
            member_count: count,
            my_index: idx,
            parity_index: count - 1,
            body_len: 0,
            body_crc: 0,
            group: (0..count as u32).map(ServerId::new).collect(),
            member_lens: vec![],
        }
    }

    fn data_fragment(seq: u64, idx: u8, count: u8, payload: &[u8]) -> SealedFragment {
        let mut b = FragmentBuilder::new(header(seq, idx, count), 1 << 16);
        b.append_block(ServiceId::new(1), b"", payload);
        b.seal()
    }

    #[test]
    fn xor_into_extends_and_xors() {
        let mut dst = vec![0b1010];
        xor_into(&mut dst, &[0b0110, 0b1111]);
        assert_eq!(dst, vec![0b1100, 0b1111]);
    }

    #[test]
    fn word_kernel_matches_baseline_at_all_lengths() {
        // Cover every word/tail split up to a few words, plus a large
        // buffer, for both src-longer and dst-longer shapes.
        let pattern: Vec<u8> = (0..4096u32).map(|i| (i * 31 % 251) as u8).collect();
        for &(dst_len, src_len) in &[
            (0usize, 0usize),
            (0, 7),
            (3, 29),
            (29, 3),
            (8, 8),
            (64, 63),
            (63, 64),
            (4096, 4000),
            (4000, 4096),
        ] {
            let mut fast = pattern[..dst_len].to_vec();
            let mut slow = fast.clone();
            xor_into(&mut fast, &pattern[..src_len]);
            xor_into_baseline(&mut slow, &pattern[..src_len]);
            assert_eq!(fast, slow, "dst {dst_len} src {src_len}");
        }
    }

    #[test]
    fn xor_is_self_inverse() {
        let a = vec![1u8, 2, 3, 4];
        let mut acc = Vec::new();
        xor_into(&mut acc, &a);
        xor_into(&mut acc, &a);
        assert!(acc.iter().all(|&b| b == 0));
    }

    #[test]
    fn any_single_member_is_reconstructible() {
        // Three data fragments of different lengths + parity.
        let frags = vec![
            data_fragment(0, 0, 4, &[1u8; 100]),
            data_fragment(1, 1, 4, &[2u8; 500]),
            data_fragment(2, 2, 4, &[3u8; 50]),
        ];
        let mut acc = ParityAccumulator::new();
        for f in &frags {
            acc.add(f);
        }
        let lens = acc.member_lens();
        let parity = acc.build_parity(header(3, 3, 4));
        let parity_view = crate::fragment::FragmentView::parse(&parity.bytes).unwrap();
        assert!(parity_view.header.is_parity());
        assert_eq!(parity_view.header.member_lens, lens);

        let parity_header_len = parity.header.encoded_len();
        let parity_body = &parity.bytes[parity_header_len..];

        for lost in 0..3 {
            let surviving: Vec<Vec<u8>> = frags
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, f)| f.bytes.to_vec())
                .collect();
            let rebuilt =
                ParityAccumulator::reconstruct(parity_body, surviving, lens[lost] as usize);
            assert_eq!(rebuilt, frags[lost].bytes, "member {lost}");
            // Rebuilt bytes parse as a valid fragment.
            crate::fragment::FragmentView::parse(&rebuilt).unwrap();
        }
    }

    #[test]
    fn parity_of_single_fragment_is_a_mirror() {
        // The 1-client/2-server minimum configuration (§3.4): stripe =
        // one data fragment + parity ⇒ parity body == data bytes.
        let f = data_fragment(0, 0, 2, b"mirrored payload");
        let mut acc = ParityAccumulator::new();
        acc.add(&f);
        let parity = acc.build_parity(header(1, 1, 2));
        let body_start = parity.header.encoded_len();
        assert_eq!(&parity.bytes[body_start..], &f.bytes[..]);
    }

    proptest! {
        #[test]
        fn prop_reconstruction_recovers_any_member(
            payloads in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 1..800), 1..6),
            lost_idx in 0usize..6,
        ) {
            let count = payloads.len() as u8 + 1;
            let frags: Vec<SealedFragment> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| data_fragment(i as u64, i as u8, count, p))
                .collect();
            let lost = lost_idx % frags.len();
            let mut acc = ParityAccumulator::new();
            for f in &frags {
                acc.add(f);
            }
            let lens = acc.member_lens();
            let parity = acc.build_parity(header(payloads.len() as u64, count - 1, count));
            let body = &parity.bytes[parity.header.encoded_len()..];
            let surviving: Vec<Vec<u8>> = frags
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != lost)
                .map(|(_, f)| f.bytes.to_vec())
                .collect();
            let rebuilt =
                ParityAccumulator::reconstruct(body, surviving, lens[lost] as usize);
            prop_assert_eq!(&rebuilt, &frags[lost].bytes);
        }
    }
}
