//! The Swarm log layer — the paper's primary contribution (§2.1).
//!
//! Swarm's basic storage abstraction is a **striped log**: each client
//! appends blocks and recovery records to its own conceptually infinite
//! log, cuts the log into 1 MB fragments, groups fragments into stripes
//! with one rotated parity member, and spreads each stripe across a group
//! of storage servers. Because every client owns its log and its parity:
//!
//! * clients never synchronize with each other,
//! * servers never synchronize with each other,
//! * any single server failure is masked by client-side XOR
//!   reconstruction, and
//! * crash recovery is checkpoint + rollforward over the client's own
//!   records.
//!
//! # Module map
//!
//! | module | paper section | what it does |
//! |--------|---------------|--------------|
//! | [`entry`] | §2.1.1, Fig 1 | blocks, records, deletes, checkpoints |
//! | [`fragment`] | §2.1.1 | self-identifying fragment format |
//! | [`stripe`] | §2.1.2 | stripe planning, rotated parity placement |
//! | [`parity`] | §2.1.2 | incremental XOR/Reed–Solomon parity, reconstruction math |
//! | [`gf`] | — | GF(2^8) kernel: word-wide multiply, Cauchy coding rows |
//! | [`writer`] | §2.1.2 | pipelined per-server fragment writers |
//! | [`log`] | §2.1 | the [`Log`] type: append / read / checkpoint / flush |
//! | [`reader`] | §2.3 | windowed, batching pipelined read engine |
//! | [`reconstruct`] | §2.3.3 | broadcast locate + XOR rebuild |
//! | [`recovery`] | §2.1.3 | anchor, checkpoint discovery, rollforward |
//!
//! # Quick start
//!
//! ```no_run
//! use std::sync::Arc;
//! use swarm_log::{Log, LogConfig};
//! use swarm_types::{ClientId, ServerId, ServiceId};
//!
//! # fn transport() -> Arc<dyn swarm_net::Transport> { unimplemented!() }
//! let config = LogConfig::new(
//!     ClientId::new(1),
//!     vec![ServerId::new(0), ServerId::new(1), ServerId::new(2)],
//! )?;
//! let log = Log::create(transport(), config)?;
//! let svc = ServiceId::new(1);
//! let addr = log.append_block(svc, b"creation info", b"payload")?;
//! log.append_record(svc, 7, b"did a thing")?;
//! log.checkpoint(svc, b"consistent state")?;
//! assert_eq!(log.read(addr)?, b"payload");
//! # Ok::<(), swarm_types::SwarmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod entry;
pub mod fragment;
pub mod gf;
pub mod log;
pub mod parity;
pub mod reader;
pub mod reconstruct;
pub mod recovery;
pub mod stripe;
pub mod writer;

pub use entry::{Entry, LocatedEntry};
pub use fragment::{FragmentBuilder, FragmentHeader, FragmentView, SealedFragment};
pub use log::{Log, LogConfig, LogPosition, LogStats};
pub use parity::ParityAccumulator;
pub use reader::{ReadEngine, BATCH_CHUNK, DEFAULT_READ_WINDOW};
pub use recovery::{recover, Replay, ReplayEntry};
pub use stripe::{StripeGroup, StripePlan};
pub use writer::{WritePool, DEFAULT_WRITE_WINDOW};
