//! Log entries: the typed items that fill a fragment's body.
//!
//! §2.1.1 and Figure 1 of the paper: the log is an ordered stream of
//! *blocks* (opaque service data) and *records* (recovery breadcrumbs).
//! The log layer automatically creates records tracking block creation and
//! deletion; services append their own records and periodic *checkpoints*.
//! The log layer never interprets the contents of blocks, creation
//! information, or service records.
//!
//! On-disk encoding (little-endian, inside the fragment body):
//!
//! ```text
//! Block:      tag=1 | service u16 | create_len u32 | create bytes | data_len u32 | data bytes
//! Record:     tag=2 | service u16 | kind u16 | len u32 | bytes
//! Delete:     tag=3 | service u16 | BlockAddr (16 bytes)
//! Checkpoint: tag=4 | service u16 | len u32 | bytes
//! ```
//!
//! A [`swarm_types::BlockAddr`] handed back by the log points directly at
//! the `data bytes` of a Block entry, so reads hit the storage server
//! without any entry parsing.

use swarm_types::{
    BlockAddr, ByteReader, ByteWriter, Decode, Encode, Result, ServiceId, SwarmError,
};

/// Entry type tags (on-disk stable).
pub mod tag {
    /// A data block.
    pub const BLOCK: u8 = 1;
    /// A service recovery record.
    pub const RECORD: u8 = 2;
    /// A block-deletion record (written by the log layer itself).
    pub const DELETE: u8 = 3;
    /// A service checkpoint.
    pub const CHECKPOINT: u8 = 4;
}

/// One parsed log entry.
///
/// Owned variant used when scanning fragments during recovery or cleaning;
/// the write path encodes entries directly into the fragment buffer
/// without materializing this type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Entry {
    /// A data block written by `service`.
    Block {
        /// Service that created the block.
        service: ServiceId,
        /// Service-specific creation information (the paper's "creation
        /// record": e.g. the inode number and file offset of the block),
        /// replayed on recovery and handed to the service when the cleaner
        /// moves the block.
        create: Vec<u8>,
        /// The block contents.
        data: Vec<u8>,
    },
    /// A service-specific recovery record.
    Record {
        /// Service that wrote the record.
        service: ServiceId,
        /// Service-chosen record type.
        kind: u16,
        /// Record payload (opaque to the log layer).
        data: Vec<u8>,
    },
    /// A deletion record for a previously written block.
    Delete {
        /// Service that owned the block.
        service: ServiceId,
        /// Address of the deleted block.
        addr: BlockAddr,
    },
    /// A checkpoint: `service`'s data structures were consistent as of this
    /// point in the log; older records are implicitly deleted (§2.1.3).
    Checkpoint {
        /// Service that checkpointed.
        service: ServiceId,
        /// Checkpoint payload (a serialized consistent state).
        data: Vec<u8>,
    },
}

impl Entry {
    /// The service associated with this entry.
    pub fn service(&self) -> ServiceId {
        match self {
            Entry::Block { service, .. }
            | Entry::Record { service, .. }
            | Entry::Delete { service, .. }
            | Entry::Checkpoint { service, .. } => *service,
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            Entry::Block { create, data, .. } => 1 + 2 + 4 + create.len() + 4 + data.len(),
            Entry::Record { data, .. } => 1 + 2 + 2 + 4 + data.len(),
            Entry::Delete { .. } => 1 + 2 + 16,
            Entry::Checkpoint { data, .. } => 1 + 2 + 4 + data.len(),
        }
    }

    /// Byte offset of a Block entry's data payload relative to the start of
    /// the entry.
    pub fn block_data_offset(create_len: usize) -> usize {
        1 + 2 + 4 + create_len + 4
    }
}

impl Encode for Entry {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Entry::Block {
                service,
                create,
                data,
            } => {
                w.put_u8(tag::BLOCK);
                service.encode(w);
                w.put_bytes(create);
                w.put_bytes(data);
            }
            Entry::Record {
                service,
                kind,
                data,
            } => {
                w.put_u8(tag::RECORD);
                service.encode(w);
                w.put_u16(*kind);
                w.put_bytes(data);
            }
            Entry::Delete { service, addr } => {
                w.put_u8(tag::DELETE);
                service.encode(w);
                addr.encode(w);
            }
            Entry::Checkpoint { service, data } => {
                w.put_u8(tag::CHECKPOINT);
                service.encode(w);
                w.put_bytes(data);
            }
        }
    }
}

impl Decode for Entry {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self> {
        let t = r.get_u8()?;
        Ok(match t {
            tag::BLOCK => Entry::Block {
                service: ServiceId::decode(r)?,
                create: r.get_bytes()?.to_vec(),
                data: r.get_bytes()?.to_vec(),
            },
            tag::RECORD => Entry::Record {
                service: ServiceId::decode(r)?,
                kind: r.get_u16()?,
                data: r.get_bytes()?.to_vec(),
            },
            tag::DELETE => Entry::Delete {
                service: ServiceId::decode(r)?,
                addr: BlockAddr::decode(r)?,
            },
            tag::CHECKPOINT => Entry::Checkpoint {
                service: ServiceId::decode(r)?,
                data: r.get_bytes()?.to_vec(),
            },
            other => return Err(SwarmError::corrupt(format!("unknown entry tag {other}"))),
        })
    }
}

/// An entry paired with its location in the log: yielded by fragment scans
/// during recovery, cleaning, and debugging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocatedEntry {
    /// The parsed entry.
    pub entry: Entry,
    /// Byte offset of the start of the entry within its fragment.
    pub entry_offset: u32,
    /// For Block entries: the address of the data payload (what services
    /// hold in their metadata). `None` otherwise.
    pub block_addr: Option<BlockAddr>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_types::{ClientId, FragmentId};

    fn svc(n: u16) -> ServiceId {
        ServiceId::new(n)
    }

    #[test]
    fn all_entry_kinds_roundtrip() {
        let addr = BlockAddr::new(FragmentId::new(ClientId::new(1), 2), 3, 4);
        let entries = vec![
            Entry::Block {
                service: svc(1),
                create: vec![1, 2],
                data: vec![3; 100],
            },
            Entry::Record {
                service: svc(2),
                kind: 7,
                data: vec![9, 9],
            },
            Entry::Delete {
                service: svc(3),
                addr,
            },
            Entry::Checkpoint {
                service: svc(4),
                data: vec![],
            },
        ];
        for e in entries {
            let buf = e.encode_to_vec();
            assert_eq!(buf.len(), e.encoded_len(), "encoded_len for {e:?}");
            assert_eq!(Entry::decode_all(&buf).unwrap(), e);
        }
    }

    #[test]
    fn block_data_offset_matches_encoding() {
        let e = Entry::Block {
            service: svc(1),
            create: vec![0xaa; 13],
            data: vec![0xbb; 50],
        };
        let buf = e.encode_to_vec();
        let off = Entry::block_data_offset(13);
        assert_eq!(&buf[off..off + 50], &[0xbb; 50][..]);
    }

    #[test]
    fn unknown_tag_rejected() {
        assert!(Entry::decode_all(&[99]).is_err());
    }

    #[test]
    fn service_accessor() {
        let e = Entry::Record {
            service: svc(5),
            kind: 0,
            data: vec![],
        };
        assert_eq!(e.service(), svc(5));
    }
}
