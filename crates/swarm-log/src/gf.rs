//! GF(2^8) arithmetic for Reed–Solomon parity.
//!
//! The field is GF(256) with the AES-adjacent primitive polynomial
//! `x^8 + x^4 + x^3 + x^2 + 1` (0x11d). Scalars multiply through
//! compile-time log/exp tables; the hot path — multiply a whole fragment
//! by a constant and fold it into an accumulator — runs word-wide with no
//! table lookups in the inner loop (see [`mul_into`]), in the style of
//! [`crate::parity::xor_into`].
//!
//! The coding matrix is a **column-normalized Cauchy matrix**: row `j`,
//! column `i` starts as `inv((k + j) ^ i)` (a Cauchy matrix over the
//! disjoint index sets `{k..k+m}` and `{0..k}`, so every square submatrix
//! is nonsingular — the MDS property), then every column is scaled by the
//! inverse of its row-0 entry. Column scaling preserves the MDS property
//! and makes row 0 all ones, so the **first parity of any geometry is
//! plain XOR** — `m = 1` Reed–Solomon is bit-identical to the paper's XOR
//! parity and rides the existing [`crate::parity::xor_into`] kernel.

use crate::parity::xor_into;

/// The field's primitive polynomial, reduced modulo `x^8` (0x11d & 0xff
/// plus the dropped high bit).
const POLY: u16 = 0x11d;

/// `EXP[i] = α^i` for α = 2, doubled past 255 so products of two logs
/// index without a modulo.
static EXP: [u8; 512] = build_exp();
/// `LOG[a]` = discrete log of `a` (LOG[0] is unused filler).
static LOG: [u8; 256] = build_log();

const fn build_exp() -> [u8; 512] {
    let mut table = [0u8; 512];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[i] = x as u8;
        table[i + 255] = x as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    // Indices 510/511 are never reached (log sums top out at 508).
    table[510] = table[0];
    table[511] = table[1];
    table
}

const fn build_log() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut x: u16 = 1;
    let mut i = 0;
    while i < 255 {
        table[x as usize] = i as u8;
        x <<= 1;
        if x & 0x100 != 0 {
            x ^= POLY;
        }
        i += 1;
    }
    table
}

/// Multiplies two field elements.
#[inline]
pub fn mul(a: u8, b: u8) -> u8 {
    if a == 0 || b == 0 {
        0
    } else {
        EXP[LOG[a as usize] as usize + LOG[b as usize] as usize]
    }
}

/// Multiplicative inverse.
///
/// # Panics
///
/// Panics on `inv(0)` — zero has no inverse, and every caller divides by
/// matrix pivots or Cauchy denominators that are nonzero by construction.
#[inline]
pub fn inv(a: u8) -> u8 {
    assert!(a != 0, "GF(2^8) zero has no inverse");
    EXP[255 - LOG[a as usize] as usize]
}

/// Bytes with bit 0 set, one per lane of a u64.
const LSB: u64 = 0x0101_0101_0101_0101;

/// Folds `c · src` into `dst` (`dst[i] ^= c * src[i]` over GF(2^8)),
/// growing `dst` with zero padding if needed — the Reed–Solomon encode
/// kernel.
///
/// The hot loop is word-wide SWAR with **no table lookups**: GF(2^8)
/// multiplication is GF(2)-linear, so `c·s` is the XOR over the set bits
/// `b` of `s` of the precomputed products `c·α^b`. Per 8-byte word that is
/// eight shift/mask/multiply/XOR rounds (~4 scalar ops per byte, which the
/// auto-vectorizer widens further) — against ~3 table loads per byte for
/// the log/exp form. `c == 1` routes to [`xor_into`] (this is what makes
/// the all-ones parity row byte-identical to XOR parity), and `c == 0`
/// only extends `dst`.
pub fn mul_into(dst: &mut Vec<u8>, src: &[u8], c: u8) {
    if c == 1 {
        return xor_into(dst, src);
    }
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    if c == 0 {
        return;
    }
    // First choice: the byte-shuffle kernel (shims/simd) — one 16-entry
    // product-table lookup per nibble, vector-wide, when the CPU has a
    // shuffle unit. `done` is 0 on other targets and always stops short
    // of a sub-vector tail; either way the word-wide SWAR path below
    // finishes the rest.
    let done = {
        let mut lo = [0u8; 16];
        let mut hi = [0u8; 16];
        for n in 0..16u8 {
            lo[n as usize] = mul(c, n);
            hi[n as usize] = mul(c, n << 4);
        }
        simd::gf8_mul_fold(&mut dst[..src.len()], src, &lo, &hi)
    };
    let dst = &mut dst[done..];
    let src = &src[done..];
    // kb[b] = c·α^b broadcast to every lane.
    let mut kb = [0u64; 8];
    for (b, k) in kb.iter_mut().enumerate() {
        *k = LSB * mul(c, 1 << b) as u64;
    }
    // Bytes of `w` with bit b set become 0xff lanes — a 0x01 pattern
    // times 0xff has no cross-lane carries, and `255x = (x << 8) - x`
    // keeps the select on shift/sub units the SLP vectorizer can pack
    // (SSE2 has no 64-bit lane multiply) — selecting c·α^b in exactly
    // those lanes.
    #[inline(always)]
    fn select(w: u64, b: usize, k: u64) -> u64 {
        let ones = (w >> b) & LSB;
        (ones << 8).wrapping_sub(ones) & k
    }
    // Four words per block, rounds outer / lanes inner: each round is the
    // same op on four independent u64s, which vectorizes, and the XOR
    // chains stay per-lane so the scalar fallback runs at ALU throughput
    // instead of chain latency.
    let n = src.len();
    let mut d_blocks = dst[..n].chunks_exact_mut(32);
    let mut s_blocks = src.chunks_exact(32);
    for (d, s) in (&mut d_blocks).zip(&mut s_blocks) {
        let mut w = [0u64; 4];
        let mut acc = [0u64; 4];
        for i in 0..4 {
            w[i] = u64::from_ne_bytes(s[i * 8..i * 8 + 8].try_into().expect("8-byte lane"));
            acc[i] = u64::from_ne_bytes(d[i * 8..i * 8 + 8].try_into().expect("8-byte lane"));
        }
        for (b, k) in kb.iter().enumerate() {
            for i in 0..4 {
                acc[i] ^= select(w[i], b, *k);
            }
        }
        for (i, a) in acc.iter().enumerate() {
            d[i * 8..i * 8 + 8].copy_from_slice(&a.to_ne_bytes());
        }
    }
    let mut d_words = d_blocks.into_remainder().chunks_exact_mut(8);
    let mut s_words = s_blocks.remainder().chunks_exact(8);
    for (d, s) in (&mut d_words).zip(&mut s_words) {
        let w = u64::from_ne_bytes(s[..8].try_into().expect("chunk is 8 bytes"));
        let mut acc = u64::from_ne_bytes(d[..8].try_into().expect("chunk is 8 bytes"));
        for (b, k) in kb.iter().enumerate() {
            acc ^= select(w, b, *k);
        }
        d.copy_from_slice(&acc.to_ne_bytes());
    }
    for (d, s) in d_words.into_remainder().iter_mut().zip(s_words.remainder()) {
        *d ^= mul(c, *s);
    }
}

/// Reference byte-at-a-time multiply-accumulate through the log/exp
/// tables, kept for differential tests and as the benchmark baseline. The
/// per-byte `black_box` pins the loop to scalar code so the comparison
/// measures the word-wide kernel, not the auto-vectorizer.
#[doc(hidden)]
pub fn mul_into_baseline(dst: &mut Vec<u8>, src: &[u8], c: u8) {
    if src.len() > dst.len() {
        dst.resize(src.len(), 0);
    }
    for (d, s) in dst.iter_mut().zip(src.iter()) {
        *d = std::hint::black_box(*d ^ mul(c, *s));
    }
}

/// Row `j` of the `m × k` coding matrix for `k` data members: the
/// column-normalized Cauchy row. Row 0 is all ones (plain XOR).
pub fn coding_row(k: usize, j: usize) -> Vec<u8> {
    debug_assert!(k + j < 256, "stripe indices exceed the field");
    (0..k)
        .map(|i| {
            let c = inv((k + j) as u8 ^ i as u8);
            let norm = inv(k as u8 ^ i as u8); // row 0 entry for column i
            mul(c, inv(norm))
        })
        .collect()
}

/// Inverts a square matrix by Gauss–Jordan elimination. Returns `None`
/// for a singular matrix — which, for matrices assembled from distinct
/// identity and [`coding_row`] rows, cannot happen (the MDS property);
/// callers treat it as corruption.
pub fn invert(mut a: Vec<Vec<u8>>) -> Option<Vec<Vec<u8>>> {
    let n = a.len();
    debug_assert!(a.iter().all(|row| row.len() == n));
    let mut out: Vec<Vec<u8>> = (0..n)
        .map(|i| (0..n).map(|j| u8::from(i == j)).collect())
        .collect();
    for col in 0..n {
        let pivot = (col..n).find(|&r| a[r][col] != 0)?;
        a.swap(col, pivot);
        out.swap(col, pivot);
        let scale = inv(a[col][col]);
        for x in 0..n {
            a[col][x] = mul(a[col][x], scale);
            out[col][x] = mul(out[col][x], scale);
        }
        for row in 0..n {
            if row == col || a[row][col] == 0 {
                continue;
            }
            let factor = a[row][col];
            for x in 0..n {
                let p = mul(factor, a[col][x]);
                let q = mul(factor, out[col][x]);
                a[row][x] ^= p;
                out[row][x] ^= q;
            }
        }
    }
    Some(out)
}

/// A survivor's coding row in the `k`-dimensional data space: data member
/// `i` contributes the unit row `e_i`, parity member `k + j` contributes
/// [`coding_row`]`(k, j)`.
pub fn member_row(k: usize, member: usize) -> Vec<u8> {
    if member < k {
        let mut row = vec![0u8; k];
        row[member] = 1;
        row
    } else {
        coding_row(k, member - k)
    }
}

/// Decode rows: given `k` survivor member indices (each `< k + m`,
/// distinct), returns for each `wanted` data index the coefficient row
/// that recombines the survivors' symbols into that data symbol.
///
/// `None` means the survivor set is not information-complete — impossible
/// for distinct members of an MDS code, so callers treat it as
/// corruption.
pub fn decode_rows(k: usize, survivors: &[usize], wanted: &[usize]) -> Option<Vec<Vec<u8>>> {
    debug_assert_eq!(survivors.len(), k);
    let a: Vec<Vec<u8>> = survivors.iter().map(|&s| member_row(k, s)).collect();
    let b = invert(a)?;
    Some(wanted.iter().map(|&w| b[w].clone()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn field_axioms_hold() {
        // Spot-check associativity/distributivity over the whole table is
        // O(2^24); sample the diagonal structure instead.
        for a in 1..=255u8 {
            assert_eq!(mul(a, inv(a)), 1, "a={a}");
            assert_eq!(mul(a, 1), a);
            assert_eq!(mul(a, 0), 0);
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), mul(b, a));
            }
        }
        // α generates the multiplicative group: EXP covers 1..=255.
        let mut seen = [false; 256];
        for i in 0..255 {
            seen[EXP[i] as usize] = true;
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), 255);
    }

    #[test]
    fn mul_matches_carryless_reference() {
        // Schoolbook carry-less multiply + reduction, independent of the
        // log/exp tables.
        fn slow_mul(a: u8, b: u8) -> u8 {
            let mut acc: u16 = 0;
            for bit in 0..8 {
                if b & (1 << bit) != 0 {
                    acc ^= (a as u16) << bit;
                }
            }
            for bit in (8..16).rev() {
                if acc & (1 << bit) != 0 {
                    acc ^= POLY << (bit - 8);
                }
            }
            acc as u8
        }
        for a in 0..=255u8 {
            for b in 0..=255u8 {
                assert_eq!(mul(a, b), slow_mul(a, b), "a={a} b={b}");
            }
        }
    }

    #[test]
    fn word_kernel_matches_baseline_at_all_alignments() {
        let pattern: Vec<u8> = (0..4096u32).map(|i| (i * 37 % 256) as u8).collect();
        for c in [0u8, 1, 2, 0x1d, 0x8e, 0xff] {
            for &(dst_len, src_len) in &[
                (0usize, 0usize),
                (0, 7),
                (3, 29),
                (29, 3),
                (8, 8),
                (64, 63),
                (63, 64),
                (4096, 4000),
                (4000, 4096),
            ] {
                let mut fast = pattern[..dst_len].to_vec();
                let mut slow = fast.clone();
                mul_into(&mut fast, &pattern[..src_len], c);
                mul_into_baseline(&mut slow, &pattern[..src_len], c);
                assert_eq!(fast, slow, "c {c} dst {dst_len} src {src_len}");
            }
        }
    }

    #[test]
    fn coding_row_zero_is_all_ones() {
        for k in 1..=61 {
            assert!(coding_row(k, 0).iter().all(|&c| c == 1), "k={k}");
        }
    }

    #[test]
    fn every_survivor_set_is_invertible() {
        // The MDS property, exhaustively: for the shipped geometries,
        // every k-subset of the k+m member rows must be invertible.
        fn subsets(n: usize, k: usize) -> Vec<Vec<usize>> {
            let mut out = Vec::new();
            let mut pick = Vec::new();
            fn go(
                start: usize,
                n: usize,
                k: usize,
                pick: &mut Vec<usize>,
                out: &mut Vec<Vec<usize>>,
            ) {
                if pick.len() == k {
                    out.push(pick.clone());
                    return;
                }
                for i in start..n {
                    pick.push(i);
                    go(i + 1, n, k, pick, out);
                    pick.pop();
                }
            }
            go(0, n, k, &mut pick, &mut out);
            out
        }
        for (k, m) in [(3usize, 1usize), (4, 2), (8, 3), (2, 2), (5, 3)] {
            for survivors in subsets(k + m, k) {
                let a: Vec<Vec<u8>> = survivors.iter().map(|&s| member_row(k, s)).collect();
                assert!(
                    invert(a).is_some(),
                    "k={k} m={m} survivors {survivors:?} singular"
                );
            }
        }
    }

    #[test]
    fn invert_roundtrips() {
        let a: Vec<Vec<u8>> = vec![vec![1, 2, 3], vec![4, 5, 6], vec![7, 8, 10]];
        let b = invert(a.clone()).unwrap();
        // a * b == identity
        for (i, row) in a.iter().enumerate() {
            for j in 0..3 {
                let acc = row
                    .iter()
                    .zip(&b)
                    .fold(0u8, |acc, (&x, brow)| acc ^ mul(x, brow[j]));
                assert_eq!(acc, u8::from(i == j), "({i},{j})");
            }
        }
        // Singular matrix is reported, not mis-inverted.
        assert!(invert(vec![vec![1, 2], vec![1, 2]]).is_none());
    }

    proptest! {
        #[test]
        fn prop_word_kernel_matches_baseline(
            src in proptest::collection::vec(any::<u8>(), 0..600),
            dst in proptest::collection::vec(any::<u8>(), 0..600),
            c in any::<u8>(),
        ) {
            let mut fast = dst.clone();
            let mut slow = dst;
            mul_into(&mut fast, &src, c);
            mul_into_baseline(&mut slow, &src, c);
            prop_assert_eq!(fast, slow);
        }

        #[test]
        fn prop_decode_rows_recover_data(
            data in proptest::collection::vec(
                proptest::collection::vec(any::<u8>(), 32..33), 2..6),
            m in 1usize..4,
            pattern in any::<u64>(),
        ) {
            let k = data.len();
            // Encode m parities.
            let parities: Vec<Vec<u8>> = (0..m).map(|j| {
                let row = coding_row(k, j);
                let mut p = Vec::new();
                for (i, d) in data.iter().enumerate() {
                    mul_into(&mut p, d, row[i]);
                }
                p
            }).collect();
            // Erase up to m members, decode the erased data back.
            let mut erased: Vec<usize> = (0..k + m).filter(|i| pattern & (1 << i) != 0).collect();
            erased.truncate(m);
            let survivors: Vec<usize> =
                (0..k + m).filter(|i| !erased.contains(i)).take(k).collect();
            let wanted: Vec<usize> = erased.iter().copied().filter(|&i| i < k).collect();
            let rows = decode_rows(k, &survivors, &wanted).expect("MDS");
            for (w, row) in wanted.iter().zip(rows) {
                let mut rebuilt = Vec::new();
                for (s, &c) in survivors.iter().zip(&row) {
                    let sym = if *s < k { &data[*s] } else { &parities[*s - k] };
                    mul_into(&mut rebuilt, sym, c);
                }
                prop_assert_eq!(&rebuilt, &data[*w]);
            }
        }
    }
}
