//! The pipelined read engine — the read-side mirror of the write path's
//! [`crate::writer::WritePool`].
//!
//! The paper's prototype issued one synchronous `Read` RPC per fragment
//! access, so a scan of N blocks cost N round trips and the network sat
//! idle while the server seeked. [`ReadEngine`] closes that gap two ways:
//!
//! * **Windowing** — up to [`LogConfig::read_window`]
//!   (`crate::log::LogConfig`) read RPCs stay outstanding per server via
//!   [`Connection::start_prepared`]/[`PendingCall`], exactly the
//!   fill/harvest discipline the writer uses for stores. On a multiplexed
//!   transport the window rides one socket; blocking transports complete
//!   each call inside `start_prepared`, so the window degrades to 1
//!   transparently (clamped by [`Connection::pipeline_width`]).
//! * **Batching** — runs of reads against one server collapse into
//!   [`Request::ReadBatch`] RPCs ([`BATCH_CHUNK`] fragments per call), so
//!   a scan or stripe fetch is a single round trip per server. Batch
//!   requests carry no payload, which routes them onto the mux's priority
//!   lane — reads overtake queued store payloads instead of waiting out a
//!   window of 1 MiB writes (the YCSB-B head-of-line fix).
//!
//! A transport-level failure mid-window poisons every sibling call on the
//! shared channel; each affected request is then replayed through
//! [`ConnectionPool::call`], which redials once — so a bounced connection
//! costs a retry, never a wrong result.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

use swarm_net::proto::wire_error;
use swarm_net::{
    Connection, ConnectionPool, PendingCall, PreparedRequest, ReadSpec, Request, Response,
};
use swarm_types::{Bytes, FragmentId, Result, ServerId, SwarmError};

use crate::fragment::{parse_header, LOCATE_HEADER_LEN};

/// Outstanding read RPCs the engine keeps on the wire per server
/// (default; see `LogConfig::read_window`). 1 reproduces the paper's
/// serial read path.
pub const DEFAULT_READ_WINDOW: usize = 8;

/// Reads folded into one `ReadBatch` RPC. Bounded so a huge scan neither
/// builds an unbounded reply frame nor stalls the window behind one
/// mega-request.
pub const BATCH_CHUNK: usize = 16;

struct ReaderMetrics {
    /// Read RPCs currently on the wire across all servers (gauge).
    read_inflight: swarm_metrics::Gauge,
    /// Window occupancy sampled after each read is started (histogram
    /// over counts, not microseconds).
    window_occupancy: swarm_metrics::Histogram,
    read_rpc_us: swarm_metrics::Histogram,
    batches: swarm_metrics::Counter,
    batched_reads: swarm_metrics::Counter,
    retries: swarm_metrics::Counter,
}

fn metrics() -> &'static ReaderMetrics {
    static M: std::sync::OnceLock<ReaderMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| ReaderMetrics {
        read_inflight: swarm_metrics::gauge("log.read_inflight"),
        window_occupancy: swarm_metrics::histogram("log.read_window_occupancy"),
        read_rpc_us: swarm_metrics::histogram("log.read_rpc_us"),
        batches: swarm_metrics::counter("log.read_batches"),
        batched_reads: swarm_metrics::counter("log.batched_reads"),
        retries: swarm_metrics::counter("log.read_retries"),
    })
}

/// Duplicates an error for fanning one whole-RPC failure out to every
/// read the RPC carried ([`SwarmError`] holds `io::Error` and cannot be
/// `Clone`). The unavailability variants — which the read path's
/// reconstruction fallback keys on — are rebuilt exactly; the rest
/// round-trip through the wire encoding, which keeps their category.
fn clone_error(e: &SwarmError) -> SwarmError {
    match e {
        SwarmError::ServerUnavailable(s) => SwarmError::ServerUnavailable(*s),
        SwarmError::Io(io) => SwarmError::Io(std::io::Error::new(io.kind(), io.to_string())),
        other => {
            let (code, datum, detail) = wire_error::to_wire(other);
            wire_error::from_wire(code, datum, detail)
        }
    }
}

/// A windowed, batching read front-end over a shared [`ConnectionPool`].
///
/// Cheap to clone (an `Arc` and a `usize`); the log, reconstruction,
/// prefetch, and recovery all drive their reads through one of these.
#[derive(Clone)]
pub struct ReadEngine {
    pool: Arc<ConnectionPool>,
    window: usize,
}

impl std::fmt::Debug for ReadEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadEngine")
            .field("window", &self.window)
            .finish()
    }
}

impl ReadEngine {
    /// Creates an engine keeping up to `window` read RPCs outstanding per
    /// server (clamped to at least 1).
    pub fn new(pool: Arc<ConnectionPool>, window: usize) -> ReadEngine {
        ReadEngine {
            pool,
            window: window.max(1),
        }
    }

    /// The connection pool this engine reads through.
    pub fn pool(&self) -> &Arc<ConnectionPool> {
        &self.pool
    }

    /// The configured window.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Issues `requests` to `server`, keeping up to the window outstanding,
    /// and returns the responses in request order. Completions are
    /// harvested oldest-first; on a multiplexed transport they may finish
    /// out of order on the wire, which is invisible here. A request whose
    /// channel died is replayed through the pool's one-redial `call`.
    pub fn run(&self, server: ServerId, requests: Vec<Request>) -> Vec<Result<Response>> {
        let m = metrics();
        let n = requests.len();
        let mut results: Vec<Option<Result<Response>>> = Vec::new();
        results.resize_with(n, || None);
        let mut queue: VecDeque<(usize, PreparedRequest)> = requests
            .into_iter()
            .enumerate()
            .map(|(i, r)| (i, PreparedRequest::new(r)))
            .collect();
        // The bool marks a synthesized failure (checkout itself failed, no
        // call ever hit the wire) vs. a call started on a live channel.
        let mut inflight: VecDeque<(usize, PreparedRequest, PendingCall, Instant, bool)> =
            VecDeque::new();
        let mut conn: Option<Box<dyn Connection>> = None;
        let mut dial_failed = false;
        while !queue.is_empty() || !inflight.is_empty() {
            // Fill: start reads until the window is full. The effective
            // width re-clamps to the live connection each round, so a
            // blocking transport (pipeline_width 1) degrades to serial.
            loop {
                if conn.is_none() && !dial_failed {
                    conn = match self.pool.checkout(server) {
                        Ok(c) => Some(c),
                        Err(_) => {
                            // Remember the failure for this window pass:
                            // the per-request fallback below redials (with
                            // the pool's backoff) instead of this loop
                            // hammering the dead server once per fill.
                            dial_failed = true;
                            None
                        }
                    };
                }
                let width = conn
                    .as_ref()
                    .map(|c| self.window.min(c.pipeline_width().max(1)))
                    .unwrap_or(1);
                if inflight.len() >= width {
                    break;
                }
                let Some((i, prepared)) = queue.pop_front() else {
                    break;
                };
                let (pending, synthesized) = match &mut conn {
                    Some(c) => (c.start_prepared(&prepared), false),
                    None => (
                        PendingCall::ready(Err(SwarmError::ServerUnavailable(server))),
                        true,
                    ),
                };
                m.read_inflight.add(1);
                inflight.push_back((i, prepared, pending, Instant::now(), synthesized));
                m.window_occupancy.record_us(inflight.len() as u64);
            }
            // Harvest the oldest outstanding read.
            let Some((i, prepared, pending, started, synthesized)) = inflight.pop_front() else {
                break;
            };
            let result = match pending.wait() {
                Ok(resp) => Ok(resp),
                Err(e) if synthesized => Err(e),
                Err(_) => {
                    // The shared channel (and every sibling read on it)
                    // may be dead: drop it and replay this request on a
                    // fresh dial — the pool's idle connections are likely
                    // just as stale. Siblings repair themselves the same
                    // way as they are harvested.
                    conn = None;
                    dial_failed = false;
                    m.retries.inc();
                    self.pool.redial_call(server, prepared.request())
                }
            };
            m.read_inflight.add(-1);
            m.read_rpc_us.record(started.elapsed());
            results[i] = Some(result);
        }
        if let Some(c) = conn {
            self.pool.checkin(c);
        }
        results
            .into_iter()
            .map(|r| r.expect("every request harvested"))
            .collect()
    }

    /// Fetches `specs` from `server`: runs of reads collapse into
    /// `ReadBatch` RPCs of up to [`BATCH_CHUNK`], the RPCs ride the
    /// window, and the results come back in spec order. Each `Ok` is a
    /// shared view of its reply frame — no copy. Per-read failures (a
    /// missing fragment mid-scan) are per-element `Err`s; they do not
    /// poison the rest of the batch.
    pub fn fetch_from(&self, server: ServerId, specs: &[ReadSpec]) -> Vec<Result<Bytes>> {
        let m = metrics();
        let mut requests = Vec::new();
        for chunk in specs.chunks(BATCH_CHUNK.max(1)) {
            if chunk.len() == 1 {
                requests.push(Request::Read {
                    fid: chunk[0].fid,
                    offset: chunk[0].offset,
                    len: chunk[0].len,
                });
            } else {
                m.batches.inc();
                m.batched_reads.add(chunk.len() as u64);
                requests.push(Request::ReadBatch {
                    reads: chunk.to_vec(),
                });
            }
        }
        let responses = self.run(server, requests);
        let mut out = Vec::with_capacity(specs.len());
        for (chunk, resp) in specs.chunks(BATCH_CHUNK.max(1)).zip(responses) {
            match resp {
                Ok(Response::Data(bytes)) if chunk.len() == 1 => out.push(Ok(bytes)),
                Ok(Response::Batch(reply)) => {
                    let results = reply.into_results();
                    if results.len() == chunk.len() {
                        out.extend(results);
                    } else {
                        for _ in chunk {
                            out.push(Err(SwarmError::protocol(format!(
                                "batch reply carried {} results for {} reads",
                                results.len(),
                                chunk.len()
                            ))));
                        }
                    }
                }
                Ok(other) => match other.into_result() {
                    Err(e) => {
                        for _ in 0..chunk.len().saturating_sub(1) {
                            out.push(Err(clone_error(&e)));
                        }
                        out.push(Err(e));
                    }
                    Ok(r) => {
                        for _ in chunk {
                            out.push(Err(SwarmError::protocol(format!(
                                "unexpected read reply {r:?}"
                            ))));
                        }
                    }
                },
                Err(e) => {
                    for _ in 0..chunk.len().saturating_sub(1) {
                        out.push(Err(clone_error(&e)));
                    }
                    out.push(Err(e));
                }
            }
        }
        out
    }

    /// One ranged read — a single-spec [`ReadEngine::fetch_from`].
    pub fn read_one(
        &self,
        server: ServerId,
        fid: FragmentId,
        offset: u32,
        len: u32,
    ) -> Result<Bytes> {
        self.fetch_from(server, &[ReadSpec { fid, offset, len }])
            .pop()
            .expect("one spec yields one result")
    }

    /// Fetches spec lists from several servers at once: one scoped thread
    /// per server (serial in server order when the pool's fan-out is
    /// disabled), each running its own window. Results are returned in
    /// job order.
    pub fn fetch_scatter(&self, jobs: Vec<(ServerId, Vec<ReadSpec>)>) -> Vec<Vec<Result<Bytes>>> {
        if jobs.len() <= 1 || !self.pool.fanout_enabled() {
            return jobs
                .into_iter()
                .map(|(server, specs)| self.fetch_from(server, &specs))
                .collect();
        }
        std::thread::scope(|s| {
            let handles: Vec<_> = jobs
                .into_iter()
                .map(|(server, specs)| s.spawn(move || self.fetch_from(server, &specs)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("scatter read worker panicked"))
                .collect()
        })
    }

    /// Fetches the complete bytes of `fids` from `server`: one windowed
    /// pass of `Locate`s learns each fragment's length, then the bodies
    /// come back through batched reads. `Ok(None)` means the server does
    /// not hold that fragment (end of log, or a stale home mapping — the
    /// caller decides whether to locate elsewhere).
    pub fn fetch_whole(&self, server: ServerId, fids: &[FragmentId]) -> Vec<Result<Option<Bytes>>> {
        let locates: Vec<Request> = fids
            .iter()
            .map(|&fid| Request::Locate {
                fid,
                header_len: LOCATE_HEADER_LEN,
            })
            .collect();
        let mut out: Vec<Option<Result<Option<Bytes>>>> = Vec::new();
        out.resize_with(fids.len(), || None);
        let mut specs: Vec<(usize, ReadSpec)> = Vec::new();
        for (i, resp) in self.run(server, locates).into_iter().enumerate() {
            match resp.and_then(Response::into_result) {
                Ok(Response::Located(Some(prefix))) => match parse_header(&prefix) {
                    Ok(header) => specs.push((
                        i,
                        ReadSpec {
                            fid: fids[i],
                            offset: 0,
                            len: header.encoded_len() as u32 + header.body_len,
                        },
                    )),
                    Err(e) => out[i] = Some(Err(e)),
                },
                Ok(Response::Located(None)) => out[i] = Some(Ok(None)),
                Ok(other) => {
                    out[i] = Some(Err(SwarmError::protocol(format!(
                        "unexpected locate reply {other:?}"
                    ))))
                }
                Err(e) => out[i] = Some(Err(e)),
            }
        }
        let spec_list: Vec<ReadSpec> = specs.iter().map(|(_, s)| *s).collect();
        for ((i, _), result) in specs.iter().zip(self.fetch_from(server, &spec_list)) {
            out[*i] = Some(match result {
                Ok(bytes) => Ok(Some(bytes)),
                // Deleted between locate and read: absent, not fatal.
                Err(SwarmError::FragmentNotFound(_)) => Ok(None),
                Err(e) => Err(e),
            });
        }
        out.into_iter()
            .map(|r| r.expect("every fid resolved"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swarm_net::MemTransport;
    use swarm_server::{MemStore, StorageServer};
    use swarm_types::ClientId;

    fn pool_with_cluster(n: u32) -> (Arc<ConnectionPool>, Arc<MemTransport>) {
        let transport = Arc::new(MemTransport::new());
        for i in 0..n {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv.clone());
        }
        let pool = Arc::new(ConnectionPool::new(
            transport.clone() as Arc<dyn swarm_net::Transport>,
            ClientId::new(1),
        ));
        (pool, transport)
    }

    fn fid(seq: u64) -> FragmentId {
        FragmentId::new(ClientId::new(1), seq)
    }

    fn store(pool: &ConnectionPool, server: u32, seq: u64, data: Vec<u8>) {
        pool.call(
            ServerId::new(server),
            &Request::Store {
                fid: fid(seq),
                marked: false,
                ranges: vec![],
                data: data.into(),
            },
        )
        .unwrap()
        .into_result()
        .unwrap();
    }

    #[test]
    fn fetch_from_returns_results_in_spec_order() {
        let (pool, _t) = pool_with_cluster(1);
        for seq in 0..40 {
            store(&pool, 0, seq, vec![seq as u8; 64]);
        }
        let engine = ReadEngine::new(pool, 8);
        // 40 specs span 3 chunks; order must survive chunking + windowing.
        let specs: Vec<ReadSpec> = (0..40)
            .map(|seq| ReadSpec {
                fid: fid(seq),
                offset: 2,
                len: 8,
            })
            .collect();
        let results = engine.fetch_from(ServerId::new(0), &specs);
        assert_eq!(results.len(), 40);
        for (seq, r) in results.into_iter().enumerate() {
            assert_eq!(r.unwrap().as_slice(), &[seq as u8; 8][..], "spec {seq}");
        }
    }

    #[test]
    fn missing_fragment_fails_only_its_own_slot() {
        let (pool, _t) = pool_with_cluster(1);
        store(&pool, 0, 0, vec![1; 16]);
        store(&pool, 0, 2, vec![3; 16]);
        let engine = ReadEngine::new(pool, 4);
        let specs: Vec<ReadSpec> = (0..3)
            .map(|seq| ReadSpec {
                fid: fid(seq),
                offset: 0,
                len: 16,
            })
            .collect();
        let results = engine.fetch_from(ServerId::new(0), &specs);
        assert!(results[0].is_ok());
        assert!(matches!(
            results[1],
            Err(SwarmError::FragmentNotFound(f)) if f == fid(1)
        ));
        assert!(results[2].is_ok());
    }

    #[test]
    fn down_server_fails_every_spec_with_unavailability() {
        let (pool, transport) = pool_with_cluster(1);
        store(&pool, 0, 0, vec![1; 16]);
        transport.set_down(ServerId::new(0), true);
        let engine = ReadEngine::new(pool, 4);
        let specs: Vec<ReadSpec> = (0..5)
            .map(|seq| ReadSpec {
                fid: fid(seq),
                offset: 0,
                len: 16,
            })
            .collect();
        for r in engine.fetch_from(ServerId::new(0), &specs) {
            let e = r.unwrap_err();
            assert!(e.is_unavailability(), "{e}");
        }
    }

    #[test]
    fn fetch_scatter_keeps_job_order() {
        let (pool, _t) = pool_with_cluster(3);
        for server in 0..3u32 {
            store(&pool, server, 100 + server as u64, vec![server as u8; 32]);
        }
        let engine = ReadEngine::new(pool, 8);
        let jobs: Vec<(ServerId, Vec<ReadSpec>)> = (0..3u32)
            .map(|server| {
                (
                    ServerId::new(server),
                    vec![ReadSpec {
                        fid: fid(100 + server as u64),
                        offset: 0,
                        len: 32,
                    }],
                )
            })
            .collect();
        let results = engine.fetch_scatter(jobs);
        for (server, per_server) in results.into_iter().enumerate() {
            assert_eq!(
                per_server[0].as_ref().unwrap().as_slice(),
                &[server as u8; 32][..]
            );
        }
    }
}
