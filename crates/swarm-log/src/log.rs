//! The striped log: Swarm's core abstraction (§2.1).
//!
//! Each client owns one [`Log`]. Appended blocks and records are packed
//! into fragments; full fragments are sealed and handed to the pipelined
//! [`WritePool`]; completed stripes get a parity fragment. All of this
//! happens without any coordination with other clients or between servers
//! — the paper's central design goal.
//!
//! The log is append-only and conceptually infinite. Blocks persist until
//! deleted; records drive crash recovery (see [`crate::recovery`]); the
//! cleaner (crate `swarm-cleaner`) reclaims dead stripes.

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use swarm_net::{ConnectionPool, Request, Response, Transport};
use swarm_types::{
    BlockAddr, Bytes, ClientId, FragmentId, Result, ServerId, ServiceId, StripeSeq, SwarmError,
    DEFAULT_FRAGMENT_SIZE,
};

use crate::entry::Entry;
use crate::fragment::{FragmentBuilder, FragmentView};
use crate::parity::ParityAccumulator;
use crate::reader::ReadEngine;
use crate::reconstruct;
use crate::stripe::{StripeGroup, StripePlan};
use crate::writer::WritePool;

struct LogMetrics {
    fragments_sealed: swarm_metrics::Counter,
    reads: swarm_metrics::Counter,
    reconstructions: swarm_metrics::Counter,
    seal_us: swarm_metrics::Histogram,
    submit_us: swarm_metrics::Histogram,
    flush_us: swarm_metrics::Histogram,
    reconstruct_us: swarm_metrics::Histogram,
    /// Read latency split by the source that served the read.
    read_builder_us: swarm_metrics::Histogram,
    read_cache_us: swarm_metrics::Histogram,
    read_home_us: swarm_metrics::Histogram,
    read_reconstruct_us: swarm_metrics::Histogram,
}

fn metrics() -> &'static LogMetrics {
    static M: std::sync::OnceLock<LogMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| LogMetrics {
        fragments_sealed: swarm_metrics::counter("log.fragments_sealed"),
        reads: swarm_metrics::counter("log.reads"),
        reconstructions: swarm_metrics::counter("log.reconstructions"),
        seal_us: swarm_metrics::histogram("log.seal_us"),
        submit_us: swarm_metrics::histogram("log.submit_us"),
        flush_us: swarm_metrics::histogram("log.flush_us"),
        reconstruct_us: swarm_metrics::histogram("log.reconstruct_us"),
        read_builder_us: swarm_metrics::histogram("log.read_us.builder"),
        read_cache_us: swarm_metrics::histogram("log.read_us.cache"),
        read_home_us: swarm_metrics::histogram("log.read_us.home"),
        read_reconstruct_us: swarm_metrics::histogram("log.read_us.reconstruct"),
    })
}

/// Record kinds written by the log layer itself (under
/// [`ServiceId::LOG_LAYER`]).
pub mod log_record {
    /// A checkpoint directory: the positions of every service's newest
    /// checkpoint at the time it was written. Stored alongside each
    /// checkpoint so recovery can find *all* services' checkpoints from
    /// the anchor fragment alone — "the log layer tracks the most
    /// recently written checkpoint for each service and makes it
    /// available to the service on restart" (§2.1.3).
    pub const CHECKPOINT_DIR: u16 = 1;
}

/// A position in the log, ordered by (fragment sequence, offset).
///
/// Services compare positions to decide which replayed records postdate
/// their checkpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LogPosition {
    /// Fragment sequence number within the client's log.
    pub seq: u64,
    /// Byte offset within the fragment.
    pub offset: u32,
}

impl LogPosition {
    /// Position of an address.
    pub fn of(addr: BlockAddr) -> LogPosition {
        LogPosition {
            seq: addr.fid.seq(),
            offset: addr.offset,
        }
    }

    /// The zero position (start of the log).
    pub fn zero() -> LogPosition {
        LogPosition { seq: 0, offset: 0 }
    }
}

/// Client-side operation counters (observability; all monotonic).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LogStats {
    /// Blocks appended by services.
    pub blocks_appended: u64,
    /// Records (incl. deletes) appended.
    pub records_appended: u64,
    /// Checkpoints written.
    pub checkpoints: u64,
    /// Data fragments shipped to servers.
    pub data_fragments: u64,
    /// Parity fragments shipped.
    pub parity_fragments: u64,
    /// Empty padding fragments shipped (mid-stripe flushes).
    pub padding_fragments: u64,
    /// Total bytes shipped (data + parity + padding + headers).
    pub bytes_shipped: u64,
    /// Read requests served.
    pub reads: u64,
    /// Reads served from the client fragment cache or open builder.
    pub cache_hits: u64,
    /// Fragments rebuilt from parity on the read path.
    pub reconstructions: u64,
}

/// Configuration for a client's log.
#[derive(Debug, Clone)]
pub struct LogConfig {
    /// The owning client.
    pub client: ClientId,
    /// Servers to stripe across (width = group size, one member is
    /// parity).
    pub group: StripeGroup,
    /// Fragment size in bytes (default 1 MiB, the prototype's choice).
    pub fragment_size: usize,
    /// Per-server write queue depth (default 2: transfer one fragment
    /// while the previous is written to disk, §2.1.2).
    pub queue_depth: usize,
    /// Outstanding `Store` RPCs each server's writer keeps on the wire
    /// (default [`crate::writer::DEFAULT_WRITE_WINDOW`]). 1 reproduces
    /// the paper's one-store-per-server pipeline; larger windows exploit
    /// the multiplexed transport and let the server's group commit batch
    /// one client's fsyncs. Clamped to what the connection can pipeline,
    /// so blocking transports degrade gracefully to 1.
    pub write_window: usize,
    /// Outstanding `Read` RPCs the pipelined read engine keeps on the
    /// wire per server (default
    /// [`crate::reader::DEFAULT_READ_WINDOW`]). 1 reproduces the paper's
    /// serial one-read-at-a-time path; larger windows overlap server
    /// seeks with wire transfer on the multiplexed transport. Clamped to
    /// what the connection can pipeline, so blocking transports degrade
    /// gracefully to 1.
    pub read_window: usize,
    /// Client-side fragment cache capacity, in fragments (default 16).
    /// Serves re-reads and recovery scans without server round-trips.
    pub cache_fragments: usize,
    /// Prefetch whole fragments on read misses (default off — the
    /// paper's prototype did not prefetch, §3.4; enabling this is the
    /// optimization the paper says "would greatly improve the
    /// performance of reads that miss in the client cache").
    pub prefetch: bool,
    /// Fragments to read ahead of a miss when `prefetch` is on (and
    /// during recovery rollforward): while fragment `seq` is being
    /// parsed, fragments `seq+1..=seq+read_ahead` are fetched in the
    /// background. Default 2.
    pub read_ahead: usize,
    /// Attempts per fragment store before the writer reports the server
    /// lost (default [`crate::writer::STORE_RETRIES`]).
    pub store_retries: usize,
    /// Pause between store retry attempts (default
    /// [`crate::writer::RETRY_BACKOFF`]). Chaos runs shorten this so
    /// injected kill/restart cycles resolve within a flush.
    pub retry_backoff: std::time::Duration,
}

impl LogConfig {
    /// Creates a config with the paper's defaults.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if the server set is not a
    /// valid stripe group (see [`StripeGroup::new`]).
    pub fn new(client: ClientId, servers: Vec<ServerId>) -> Result<LogConfig> {
        Ok(LogConfig {
            client,
            group: StripeGroup::new(servers)?,
            fragment_size: DEFAULT_FRAGMENT_SIZE,
            queue_depth: 2,
            write_window: crate::writer::DEFAULT_WRITE_WINDOW,
            read_window: crate::reader::DEFAULT_READ_WINDOW,
            cache_fragments: 16,
            prefetch: false,
            read_ahead: 2,
            store_retries: crate::writer::STORE_RETRIES,
            retry_backoff: crate::writer::RETRY_BACKOFF,
        })
    }

    /// Sets the stripe geometry (`k` data + `m` parity members per
    /// stripe). The group's server count must equal `k + m`. The default
    /// is the paper's `width-1 + 1` XOR shape; `m > 1` selects GF(2^8)
    /// Reed–Solomon parity that survives any `m` concurrent losses.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if the geometry's width
    /// does not match the group's server count.
    pub fn geometry(mut self, geometry: swarm_types::Geometry) -> Result<LogConfig> {
        self.group = StripeGroup::with_geometry(self.group.servers().to_vec(), geometry)?;
        Ok(self)
    }

    /// Sets the fragment size.
    pub fn fragment_size(mut self, bytes: usize) -> LogConfig {
        self.fragment_size = bytes;
        self
    }

    /// Sets the per-server queue depth.
    pub fn queue_depth(mut self, depth: usize) -> LogConfig {
        self.queue_depth = depth;
        self
    }

    /// Sets the per-server store window (1 = the paper's serial
    /// pipeline; clamped to at least 1).
    pub fn write_window(mut self, window: usize) -> LogConfig {
        self.write_window = window.max(1);
        self
    }

    /// Sets the per-server read window (1 = the paper's serial read
    /// path; clamped to at least 1).
    pub fn read_window(mut self, window: usize) -> LogConfig {
        self.read_window = window.max(1);
        self
    }

    /// Sets the client-side fragment cache capacity.
    pub fn cache_fragments(mut self, fragments: usize) -> LogConfig {
        self.cache_fragments = fragments;
        self
    }

    /// Enables whole-fragment prefetch on read misses.
    pub fn prefetch(mut self, on: bool) -> LogConfig {
        self.prefetch = on;
        self
    }

    /// Sets the read-ahead depth for prefetch mode and recovery scans.
    pub fn read_ahead(mut self, fragments: usize) -> LogConfig {
        self.read_ahead = fragments;
        self
    }

    /// Sets the writer's store retry count.
    pub fn store_retries(mut self, retries: usize) -> LogConfig {
        self.store_retries = retries;
        self
    }

    /// Sets the pause between store retry attempts.
    pub fn retry_backoff(mut self, backoff: std::time::Duration) -> LogConfig {
        self.retry_backoff = backoff;
        self
    }
}

struct OpenStripe {
    plan: StripePlan,
    acc: ParityAccumulator,
    next_member: u8,
}

/// Which layer served a read — keys the `log.read_us.*` histograms.
#[derive(Clone, Copy)]
enum ReadSource {
    Builder,
    Cache,
    Home,
    Reconstruct,
}

impl ReadSource {
    fn record(self, elapsed: std::time::Duration) {
        let m = metrics();
        let h = match self {
            ReadSource::Builder => &m.read_builder_us,
            ReadSource::Cache => &m.read_cache_us,
            ReadSource::Home => &m.read_home_us,
            ReadSource::Reconstruct => &m.read_reconstruct_us,
        };
        h.record(elapsed);
    }
}

/// Tiny LRU fragment cache for the read path. Entries are [`Bytes`]
/// views, so caching a sealed fragment shares its buffer with the write
/// pipeline instead of copying it. A hit refreshes the entry's position
/// so hot fragments survive eviction (the order deque is short — the
/// cache holds at most `cache_fragments` entries — so the linear refresh
/// is cheaper than a linked structure would be).
struct FragCache {
    capacity: usize,
    map: HashMap<FragmentId, Bytes>,
    order: std::collections::VecDeque<FragmentId>,
}

impl FragCache {
    fn new(capacity: usize) -> Self {
        FragCache {
            capacity,
            map: HashMap::new(),
            order: std::collections::VecDeque::new(),
        }
    }

    fn get(&mut self, fid: FragmentId) -> Option<Bytes> {
        let bytes = self.map.get(&fid).map(Bytes::share)?;
        if self.order.back() != Some(&fid) {
            if let Some(pos) = self.order.iter().position(|f| *f == fid) {
                self.order.remove(pos);
                self.order.push_back(fid);
            }
        }
        Some(bytes)
    }

    /// Peeks without refreshing recency (prefetch probes use this so a
    /// speculative lookup does not compete with real reads).
    fn contains(&self, fid: FragmentId) -> bool {
        self.map.contains_key(&fid)
    }

    fn insert(&mut self, fid: FragmentId, bytes: Bytes) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(fid, bytes).is_none() {
            self.order.push_back(fid);
            while self.order.len() > self.capacity {
                if let Some(old) = self.order.pop_front() {
                    self.map.remove(&old);
                }
            }
        }
    }

    fn remove(&mut self, fid: FragmentId) {
        self.map.remove(&fid);
        self.order.retain(|f| *f != fid);
    }
}

/// Registry of whole-fragment fetches in flight. When the foreground
/// read misses a fragment the read-ahead thread is already pulling, it
/// waits for that fetch and serves the result from the cache instead of
/// issuing a duplicate pair of RPCs for the same 64 KB.
#[derive(Default)]
struct Inflight {
    fetching: Mutex<HashSet<FragmentId>>,
    done: Condvar,
}

struct LogState {
    next_seq: u64,
    stripe: Option<OpenStripe>,
    builder: Option<FragmentBuilder>,
    /// Where each fragment this log knows about lives.
    fragment_map: HashMap<FragmentId, ServerId>,
    /// Per-service newest checkpoint position.
    checkpoints: HashMap<ServiceId, LogPosition>,
    /// Sequence of the newest *marked* fragment this log knows to be
    /// durable (a lower bound — see [`Log::anchor_seq`]).
    anchor_seq: Option<u64>,
    /// Bytes of entries appended since creation (statistics).
    appended_bytes: u64,
    stats: LogStats,
    closed: bool,
}

/// A client's striped, self-parity-protected, append-only log.
///
/// All methods take `&self`; the log is internally synchronized and can be
/// shared (`Arc<Log>`) between a file system, a cleaner, and other
/// services on the same client. Appends from multiple threads serialize on
/// an internal lock — per the paper there is exactly one log per client,
/// and services on that client share it.
///
/// # Example
///
/// ```no_run
/// use std::sync::Arc;
/// use swarm_log::{Log, LogConfig};
/// use swarm_types::{ClientId, ServerId, ServiceId};
///
/// # fn transport() -> Arc<dyn swarm_net::Transport> { unimplemented!() }
/// let config = LogConfig::new(
///     ClientId::new(1),
///     vec![ServerId::new(0), ServerId::new(1)],
/// )?;
/// let log = Log::create(transport(), config)?;
/// let addr = log.append_block(ServiceId::new(1), b"inode 7 offset 0", b"file data")?;
/// log.flush()?;
/// assert_eq!(log.read(addr)?, b"file data");
/// # Ok::<(), swarm_types::SwarmError>(())
/// ```
pub struct Log {
    config: LogConfig,
    transport: Arc<dyn Transport>,
    pool: WritePool,
    /// Pooled read connections shared with reconstruction, recovery, and
    /// the cleaner.
    engine: Arc<ConnectionPool>,
    /// Windowed, batching read front-end over `engine` — serves the read
    /// fast path, scans, and prefetch.
    reader: ReadEngine,
    /// Client fragment cache. Outside `state` so background prefetch can
    /// fill it without contending with appends.
    cache: Arc<Mutex<FragCache>>,
    /// One background prefetch run at a time.
    prefetch_busy: Arc<AtomicBool>,
    /// Whole-fragment fetches in flight (prefetch mode), so the
    /// foreground read and the read-ahead thread never fetch the same
    /// fragment twice.
    inflight: Arc<Inflight>,
    state: Mutex<LogState>,
}

impl std::fmt::Debug for Log {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Log")
            .field("client", &self.config.client)
            .field("group", &self.config.group)
            .field("fragment_size", &self.config.fragment_size)
            .finish()
    }
}

impl Log {
    /// Creates a fresh, empty log.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if the fragment size cannot
    /// hold a header plus one minimal entry.
    pub fn create(transport: Arc<dyn Transport>, config: LogConfig) -> Result<Log> {
        Self::with_start_seq(transport, config, 0)
    }

    /// Creates a log resuming at fragment sequence `next_seq` (used by
    /// recovery; `next_seq` must be stripe-aligned).
    pub(crate) fn with_start_seq(
        transport: Arc<dyn Transport>,
        config: LogConfig,
        next_seq: u64,
    ) -> Result<Log> {
        let engine = Arc::new(ConnectionPool::new(transport.clone(), config.client));
        Self::with_engine(transport, config, next_seq, engine)
    }

    /// Creates a log reusing an existing connection pool (recovery hands
    /// its warmed-up pool over so the new log starts with live
    /// connections).
    pub(crate) fn with_engine(
        transport: Arc<dyn Transport>,
        config: LogConfig,
        next_seq: u64,
        engine: Arc<ConnectionPool>,
    ) -> Result<Log> {
        let probe_plan = config.group.plan(config.client, StripeSeq::new(0));
        let header_len = probe_plan.header(0).encoded_len();
        if config.fragment_size < header_len + 64 {
            return Err(SwarmError::invalid(format!(
                "fragment size {} too small (header alone is {header_len} bytes)",
                config.fragment_size
            )));
        }
        if !next_seq.is_multiple_of(config.group.width() as u64) {
            return Err(SwarmError::invalid("start sequence not stripe-aligned"));
        }
        // Writers share the log's connection pool, so the write path rides
        // the same per-server channels as reads (one mux socket per
        // server) instead of holding private sockets.
        let pool = WritePool::with_engine(
            engine.clone(),
            config.group.servers(),
            config.queue_depth,
            config.write_window,
            config.store_retries,
            config.retry_backoff,
        );
        let cache = Arc::new(Mutex::new(FragCache::new(config.cache_fragments)));
        let reader = ReadEngine::new(engine.clone(), config.read_window);
        Ok(Log {
            pool,
            transport,
            reader,
            engine,
            cache,
            prefetch_busy: Arc::new(AtomicBool::new(false)),
            inflight: Arc::new(Inflight::default()),
            state: Mutex::new(LogState {
                next_seq,
                stripe: None,
                builder: None,
                fragment_map: HashMap::new(),
                checkpoints: HashMap::new(),
                anchor_seq: None,
                appended_bytes: 0,
                stats: LogStats::default(),
                closed: false,
            }),
            config,
        })
    }

    /// The owning client.
    pub fn client(&self) -> ClientId {
        self.config.client
    }

    /// The stripe group this log writes across.
    pub fn group(&self) -> &StripeGroup {
        &self.config.group
    }

    /// The configured fragment size.
    pub fn fragment_size(&self) -> usize {
        self.config.fragment_size
    }

    /// Largest block payload that fits in one fragment (blocks larger than
    /// this must be split by the service).
    pub fn max_block_size(&self) -> usize {
        let header_len = self
            .config
            .group
            .plan(self.config.client, StripeSeq::new(0))
            .header(0)
            .encoded_len();
        // Entry overhead for a block with empty creation info: tag(1) +
        // service(2) + create_len(4) + data_len(4).
        self.config.fragment_size - header_len - 11
    }

    /// Total entry bytes appended since creation.
    pub fn appended_bytes(&self) -> u64 {
        self.state.lock().appended_bytes
    }

    /// The transport this log talks through.
    pub fn transport(&self) -> &Arc<dyn Transport> {
        &self.transport
    }

    /// The shared read engine (pooled connections + parallel broadcast)
    /// this log reads through.
    pub fn engine(&self) -> &Arc<ConnectionPool> {
        &self.engine
    }

    /// Seeds the fragment→server map (used after recovery so reads skip
    /// the broadcast).
    pub(crate) fn seed_fragment_map(
        &self,
        entries: impl IntoIterator<Item = (FragmentId, ServerId)>,
    ) {
        let mut state = self.state.lock();
        state.fragment_map.extend(entries);
    }

    /// Records a service's checkpoint position (used by recovery).
    pub(crate) fn seed_checkpoint(&self, service: ServiceId, pos: LogPosition) {
        let mut state = self.state.lock();
        state.anchor_seq = state.anchor_seq.max(Some(pos.seq));
        state.checkpoints.insert(service, pos);
    }

    /// Records the recovery anchor (newest marked fragment found by the
    /// `LastMarked` broadcast) on a recovered log.
    pub(crate) fn seed_anchor(&self, seq: u64) {
        let mut state = self.state.lock();
        state.anchor_seq = state.anchor_seq.max(Some(seq));
    }

    /// Sequence of the newest marked fragment this log knows to be
    /// durable, if any — a lower bound on the recovery anchor the next
    /// `LastMarked` broadcast would find.
    ///
    /// The rollforward scan treats a missing fragment at or beyond the
    /// anchor as the end of the log, so anything that removes fragments
    /// (the cleaner) must stay strictly below this sequence.
    pub fn anchor_seq(&self) -> Option<u64> {
        self.state.lock().anchor_seq
    }

    // ------------------------------------------------------------------
    // Append path
    // ------------------------------------------------------------------

    fn ensure_builder<'a>(
        &self,
        state: &'a mut LogState,
        need: usize,
    ) -> Result<&'a mut FragmentBuilder> {
        if state.closed {
            return Err(SwarmError::Closed("log"));
        }
        if let Some(b) = &state.builder {
            if !b.fits(need) {
                self.seal_current(state)?;
            }
        }
        if state.builder.is_none() {
            let stripe = match &mut state.stripe {
                Some(s) => s,
                None => {
                    let width = self.config.group.width() as u64;
                    let stripe_seq = StripeSeq::new(state.next_seq / width);
                    debug_assert_eq!(state.next_seq % width, 0);
                    let plan = self.config.group.plan(self.config.client, stripe_seq);
                    state.stripe = Some(OpenStripe {
                        acc: ParityAccumulator::with_geometry(
                            plan.data_count() as usize,
                            plan.parity_count() as usize,
                        ),
                        plan,
                        next_member: 0,
                    });
                    state.stripe.as_mut().expect("just inserted")
                }
            };
            let header = stripe.plan.header(stripe.next_member);
            let builder = FragmentBuilder::new(header, self.config.fragment_size);
            if !builder.fits(need) {
                return Err(SwarmError::invalid(format!(
                    "entry of {need} bytes exceeds fragment capacity {}",
                    self.config.fragment_size
                )));
            }
            state.builder = Some(builder);
        }
        Ok(state.builder.as_mut().expect("present"))
    }

    /// Seals the open fragment (if any) and submits it; closes the stripe
    /// with a parity fragment when the last data member seals.
    fn seal_current(&self, state: &mut LogState) -> Result<()> {
        let Some(builder) = state.builder.take() else {
            return Ok(());
        };
        let m = metrics();
        let _seal_span = m.seal_us.span("log.seal");
        let sealed = builder.seal();
        let (server, stripe_done) = {
            let stripe = state.stripe.as_mut().expect("builder implies stripe");
            let server = stripe.plan.member_server(stripe.next_member);
            stripe.acc.add(&sealed);
            stripe.next_member += 1;
            (server, stripe.next_member == stripe.plan.parity_index())
        };
        state.fragment_map.insert(sealed.fid(), server);
        state.next_seq = sealed.fid().seq() + 1;
        state.stats.data_fragments += 1;
        state.stats.bytes_shipped += sealed.bytes.len() as u64;
        // Cache the sealed bytes so reads never race the write pipeline
        // (the fragment may still be in a writer queue). `share` aliases
        // the sealed buffer; no copy is made.
        self.cache.lock().insert(sealed.fid(), sealed.bytes.share());
        m.fragments_sealed.inc();
        swarm_metrics::trace!(
            "log.seal",
            "sealed fragment seq={} for server {}",
            state.next_seq - 1,
            server
        );
        {
            let _submit_span = m.submit_us.span("log.submit");
            self.pool.submit(server, sealed)?;
        }
        if stripe_done {
            self.close_stripe(state)?;
        }
        Ok(())
    }

    /// Emits the stripe's `m` parity fragments and resets stripe state.
    /// Requires all data members sealed (padding happens in `flush`).
    fn close_stripe(&self, state: &mut LogState) -> Result<()> {
        let Some(stripe) = state.stripe.take() else {
            return Ok(());
        };
        let first_parity = stripe.plan.parity_index();
        let headers = (first_parity..stripe.plan.width()).map(|i| stripe.plan.header(i));
        let parities = stripe.acc.build_parities(headers);
        for (offset, parity) in parities.into_iter().enumerate() {
            let server = stripe.plan.member_server(first_parity + offset as u8);
            state.fragment_map.insert(parity.fid(), server);
            state.next_seq = parity.fid().seq() + 1;
            state.stats.parity_fragments += 1;
            state.stats.bytes_shipped += parity.bytes.len() as u64;
            self.pool.submit(server, parity)?;
        }
        Ok(())
    }

    /// Pads the open stripe's unfilled data members with empty fragments
    /// so the stripe can close (used when flushing mid-stripe).
    fn pad_and_close_stripe(&self, state: &mut LogState) -> Result<()> {
        let (plan, mut next_member) = match &state.stripe {
            None => return Ok(()),
            Some(s) if s.next_member == 0 => {
                // Nothing written into this stripe: drop it entirely and
                // reuse its sequence numbers for the next appends.
                state.stripe = None;
                return Ok(());
            }
            Some(s) => (s.plan.clone(), s.next_member),
        };
        while next_member < plan.parity_index() {
            let header = plan.header(next_member);
            let empty = FragmentBuilder::new(header, self.config.fragment_size).seal();
            let server = plan.member_server(next_member);
            let fid = empty.fid();
            state
                .stripe
                .as_mut()
                .expect("stripe open during padding")
                .acc
                .add(&empty);
            state.fragment_map.insert(fid, server);
            state.next_seq = fid.seq() + 1;
            state.stats.padding_fragments += 1;
            state.stats.bytes_shipped += empty.bytes.len() as u64;
            self.pool.submit(server, empty)?;
            next_member += 1;
            state
                .stripe
                .as_mut()
                .expect("stripe open during padding")
                .next_member = next_member;
        }
        self.close_stripe(state)
    }

    /// Appends a data block for `service`, returning its address.
    ///
    /// `create` is the service-specific creation information stored with
    /// the block (the paper's creation record): enough for the service to
    /// find the block in its metadata when it is replayed after a crash or
    /// moved by the cleaner.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if the block exceeds
    /// [`Log::max_block_size`], [`SwarmError::Closed`] after
    /// [`Log::close`], or a transport error if a fragment seal cascades
    /// into a failed store.
    pub fn append_block(
        &self,
        service: ServiceId,
        create: &[u8],
        data: &[u8],
    ) -> Result<BlockAddr> {
        if service == ServiceId::LOG_LAYER {
            return Err(SwarmError::invalid(
                "service id 0 is reserved for the log layer",
            ));
        }
        let entry = Entry::Block {
            service,
            create: create.to_vec(),
            data: data.to_vec(),
        };
        let need = entry.encoded_len();
        let mut state = self.state.lock();
        let builder = self.ensure_builder(&mut state, need)?;
        let addr = builder.append_block(service, create, data);
        state.appended_bytes += need as u64;
        state.stats.blocks_appended += 1;
        Ok(addr)
    }

    /// Appends a service record, returning its position.
    ///
    /// Record writes are atomic (the enclosing fragment stores atomically)
    /// and replayed in order after a crash.
    ///
    /// # Errors
    ///
    /// As for [`Log::append_block`].
    pub fn append_record(&self, service: ServiceId, kind: u16, data: &[u8]) -> Result<LogPosition> {
        if service == ServiceId::LOG_LAYER {
            return Err(SwarmError::invalid(
                "service id 0 is reserved for the log layer",
            ));
        }
        let entry = Entry::Record {
            service,
            kind,
            data: data.to_vec(),
        };
        let need = entry.encoded_len();
        let mut state = self.state.lock();
        let builder = self.ensure_builder(&mut state, need)?;
        let offset = builder.append_record(service, kind, data);
        let seq = builder.fid().seq();
        state.appended_bytes += need as u64;
        state.stats.records_appended += 1;
        Ok(LogPosition { seq, offset })
    }

    /// Appends a block-deletion record. The block's bytes remain on the
    /// servers until the cleaner reclaims the stripe; this record makes
    /// the deletion durable and replayable.
    ///
    /// # Errors
    ///
    /// As for [`Log::append_block`].
    pub fn delete_block(&self, service: ServiceId, addr: BlockAddr) -> Result<LogPosition> {
        let entry = Entry::Delete { service, addr };
        let need = entry.encoded_len();
        let mut state = self.state.lock();
        let builder = self.ensure_builder(&mut state, need)?;
        let offset = builder.append_delete(service, addr);
        let seq = builder.fid().seq();
        state.appended_bytes += need as u64;
        state.stats.records_appended += 1;
        Ok(LogPosition { seq, offset })
    }

    /// Writes a checkpoint for `service` and flushes the log.
    ///
    /// The fragment containing the checkpoint is stored *marked*, so after
    /// a crash the service's recovery starts from here (§2.1.3, §2.3.1).
    /// Records older than this checkpoint are implicitly deleted and
    /// become cleanable.
    ///
    /// # Errors
    ///
    /// As for [`Log::append_block`] plus any flush error.
    pub fn checkpoint(&self, service: ServiceId, data: &[u8]) -> Result<LogPosition> {
        if service == ServiceId::LOG_LAYER {
            return Err(SwarmError::invalid(
                "service id 0 is reserved for the log layer",
            ));
        }
        let entry = Entry::Checkpoint {
            service,
            data: data.to_vec(),
        };
        let pos = {
            let mut state = self.state.lock();
            // The checkpoint entry and the log layer's checkpoint
            // directory must land in the same (marked) fragment, so
            // recovery can find every service's checkpoint from the
            // anchor alone. Reserve room for both up front.
            let dir_bound = encode_checkpoint_dir(&state.checkpoints, None).len() + 32;
            let need = entry.encoded_len() + dir_bound + 16;
            let checkpoints_snapshot = state.checkpoints.clone();
            let builder = self.ensure_builder(&mut state, need)?;
            let offset = builder.append_checkpoint(service, data);
            let seq = builder.fid().seq();
            let pos = LogPosition { seq, offset };
            let dir = encode_checkpoint_dir(&checkpoints_snapshot, Some((service, pos)));
            builder.append_record(ServiceId::LOG_LAYER, log_record::CHECKPOINT_DIR, &dir);
            state.appended_bytes += need as u64;
            state.stats.checkpoints += 1;
            state.checkpoints.insert(service, pos);
            pos
        };
        self.flush()?;
        // Only a flushed marked fragment moves the anchor: recovery's
        // `LastMarked` broadcast can't see an unstored fragment.
        let mut state = self.state.lock();
        state.anchor_seq = state.anchor_seq.max(Some(pos.seq));
        Ok(pos)
    }

    /// Writes a *marked* fragment carrying only the log layer's checkpoint
    /// directory, and flushes. This re-establishes the recovery anchor at
    /// the current head without touching any service's checkpoint:
    /// recovery writes one after discarding a torn tail, so the resulting
    /// hole in the sequence space falls *below* the anchor, where the
    /// rollforward scan knows to skip missing stripes.
    ///
    /// # Errors
    ///
    /// As for [`Log::flush`].
    pub(crate) fn write_anchor(&self) -> Result<LogPosition> {
        let pos = {
            let mut state = self.state.lock();
            let dir = encode_checkpoint_dir(&state.checkpoints, None);
            let need = dir.len() + 16;
            let builder = self.ensure_builder(&mut state, need)?;
            let offset =
                builder.append_record(ServiceId::LOG_LAYER, log_record::CHECKPOINT_DIR, &dir);
            builder.mark();
            let seq = builder.fid().seq();
            state.appended_bytes += need as u64;
            LogPosition { seq, offset }
        };
        self.flush()?;
        let mut state = self.state.lock();
        state.anchor_seq = state.anchor_seq.max(Some(pos.seq));
        Ok(pos)
    }

    /// The newest checkpoint position for `service`, if any.
    pub fn last_checkpoint(&self, service: ServiceId) -> Option<LogPosition> {
        self.state.lock().checkpoints.get(&service).copied()
    }

    /// Seals and stores everything appended so far, waiting for
    /// durability. Partial stripes are completed (empty-fragment padding
    /// plus parity) so every byte is parity-protected.
    ///
    /// # Errors
    ///
    /// Returns the first store failure (e.g.
    /// [`SwarmError::ServerUnavailable`] if a stripe-group member is
    /// down).
    pub fn flush(&self) -> Result<()> {
        let _span = metrics().flush_us.span("log.flush");
        {
            let mut state = self.state.lock();
            if let Some(b) = &state.builder {
                if !b.is_empty() {
                    self.seal_current(&mut state)?;
                } else {
                    state.builder = None;
                }
            }
            self.pad_and_close_stripe(&mut state)?;
        }
        self.pool.flush()
    }

    /// Closes the log: flushes and rejects further appends.
    ///
    /// # Errors
    ///
    /// Propagates flush failures.
    pub fn close(&self) -> Result<()> {
        self.flush()?;
        self.state.lock().closed = true;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Reads the bytes at `addr`, transparently reconstructing the
    /// enclosing fragment if its server is unavailable (§2.3.3). The
    /// returned [`Bytes`] aliases the fragment's buffer (cache entry or
    /// decoded wire frame) — no copy is made.
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::ReconstructionFailed`] when more than one
    /// member of the fragment's stripe is gone, or the underlying
    /// transport/server errors otherwise.
    pub fn read(&self, addr: BlockAddr) -> Result<Bytes> {
        let start = std::time::Instant::now();
        let (source, result) = self.read_inner(addr);
        source.record(start.elapsed());
        result
    }

    fn read_inner(&self, addr: BlockAddr) -> (ReadSource, Result<Bytes>) {
        // Unflushed data may still be in the open builder: entries are
        // immutable once appended, so serve such reads straight from the
        // build buffer.
        metrics().reads.inc();
        {
            let mut state = self.state.lock();
            state.stats.reads += 1;
            if let Some(b) = &state.builder {
                if b.fid() == addr.fid {
                    let result = match b.read_range(addr.offset, addr.len) {
                        Some(bytes) => Ok(Bytes::from(bytes.to_vec())),
                        None => Err(SwarmError::RangeOutOfBounds {
                            addr,
                            stored: b.len() as u32,
                        }),
                    };
                    if result.is_ok() {
                        state.stats.cache_hits += 1;
                    }
                    return (ReadSource::Builder, result);
                }
            }
            if let Some(bytes) = self.cache.lock().get(addr.fid) {
                state.stats.cache_hits += 1;
                return (ReadSource::Cache, slice_fragment(&bytes, addr));
            }
        }

        // Prefetch mode: pull the whole fragment into the client cache on
        // a miss — and read the next `read_ahead` fragments in the
        // background — so sequential block reads become cache hits (the
        // optimization §3.4 names but the prototype lacked).
        if self.config.prefetch {
            let home = self.state.lock().fragment_map.get(&addr.fid).copied();
            let result =
                match fetch_into_cache(&self.reader, &self.cache, &self.inflight, home, addr.fid) {
                    Ok(Some(bytes)) => {
                        let data = slice_fragment(&bytes, addr);
                        self.spawn_read_ahead(addr.fid);
                        data
                    }
                    Ok(None) => Err(SwarmError::FragmentNotFound(addr.fid)),
                    Err(e) => Err(e),
                };
            return (ReadSource::Home, result);
        }

        // Fast path: direct range read from the fragment's home server
        // through the pipelined read engine.
        let home = self.state.lock().fragment_map.get(&addr.fid).copied();
        if let Some(server) = home {
            match self
                .reader
                .read_one(server, addr.fid, addr.offset, addr.len)
            {
                Ok(data) => return (ReadSource::Home, Ok(data)),
                Err(e) if e.is_unavailability() => {}
                Err(e) => return (ReadSource::Home, Err(e)),
            }
        }

        // Slow path: locate (the map may be stale) or reconstruct.
        if let Some((server, _)) = reconstruct::locate_fragment(&self.engine, addr.fid) {
            self.state.lock().fragment_map.insert(addr.fid, server);
            match self
                .reader
                .read_one(server, addr.fid, addr.offset, addr.len)
            {
                Ok(data) => return (ReadSource::Home, Ok(data)),
                Err(e) if e.is_unavailability() => {}
                Err(e) => return (ReadSource::Home, Err(e)),
            }
        }

        let m = metrics();
        swarm_metrics::trace!("log.read", "reconstructing fragment {}", addr.fid);
        let bytes = {
            let _span = m.reconstruct_us.span("log.reconstruct");
            match reconstruct::reconstruct_fragment_with(&self.reader, addr.fid) {
                Ok(b) => b,
                Err(e) => return (ReadSource::Reconstruct, Err(e)),
            }
        };
        m.reconstructions.inc();
        let data = slice_fragment(&bytes, addr);
        {
            let mut state = self.state.lock();
            state.stats.reconstructions += 1;
            self.cache.lock().insert(addr.fid, bytes);
        }
        (ReadSource::Reconstruct, data)
    }

    /// Reads several addresses at once — the scan path. Builder and
    /// cache hits are served locally; the remaining addresses are
    /// grouped by home server and fetched through the pipelined read
    /// engine (runs against one server collapse into `ReadBatch` RPCs,
    /// servers are queried in parallel), so a scan costs round trips
    /// proportional to the servers involved, not the blocks. Addresses
    /// whose fragment is unlocated or whose home is unavailable fall
    /// back to the one-address path, including reconstruction.
    ///
    /// Results are in `addrs` order.
    ///
    /// # Errors
    ///
    /// Returns the first non-availability error (a bad range, a failed
    /// reconstruction); per the single-read path, availability problems
    /// are masked by locate + reconstruction before they surface.
    pub fn read_many(&self, addrs: &[BlockAddr]) -> Result<Vec<Bytes>> {
        let m = metrics();
        let mut out: Vec<Option<Bytes>> = Vec::new();
        out.resize_with(addrs.len(), || None);
        // (server, [(index into addrs/out, addr)]) jobs for the engine.
        let mut jobs: Vec<(ServerId, Vec<(usize, BlockAddr)>)> = Vec::new();
        let mut fallback: Vec<usize> = Vec::new();
        {
            let mut state = self.state.lock();
            for (i, &addr) in addrs.iter().enumerate() {
                if let Some(b) = &state.builder {
                    if b.fid() == addr.fid {
                        let served = match b.read_range(addr.offset, addr.len) {
                            Some(bytes) => Bytes::from(bytes.to_vec()),
                            None => {
                                return Err(SwarmError::RangeOutOfBounds {
                                    addr,
                                    stored: b.len() as u32,
                                })
                            }
                        };
                        m.reads.inc();
                        state.stats.reads += 1;
                        state.stats.cache_hits += 1;
                        out[i] = Some(served);
                        continue;
                    }
                }
                if let Some(bytes) = self.cache.lock().get(addr.fid) {
                    m.reads.inc();
                    state.stats.reads += 1;
                    state.stats.cache_hits += 1;
                    out[i] = Some(slice_fragment(&bytes, addr)?);
                    continue;
                }
                match state.fragment_map.get(&addr.fid).copied() {
                    Some(server) => match jobs.iter_mut().find(|(s, _)| *s == server) {
                        Some((_, list)) => list.push((i, addr)),
                        None => jobs.push((server, vec![(i, addr)])),
                    },
                    None => fallback.push(i),
                }
            }
        }
        if !jobs.is_empty() {
            let specs: Vec<(ServerId, Vec<swarm_net::ReadSpec>)> = jobs
                .iter()
                .map(|(server, list)| {
                    (
                        *server,
                        list.iter()
                            .map(|(_, addr)| swarm_net::ReadSpec {
                                fid: addr.fid,
                                offset: addr.offset,
                                len: addr.len,
                            })
                            .collect(),
                    )
                })
                .collect();
            for ((_, list), results) in jobs.iter().zip(self.reader.fetch_scatter(specs)) {
                for ((i, _), result) in list.iter().zip(results) {
                    match result {
                        Ok(bytes) => {
                            m.reads.inc();
                            let mut state = self.state.lock();
                            state.stats.reads += 1;
                            out[*i] = Some(bytes);
                        }
                        // Home gone or mapping stale: the one-address
                        // path will locate or reconstruct.
                        Err(e) if e.is_unavailability() => fallback.push(*i),
                        Err(e) => return Err(e),
                    }
                }
            }
        }
        for i in fallback {
            // `read` counts its own stats and records its latency source.
            out[i] = Some(self.read(addrs[i])?);
        }
        Ok(out
            .into_iter()
            .map(|b| b.expect("every address resolved"))
            .collect())
    }

    /// Kicks off a background read-ahead of the fragments after `fid`
    /// (prefetch mode). At most one read-ahead runs at a time; fragments
    /// already cached are skipped without touching their recency.
    fn spawn_read_ahead(&self, fid: FragmentId) {
        let k = self.config.read_ahead as u64;
        if k == 0 {
            return;
        }
        if self.prefetch_busy.swap(true, Ordering::AcqRel) {
            return;
        }
        let reader = self.reader.clone();
        let cache = Arc::clone(&self.cache);
        let busy = Arc::clone(&self.prefetch_busy);
        let inflight = Arc::clone(&self.inflight);
        let client = self.config.client;
        // Snapshot the known homes up front: the thread must not hold
        // (or race on) the log state lock, and a direct home fetch avoids
        // a cluster-wide locate broadcast per prefetched fragment.
        let homes: Vec<Option<ServerId>> = {
            let state = self.state.lock();
            (fid.seq() + 1..=fid.seq() + k)
                .map(|seq| {
                    state
                        .fragment_map
                        .get(&FragmentId::new(client, seq))
                        .copied()
                })
                .collect()
        };
        // One background thread pulls the whole window through the read
        // engine: fragments sharing a home server ride one windowed,
        // batched pass instead of the old one-fragment-at-a-time chain
        // of detached fetches.
        std::thread::spawn(move || {
            // Claim the uncached fragments so the foreground read (and
            // any later read-ahead) never duplicates a fetch in flight.
            let mut claimed: Vec<(FragmentId, Option<ServerId>)> = Vec::new();
            {
                let cache = cache.lock();
                let mut fetching = inflight.fetching.lock();
                for (i, home) in homes.into_iter().enumerate() {
                    let next = FragmentId::new(client, fid.seq() + 1 + i as u64);
                    if cache.contains(next) || fetching.contains(&next) {
                        continue;
                    }
                    fetching.insert(next);
                    claimed.push((next, home));
                }
            }
            let mut by_home: Vec<(ServerId, Vec<FragmentId>)> = Vec::new();
            for (next, home) in &claimed {
                if let Some(server) = home {
                    match by_home.iter_mut().find(|(s, _)| s == server) {
                        Some((_, list)) => list.push(*next),
                        None => by_home.push((*server, vec![*next])),
                    }
                }
            }
            let mut fetched: HashMap<FragmentId, Bytes> = HashMap::new();
            for (server, fids) in by_home {
                for (f, result) in fids.iter().zip(reader.fetch_whole(server, &fids)) {
                    if let Ok(Some(bytes)) = result {
                        fetched.insert(*f, bytes);
                    }
                }
            }
            // Fill the cache in sequence order; anything the home pass
            // missed (unknown home, stale map, server down) goes through
            // locate/reconstruct, and the first fragment that exists
            // nowhere ends the read-ahead — we ran off the log's tail.
            for (next, _) in &claimed {
                match fetched.remove(next) {
                    Some(bytes) => cache.lock().insert(*next, bytes),
                    None => match fetch_whole_fragment(&reader, None, *next) {
                        Ok(Some(bytes)) => cache.lock().insert(*next, bytes),
                        _ => break,
                    },
                }
            }
            {
                let mut fetching = inflight.fetching.lock();
                for (next, _) in &claimed {
                    fetching.remove(next);
                }
            }
            inflight.done.notify_all();
            busy.store(false, Ordering::Release);
        });
    }

    /// Client-side operation counters.
    pub fn stats(&self) -> LogStats {
        self.state.lock().stats
    }

    /// Fetches and parses a whole fragment (recovery and cleaning use
    /// this). Falls back to reconstruction; `Ok(None)` means the fragment
    /// does not exist anywhere.
    ///
    /// # Errors
    ///
    /// Propagates transport errors and corruption.
    pub fn fetch_fragment_view(&self, fid: FragmentId) -> Result<Option<FragmentView>> {
        if let Some(bytes) = self.cache.lock().get(fid) {
            return Ok(Some(FragmentView::parse(&bytes)?));
        }
        match reconstruct::read_fragment_anywhere_with(&self.reader, fid)? {
            None => Ok(None),
            Some(bytes) => {
                let view = FragmentView::parse(&bytes)?;
                self.cache.lock().insert(fid, bytes);
                Ok(Some(view))
            }
        }
    }

    /// Drops a fragment from the client cache (cleaner calls this after
    /// deleting a stripe).
    pub fn evict_cached(&self, fid: FragmentId) {
        self.cache.lock().remove(fid);
    }

    /// Forgets the home-server mapping of a deleted fragment.
    pub fn forget_fragment(&self, fid: FragmentId) {
        self.cache.lock().remove(fid);
        self.state.lock().fragment_map.remove(&fid);
    }

    /// Sends one request to `server` over the read engine's pooled
    /// connections (a stale connection is transparently redialed).
    ///
    /// # Errors
    ///
    /// Propagates transport errors after one reconnect attempt.
    pub fn call_server(&self, server: ServerId, request: &Request) -> Result<Response> {
        self.engine.call(server, request)
    }

    /// Deletes fragment `fid` on its home server (cleaner use).
    ///
    /// # Errors
    ///
    /// Propagates server errors; deleting an already-absent fragment is
    /// reported as [`SwarmError::FragmentNotFound`].
    pub fn delete_fragment(&self, fid: FragmentId) -> Result<()> {
        let server = {
            let state = self.state.lock();
            state.fragment_map.get(&fid).copied()
        };
        let server = match server {
            Some(s) => s,
            None => reconstruct::locate_fragment(&self.engine, fid)
                .map(|(s, _)| s)
                .ok_or(SwarmError::FragmentNotFound(fid))?,
        };
        self.call_server(server, &Request::Delete { fid })?
            .into_result()?;
        self.forget_fragment(fid);
        Ok(())
    }

    /// Preallocates server slots for the next `stripes` stripes, so the
    /// corresponding stores cannot later fail for lack of space (§2.3's
    /// "preallocating space for a fragment" operation).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::OutOfSpace`] if any member server cannot
    /// reserve a slot, *before* any data is written — the caller can run
    /// the cleaner and retry.
    pub fn preallocate_stripes(&self, stripes: u64) -> Result<()> {
        let width = self.config.group.width() as u64;
        let first = {
            let state = self.state.lock();
            // Start at the current stripe's first sequence (slots for
            // already-written members are no-ops on the servers).
            (state.next_seq / width) * width
        };
        for s in 0..stripes {
            let stripe_seq = StripeSeq::new(first / width + s);
            let plan = self.config.group.plan(self.config.client, stripe_seq);
            for i in 0..plan.width() {
                let fid = plan.member_fid(i);
                let server = plan.member_server(i);
                self.call_server(
                    server,
                    &Request::Preallocate {
                        fid,
                        len: self.config.fragment_size as u32,
                    },
                )?
                .into_result()?;
            }
        }
        Ok(())
    }

    /// The sequence number the next-appended fragment will get.
    pub fn next_seq(&self) -> u64 {
        let state = self.state.lock();
        match &state.builder {
            Some(b) => b.fid().seq(),
            None => state.next_seq,
        }
    }
}

/// Encodes the per-service checkpoint directory, optionally overriding
/// one entry with a just-written checkpoint.
fn encode_checkpoint_dir(
    checkpoints: &HashMap<ServiceId, LogPosition>,
    extra: Option<(ServiceId, LogPosition)>,
) -> Vec<u8> {
    use swarm_types::{ByteWriter, Encode};
    let mut merged: std::collections::BTreeMap<ServiceId, LogPosition> =
        checkpoints.iter().map(|(s, p)| (*s, *p)).collect();
    if let Some((svc, pos)) = extra {
        merged.insert(svc, pos);
    }
    let mut w = ByteWriter::new();
    w.put_u32(merged.len() as u32);
    for (svc, pos) in merged {
        svc.encode(&mut w);
        w.put_u64(pos.seq);
        w.put_u32(pos.offset);
    }
    w.into_bytes()
}

/// Decodes a checkpoint directory record payload.
///
/// # Errors
///
/// Returns [`SwarmError::Corrupt`] on malformed payloads.
pub fn decode_checkpoint_dir(data: &[u8]) -> Result<Vec<(ServiceId, LogPosition)>> {
    use swarm_types::{ByteReader, Decode};
    let mut r = ByteReader::new(data);
    let n = r.get_u32()? as usize;
    if n > 4096 {
        return Err(SwarmError::corrupt("checkpoint directory too large"));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let svc = ServiceId::decode(&mut r)?;
        let seq = r.get_u64()?;
        let offset = r.get_u32()?;
        out.push((svc, LogPosition { seq, offset }));
    }
    Ok(out)
}

/// Whole-fragment fetch into the cache, deduplicated against concurrent
/// fetches of the same fragment: the second caller blocks until the
/// first finishes and takes the cached result. An errored fetch wakes
/// the waiters, who miss the cache and retry themselves.
fn fetch_into_cache(
    reader: &ReadEngine,
    cache: &Mutex<FragCache>,
    inflight: &Inflight,
    home: Option<ServerId>,
    fid: FragmentId,
) -> Result<Option<Bytes>> {
    loop {
        if let Some(bytes) = cache.lock().get(fid) {
            return Ok(Some(bytes));
        }
        let mut fetching = inflight.fetching.lock();
        if !fetching.contains(&fid) {
            fetching.insert(fid);
            break;
        }
        inflight.done.wait(&mut fetching);
    }
    let result = fetch_whole_fragment(reader, home, fid);
    if let Ok(Some(bytes)) = &result {
        cache.lock().insert(fid, bytes.share());
    }
    inflight.fetching.lock().remove(&fid);
    inflight.done.notify_all();
    result
}

/// Whole-fragment fetch for the prefetch path. Goes straight to the
/// known home server when the fragment map has one — two pooled RPCs,
/// no cluster-wide locate broadcast — and falls back to the
/// locate/reconstruct path when the map is cold or the home is gone.
fn fetch_whole_fragment(
    reader: &ReadEngine,
    home: Option<ServerId>,
    fid: FragmentId,
) -> Result<Option<Bytes>> {
    if let Some(server) = home {
        match reconstruct::fetch_fragment_with(reader, server, fid) {
            Ok(bytes) => return Ok(Some(bytes)),
            // Home down or the map entry is stale: locate will find it.
            Err(e) if e.is_unavailability() => {}
            Err(SwarmError::FragmentNotFound(_)) => {}
            Err(e) => return Err(e),
        }
    }
    reconstruct::read_fragment_anywhere_with(reader, fid)
}

/// Cuts the addressed range out of a whole-fragment buffer as a shared
/// view — no copy.
fn slice_fragment(bytes: &Bytes, addr: BlockAddr) -> Result<Bytes> {
    let start = addr.offset as usize;
    let end = addr.end() as usize;
    if end > bytes.len() {
        return Err(SwarmError::RangeOutOfBounds {
            addr,
            stored: bytes.len() as u32,
        });
    }
    Ok(bytes.slice(start..end))
}

#[cfg(test)]
mod tests {
    use super::FragCache;
    use swarm_types::{Bytes, ClientId, FragmentId};

    fn fid(seq: u64) -> FragmentId {
        FragmentId::new(ClientId::new(1), seq)
    }

    /// Regression test for the FIFO→LRU switch: a `get` must refresh the
    /// entry so the least-*recently*-used fragment is evicted, not the
    /// least-recently-*inserted* one.
    #[test]
    fn frag_cache_evicts_least_recently_used_not_oldest_insert() {
        let mut cache = FragCache::new(2);
        cache.insert(fid(1), Bytes::from(vec![1]));
        cache.insert(fid(2), Bytes::from(vec![2]));
        // Touch fid(1): under FIFO it would still be evicted next; under
        // LRU the untouched fid(2) goes first.
        assert!(cache.get(fid(1)).is_some());
        cache.insert(fid(3), Bytes::from(vec![3]));
        assert!(cache.get(fid(1)).is_some(), "recently-used entry evicted");
        assert!(cache.get(fid(2)).is_none(), "stale entry survived");
        assert!(cache.get(fid(3)).is_some());
    }

    #[test]
    fn frag_cache_contains_does_not_refresh_recency() {
        let mut cache = FragCache::new(2);
        cache.insert(fid(1), Bytes::from(vec![1]));
        cache.insert(fid(2), Bytes::from(vec![2]));
        // A prefetch probe on fid(1) must NOT save it from eviction.
        assert!(cache.contains(fid(1)));
        cache.insert(fid(3), Bytes::from(vec![3]));
        assert!(cache.get(fid(1)).is_none());
        assert!(cache.get(fid(2)).is_some());
    }

    #[test]
    fn frag_cache_zero_capacity_caches_nothing() {
        let mut cache = FragCache::new(0);
        cache.insert(fid(1), Bytes::from(vec![1]));
        assert!(cache.get(fid(1)).is_none());
    }
}
