//! The pipelined fragment writer (§2.1.2).
//!
//! "The log layer software in the client is multi-threaded, and performs
//! several operations concurrently … fragments are written to the servers
//! asynchronously, so that several may be written simultaneously … the log
//! layer transfers a fragment to a server while the previous fragment is
//! being written to disk."
//!
//! [`WritePool`] keeps one writer thread per server with a small bounded
//! queue (the paper's "rudimentary form of flow control"): the appending
//! thread seals fragments and hands them off without blocking until a
//! server's queue is full, keeping both network and disk busy.
//!
//! Each writer additionally keeps a *window* of outstanding `Store` RPCs
//! on the wire (see [`DEFAULT_WRITE_WINDOW`]): stores are started through
//! [`Connection::start_prepared`], completion is tracked per fragment
//! keyed by FID, and acks are consumed as they arrive — out of order on a
//! multiplexed transport. A window of 1 reproduces the paper's behavior
//! exactly (one store in flight per server); larger windows let the
//! server's group-commit batch one client's fsyncs. Transports without
//! pipelining (blocking sockets, in-process dispatch) complete each store
//! inside `start_prepared`, so the window transparently degrades to 1.
//! Connections come from the log's shared [`ConnectionPool`], so the
//! write path rides the same per-server channels as reads instead of
//! holding private sockets.

use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError};
use parking_lot::{Condvar, Mutex};
use swarm_net::{Connection, ConnectionPool, PendingCall, PreparedRequest, Request, Transport};
use swarm_types::{ClientId, FragmentId, Result, ServerId, SwarmError};

use crate::fragment::SealedFragment;

/// How many times a writer retries a failed store before reporting the
/// server lost (default; see [`WritePool::with_retry`]).
pub const STORE_RETRIES: usize = 5;

/// Pause between retries: long enough for a rebooting server process to
/// come back, short enough not to stall the pipeline noticeably
/// (default; see [`WritePool::with_retry`]).
pub const RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_millis(20);

/// Outstanding `Store` RPCs each server's writer keeps on the wire
/// (default; see `LogConfig::write_window`). 1 reproduces the
/// paper-faithful one-store-at-a-time pipeline.
pub const DEFAULT_WRITE_WINDOW: usize = 8;

pub(crate) struct WriterMetrics {
    pub(crate) store_us: swarm_metrics::Histogram,
    pub(crate) store_retries: swarm_metrics::Counter,
    /// Stores resubmitted after the server's admission layer answered
    /// `Busy` (fair-queueing pushback, not a connectivity failure).
    pub(crate) busy_backoffs: swarm_metrics::Counter,
    pub(crate) reconnects: swarm_metrics::Counter,
    pub(crate) write_errors: swarm_metrics::Counter,
    pub(crate) flush_dropped_errors: swarm_metrics::Counter,
    pub(crate) store_requeues: swarm_metrics::Counter,
    /// Stores currently on the wire across all servers (gauge).
    pub(crate) store_inflight: swarm_metrics::Gauge,
    /// Window occupancy sampled after each store is started (histogram
    /// over counts, not microseconds): how much of the configured window
    /// the workload actually uses.
    pub(crate) window_occupancy: swarm_metrics::Histogram,
}

pub(crate) fn metrics() -> &'static WriterMetrics {
    static M: std::sync::OnceLock<WriterMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| WriterMetrics {
        store_us: swarm_metrics::histogram("log.store_us"),
        store_retries: swarm_metrics::counter("log.store_retries"),
        busy_backoffs: swarm_metrics::counter("log.busy_backoffs"),
        reconnects: swarm_metrics::counter("log.reconnects"),
        write_errors: swarm_metrics::counter("log.write_errors"),
        flush_dropped_errors: swarm_metrics::counter("log.flush_dropped_errors"),
        store_requeues: swarm_metrics::counter("log.store_requeues"),
        store_inflight: swarm_metrics::gauge("log.store_inflight"),
        window_occupancy: swarm_metrics::histogram("log.store_window_occupancy"),
    })
}

struct Job {
    fragment: SealedFragment,
}

#[derive(Default)]
struct PoolState {
    in_flight: usize,
    errors: Vec<(ServerId, SwarmError)>,
    /// Sealed fragments whose store failed. They are *not* abandoned:
    /// the next flush re-queues them, so a stripe that lost a member to
    /// a down server heals once the server is back, and a flush that
    /// returns `Ok` really means every sealed fragment is durable.
    failed: Vec<(ServerId, SealedFragment)>,
}

struct Shared {
    state: Mutex<PoolState>,
    done: Condvar,
}

/// A pool of per-server writer threads with bounded queues.
pub struct WritePool {
    senders: HashMap<ServerId, Sender<Job>>,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WritePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WritePool")
            .field("servers", &self.senders.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl WritePool {
    /// Spawns one writer thread per server with queues of `depth`
    /// fragments each.
    ///
    /// `depth = 1` serializes each server's hand-off (transfer overlaps
    /// the *previous* disk write, the paper's scheme); larger depths
    /// admit more outstanding fragments per server. The store window
    /// defaults to [`DEFAULT_WRITE_WINDOW`].
    pub fn new(
        transport: Arc<dyn Transport>,
        client: ClientId,
        servers: &[ServerId],
        depth: usize,
    ) -> WritePool {
        Self::with_retry(
            transport,
            client,
            servers,
            depth,
            STORE_RETRIES,
            RETRY_BACKOFF,
        )
    }

    /// Like [`WritePool::new`], with an explicit retry policy: each failed
    /// store is retried up to `retries` times total, sleeping `backoff`
    /// between attempts. Chaos runs shorten the backoff so injected
    /// kill/restart cycles resolve quickly; production callers keep the
    /// defaults.
    pub fn with_retry(
        transport: Arc<dyn Transport>,
        client: ClientId,
        servers: &[ServerId],
        depth: usize,
        retries: usize,
        backoff: std::time::Duration,
    ) -> WritePool {
        let engine = Arc::new(ConnectionPool::new(transport, client));
        Self::with_engine(
            engine,
            servers,
            depth,
            DEFAULT_WRITE_WINDOW,
            retries,
            backoff,
        )
    }

    /// Full-control constructor: writers check connections out of
    /// `engine` — the same pool the log's read path uses, so write and
    /// read share per-server channels — and each keeps up to `window`
    /// stores on the wire (clamped to the connection's
    /// [`Connection::pipeline_width`]; `window = 1` is the paper's serial
    /// pipeline).
    pub fn with_engine(
        engine: Arc<ConnectionPool>,
        servers: &[ServerId],
        depth: usize,
        window: usize,
        retries: usize,
        backoff: std::time::Duration,
    ) -> WritePool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            done: Condvar::new(),
        });
        let mut senders = HashMap::new();
        let mut threads = Vec::new();
        for &server in servers {
            let (tx, rx) = bounded::<Job>(depth.max(1));
            let writer = ServerWriter {
                engine: engine.clone(),
                server,
                rx,
                shared: shared.clone(),
                window_limit: window.max(1),
                retries,
                backoff,
                conn: None,
                window: HashMap::new(),
                order: VecDeque::new(),
            };
            let handle = std::thread::Builder::new()
                .name(format!("swarm-writer-{}", server.raw()))
                .spawn(move || writer.run())
                .expect("spawn writer thread");
            senders.insert(server, tx);
            threads.push(handle);
        }
        WritePool {
            senders,
            shared,
            threads,
        }
    }

    /// Queues a sealed fragment for storage on `server`. Blocks only when
    /// that server's queue is full (flow control).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if `server` is not part of
    /// this pool, or [`SwarmError::Closed`] if the pool has shut down.
    pub fn submit(&self, server: ServerId, fragment: SealedFragment) -> Result<()> {
        let sender = self.senders.get(&server).ok_or_else(|| {
            SwarmError::invalid(format!("server {server} is not in the write pool"))
        })?;
        {
            let mut state = self.shared.state.lock();
            state.in_flight += 1;
        }
        sender.send(Job { fragment }).map_err(|_| {
            {
                let mut state = self.shared.state.lock();
                state.in_flight -= 1;
            }
            // Every in_flight decrement must notify: a flush_all waiting
            // on this job being the last in flight would otherwise sleep
            // forever (regression: failed_submit_wakes_waiting_flush).
            self.shared.done.notify_all();
            SwarmError::Closed("write pool")
        })
    }

    /// Waits for every queued fragment to be durably stored.
    ///
    /// # Errors
    ///
    /// Returns the first error any writer hit since the last `flush`. The
    /// remaining errors are no longer silently dropped: each one is traced
    /// with its server id and counted in `log.flush_dropped_errors` before
    /// being discarded (the log treats any store failure as fatal for the
    /// affected stripe, so one error is enough to fail the flush). Use
    /// [`WritePool::flush_all`] to receive every per-server error.
    pub fn flush(&self) -> Result<()> {
        self.flush_all().map_err(|mut errors| {
            let (_, first) = errors.remove(0);
            for (server, e) in errors {
                metrics().flush_dropped_errors.inc();
                swarm_metrics::trace!(
                    "log.flush",
                    "additional flush error on server {server}: {e}"
                );
            }
            first
        })
    }

    /// Waits for every queued fragment to be durably stored, reporting
    /// *all* errors accumulated since the last flush, each with the server
    /// that produced it.
    ///
    /// Fragments whose store failed earlier are re-queued here first: a
    /// flush only returns `Ok` once every sealed fragment — including ones
    /// a previous flush reported as failed — is actually on its server.
    /// (Duplicate stores after a lost ack are absorbed by the servers'
    /// idempotent `FragmentExists` reply.)
    ///
    /// # Errors
    ///
    /// The error value is the non-empty list of `(server, error)` pairs.
    /// Fragments that failed again stay queued for the next flush.
    pub fn flush_all(&self) -> std::result::Result<(), Vec<(ServerId, SwarmError)>> {
        loop {
            let retry = {
                let mut state = self.shared.state.lock();
                while state.in_flight > 0 {
                    self.shared.done.wait(&mut state);
                }
                if !state.errors.is_empty() {
                    return Err(state.errors.drain(..).collect());
                }
                std::mem::take(&mut state.failed)
            };
            if retry.is_empty() {
                return Ok(());
            }
            // Re-queue outside the lock: submit blocks on a full queue,
            // and the writer threads need the lock to drain it.
            for (server, fragment) in retry {
                metrics().store_requeues.inc();
                swarm_metrics::trace!(
                    "log.write",
                    "re-queueing {} for server {server} after earlier store failure",
                    fragment.fid()
                );
                if let Err(e) = self.submit(server, fragment) {
                    let mut state = self.shared.state.lock();
                    state.errors.push((server, e));
                }
            }
        }
    }

    /// Swaps in a test-controlled sender for `server`, detaching the real
    /// writer thread (its receiver drops, so it drains and exits). Lets
    /// tests stand in for the writer and control exactly when sends fail.
    #[cfg(test)]
    fn test_replace_sender(&mut self, server: ServerId, tx: Sender<Job>) {
        self.senders.insert(server, tx);
    }

    /// Stands in for a writer thread completing one job: decrements
    /// `in_flight` and notifies, exactly as `harvest_one` does.
    #[cfg(test)]
    fn test_complete_one(&self) {
        {
            let mut state = self.shared.state.lock();
            state.in_flight -= 1;
        }
        self.shared.done.notify_all();
    }

    /// Shuts the pool down, joining all writer threads. Queued work is
    /// completed first; fragments whose store already failed are dropped
    /// (flush never reported them durable, so nothing acknowledged is
    /// lost).
    pub fn shutdown(&mut self) {
        self.senders.clear(); // closes channels; threads drain and exit
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WritePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One fragment on the wire: the sealed bytes (kept for re-queueing on
/// failure), the prepared request (kept so retries replay the same
/// buffers), and the pending completion.
struct InFlightStore {
    fragment: SealedFragment,
    prepared: PreparedRequest,
    pending: PendingCall,
    started: Instant,
}

/// Per-server writer: pulls jobs off the bounded queue, keeps a window of
/// stores on the wire, and harvests completions oldest-first.
struct ServerWriter {
    engine: Arc<ConnectionPool>,
    server: ServerId,
    rx: Receiver<Job>,
    shared: Arc<Shared>,
    window_limit: usize,
    retries: usize,
    backoff: Duration,
    conn: Option<Box<dyn Connection>>,
    /// Completion tracking keyed by FID; `order` remembers start order
    /// for oldest-first harvesting.
    window: HashMap<FragmentId, InFlightStore>,
    order: VecDeque<FragmentId>,
}

impl ServerWriter {
    fn run(mut self) {
        let mut open = true;
        while open || !self.order.is_empty() {
            open = self.fill(open);
            if !self.order.is_empty() {
                self.harvest_one();
            }
        }
    }

    /// The effective window: the configured limit clamped to what the
    /// live connection can pipeline (1 on blocking/in-process transports,
    /// the mux inflight cap on a multiplexed channel).
    fn width(&self) -> usize {
        match &self.conn {
            Some(c) => self.window_limit.min(c.pipeline_width().max(1)),
            None => self.window_limit,
        }
    }

    /// Starts stores until the window is full or no job is immediately
    /// available. Blocks for work only when nothing is in flight (an
    /// empty window with a closed queue is the exit condition). Returns
    /// whether the queue is still open.
    fn fill(&mut self, mut open: bool) -> bool {
        while open && self.order.len() < self.width() {
            let job = if self.order.is_empty() {
                match self.rx.recv() {
                    Ok(job) => job,
                    Err(_) => {
                        open = false;
                        break;
                    }
                }
            } else {
                match self.rx.try_recv() {
                    Ok(job) => job,
                    Err(TryRecvError::Empty) => break,
                    Err(TryRecvError::Disconnected) => {
                        open = false;
                        break;
                    }
                }
            };
            // A re-queued fragment can share a FID with a copy already on
            // the wire (flush re-submitting while a duplicate store is in
            // flight); drain until the earlier copy completes so the
            // FID-keyed tracking stays unambiguous.
            while self.window.contains_key(&job.fragment.fid()) {
                self.harvest_one();
            }
            self.start_store(job);
        }
        open
    }

    /// Puts one store on the wire without waiting for its ack. `share()`
    /// hands the prepared request a view of the sealed fragment's buffer
    /// (no byte copy); any retry replays the same header + payload.
    fn start_store(&mut self, job: Job) {
        let fid = job.fragment.fid();
        let prepared = PreparedRequest::new(Request::Store {
            fid,
            marked: job.fragment.marked,
            ranges: vec![],
            data: job.fragment.bytes.share(),
        });
        let pending = match self.ensure_conn() {
            Ok(conn) => conn.start_prepared(&prepared),
            // Checkout failed (server down): the failure is harvested —
            // and retried — like any other store, preserving order.
            Err(e) => PendingCall::ready(Err(e)),
        };
        let m = metrics();
        m.store_inflight.add(1);
        self.window.insert(
            fid,
            InFlightStore {
                fragment: job.fragment,
                prepared,
                pending,
                started: Instant::now(),
            },
        );
        self.order.push_back(fid);
        m.window_occupancy.record_us(self.order.len() as u64);
    }

    /// Waits out the oldest store on the wire, retrying transport-level
    /// failures on fresh pooled connections, then reports the result to
    /// the pool's shared state. Every completion notifies `done`.
    fn harvest_one(&mut self) {
        let fid = self.order.pop_front().expect("harvest on empty window");
        let inflight = self.window.remove(&fid).expect("window entry for fid");
        let result = self.finish_store(inflight.prepared, inflight.pending);
        let m = metrics();
        m.store_inflight.add(-1);
        m.store_us.record(inflight.started.elapsed());
        let server = self.server;
        let mut state = self.shared.state.lock();
        state.in_flight -= 1;
        if let Err(e) = result {
            m.write_errors.inc();
            swarm_metrics::trace!("log.write", "store of {fid} on server {server} failed: {e}");
            state.errors.push((server, e));
            state.failed.push((server, inflight.fragment));
        }
        drop(state);
        self.shared.done.notify_all();
    }

    fn ensure_conn(&mut self) -> Result<&mut Box<dyn Connection>> {
        if self.conn.is_none() {
            self.conn = Some(self.engine.checkout(self.server)?);
        }
        Ok(self.conn.as_mut().expect("connection present"))
    }

    fn finish_store(&mut self, prepared: PreparedRequest, pending: PendingCall) -> Result<()> {
        let m = metrics();
        let mut last_err = match pending.wait() {
            Ok(resp) => match resp.into_result() {
                Ok(_) => return Ok(()),
                // A duplicate store after a retried-but-actually-
                // successful attempt is fine: the fragment is there.
                Err(SwarmError::FragmentExists(_)) => return Ok(()),
                // Admission pushback: the server is up but bounded this
                // client's backlog. Back off and resubmit on the same
                // connection — the one server-answered error that is
                // explicitly retryable.
                Err(e @ SwarmError::Busy(_)) => {
                    m.busy_backoffs.inc();
                    e
                }
                // Any other server answer is a protocol-level refusal:
                // final, not a connectivity problem to retry.
                Err(e) => return Err(e),
            },
            Err(e) => {
                // Transport failure: the shared connection (and, on mux,
                // every sibling store on it) may be dead. Drop it and
                // retry on fresh pooled connections, replaying the same
                // prepared buffers.
                self.conn = None;
                e
            }
        };
        for attempt in 1..self.retries.max(1) {
            m.store_retries.inc();
            std::thread::sleep(self.backoff);
            if self.conn.is_none() {
                m.reconnects.inc();
                swarm_metrics::trace!(
                    "log.reconnect",
                    "reconnecting to server {} (attempt {attempt})",
                    self.server
                );
            }
            let conn = match self.ensure_conn() {
                Ok(conn) => conn,
                Err(e) => {
                    last_err = e;
                    continue;
                }
            };
            match conn.call_prepared(&prepared) {
                Ok(resp) => match resp.into_result() {
                    Ok(_) => return Ok(()),
                    Err(SwarmError::FragmentExists(_)) => return Ok(()),
                    Err(e @ SwarmError::Busy(_)) => {
                        // Still throttled: keep the (healthy) connection
                        // and back off again.
                        m.busy_backoffs.inc();
                        last_err = e;
                    }
                    Err(e) => return Err(e),
                },
                Err(e) => {
                    self.conn = None; // force reconnect
                    last_err = e;
                }
            }
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentBuilder, FragmentHeader};
    use swarm_net::MemTransport;
    use swarm_server::{FragmentStore, MemStore, StorageServer};
    use swarm_types::{FragmentId, ServiceId, StripeSeq};

    fn cluster(n: u32) -> (Arc<MemTransport>, Vec<Arc<StorageServer<MemStore>>>) {
        let transport = Arc::new(MemTransport::new());
        let mut servers = Vec::new();
        for i in 0..n {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv.clone());
            servers.push(srv);
        }
        (transport, servers)
    }

    fn fragment(seq: u64, payload: &[u8]) -> SealedFragment {
        let header = FragmentHeader {
            flags: 0,
            fid: FragmentId::new(ClientId::new(1), seq),
            stripe: StripeSeq::new(0),
            stripe_first_seq: 0,
            member_count: 2,
            my_index: 0,
            parity_index: 1,
            body_len: 0,
            body_crc: 0,
            group: vec![ServerId::new(0), ServerId::new(1)],
            member_lens: vec![],
        };
        let mut b = FragmentBuilder::new(header, 1 << 16);
        b.append_block(ServiceId::new(1), b"", payload);
        b.seal()
    }

    #[test]
    fn fragments_arrive_on_their_servers() {
        let (transport, servers) = cluster(2);
        let pool = WritePool::new(
            transport.clone(),
            ClientId::new(1),
            &[ServerId::new(0), ServerId::new(1)],
            2,
        );
        for seq in 0..10 {
            let target = ServerId::new((seq % 2) as u32);
            pool.submit(target, fragment(seq, format!("frag{seq}").as_bytes()))
                .unwrap();
        }
        pool.flush().unwrap();
        assert_eq!(servers[0].store().fragment_count(), 5);
        assert_eq!(servers[1].store().fragment_count(), 5);
    }

    #[test]
    fn flush_reports_down_server() {
        let (transport, servers) = cluster(2);
        let pool = WritePool::new(
            transport.clone(),
            ClientId::new(1),
            &[ServerId::new(0), ServerId::new(1)],
            2,
        );
        transport.set_down(ServerId::new(1), true);
        pool.submit(ServerId::new(0), fragment(0, b"ok")).unwrap();
        pool.submit(ServerId::new(1), fragment(1, b"delayed"))
            .unwrap();
        let err = pool.flush().unwrap_err();
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        // The failed fragment is not abandoned: once the server is back,
        // the next flush re-queues it and only then reports clean.
        transport.set_down(ServerId::new(1), false);
        pool.submit(ServerId::new(0), fragment(2, b"ok2")).unwrap();
        pool.flush().unwrap();
        assert_eq!(servers[1].store().fragment_count(), 1);
    }

    /// While the server stays down, every flush keeps failing — the
    /// fragment is never silently dropped just because its error was
    /// reported once.
    #[test]
    fn flush_keeps_failing_until_the_fragment_lands() {
        let (transport, servers) = cluster(2);
        let pool = WritePool::new(
            transport.clone(),
            ClientId::new(1),
            &[ServerId::new(0), ServerId::new(1)],
            2,
        );
        transport.set_down(ServerId::new(1), true);
        pool.submit(ServerId::new(1), fragment(0, b"stuck"))
            .unwrap();
        pool.flush().unwrap_err();
        pool.flush().unwrap_err(); // re-queued and failed again
        transport.set_down(ServerId::new(1), false);
        pool.flush().unwrap(); // healed
        assert_eq!(servers[1].store().fragment_count(), 1);
    }

    /// Regression test: flush used to drop all but the first error on the
    /// floor with no record of which server failed. `flush_all` reports
    /// one error per failing server, and the pool stays usable afterward.
    #[test]
    fn flush_all_reports_every_failing_server_and_pool_recovers() {
        let (transport, servers) = cluster(3);
        let ids = [ServerId::new(0), ServerId::new(1), ServerId::new(2)];
        let pool = WritePool::new(transport.clone(), ClientId::new(1), &ids, 2);
        transport.set_down(ServerId::new(1), true);
        transport.set_down(ServerId::new(2), true);
        pool.submit(ServerId::new(0), fragment(0, b"ok")).unwrap();
        pool.submit(ServerId::new(1), fragment(1, b"doomed"))
            .unwrap();
        pool.submit(ServerId::new(2), fragment(2, b"doomed"))
            .unwrap();
        let errors = pool.flush_all().unwrap_err();
        let mut failed: Vec<u32> = errors.iter().map(|(s, _)| s.raw()).collect();
        failed.sort_unstable();
        assert_eq!(failed, vec![1, 2]);
        for (_, e) in &errors {
            assert!(matches!(e, SwarmError::ServerUnavailable(_)), "{e}");
        }
        // The errors were taken; once the servers come back the next
        // flush stores the new fragments *and* heals the failed ones.
        transport.set_down(ServerId::new(1), false);
        transport.set_down(ServerId::new(2), false);
        pool.submit(ServerId::new(1), fragment(3, b"retry"))
            .unwrap();
        pool.submit(ServerId::new(2), fragment(4, b"retry"))
            .unwrap();
        pool.flush().unwrap();
        assert_eq!(servers[1].store().fragment_count(), 2);
        assert_eq!(servers[2].store().fragment_count(), 2);
    }

    #[test]
    fn submit_to_foreign_server_rejected() {
        let (transport, _servers) = cluster(1);
        let pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        let err = pool
            .submit(ServerId::new(7), fragment(0, b"x"))
            .unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn flush_on_idle_pool_is_ok() {
        let (transport, _servers) = cluster(1);
        let pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        pool.flush().unwrap();
        pool.flush().unwrap();
    }

    #[test]
    fn many_fragments_through_narrow_queue() {
        // Queue depth 1 forces the submitter to block — exercising flow
        // control — but everything must still arrive.
        let (transport, servers) = cluster(1);
        let pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        for seq in 0..50 {
            pool.submit(ServerId::new(0), fragment(seq, &[seq as u8; 128]))
                .unwrap();
        }
        pool.flush().unwrap();
        assert_eq!(servers[0].store().fragment_count(), 50);
    }

    /// A store that fails and is retried must replay the *same* prepared
    /// buffers — no re-encode, no payload clone — and still land intact.
    #[test]
    fn retried_store_reuses_prepared_payload_without_copying() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct FlakyShared {
            fail_remaining: AtomicUsize,
            payload_ptrs: Mutex<Vec<usize>>,
        }

        struct Flaky {
            inner: Arc<MemTransport>,
            shared: Arc<FlakyShared>,
        }

        struct FlakyConn {
            shared: Arc<FlakyShared>,
            inner: Box<dyn Connection>,
        }

        impl Connection for FlakyConn {
            fn call(&mut self, request: &Request) -> swarm_types::Result<swarm_net::Response> {
                self.inner.call(request)
            }

            fn call_prepared(
                &mut self,
                prepared: &PreparedRequest,
            ) -> swarm_types::Result<swarm_net::Response> {
                self.shared
                    .payload_ptrs
                    .lock()
                    .push(prepared.payload().as_ptr() as usize);
                if self
                    .shared
                    .fail_remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(SwarmError::ServerUnavailable(self.inner.server()));
                }
                self.inner.call_prepared(prepared)
            }

            fn server(&self) -> ServerId {
                self.inner.server()
            }
        }

        impl Transport for Flaky {
            fn connect(
                &self,
                server: ServerId,
                client: ClientId,
            ) -> swarm_types::Result<Box<dyn Connection>> {
                Ok(Box::new(FlakyConn {
                    shared: self.shared.clone(),
                    inner: self.inner.connect(server, client)?,
                }))
            }

            fn servers(&self) -> Vec<ServerId> {
                self.inner.servers()
            }
        }

        let (mem, servers) = cluster(1);
        let shared = Arc::new(FlakyShared {
            fail_remaining: AtomicUsize::new(2),
            payload_ptrs: Mutex::new(Vec::new()),
        });
        let flaky = Flaky {
            inner: mem,
            shared: shared.clone(),
        };
        let pool = WritePool::new(Arc::new(flaky), ClientId::new(1), &[ServerId::new(0)], 1);
        let sealed = fragment(0, b"retry me without copying");
        let fid = sealed.fid();
        let expected = sealed.bytes.to_vec();
        let sealed_ptr = sealed.bytes.as_ptr() as usize;
        pool.submit(ServerId::new(0), sealed).unwrap();
        pool.flush().unwrap();

        // Two failures + the success: three attempts, every one carrying
        // the sealed fragment's own buffer (pointer identity ⇒ the payload
        // was neither re-encoded nor cloned between attempts).
        let ptrs = shared.payload_ptrs.lock().clone();
        assert_eq!(ptrs.len(), 3, "expected 2 failed attempts + 1 success");
        assert!(
            ptrs.iter().all(|&p| p == sealed_ptr),
            "payload buffer changed across retries: {ptrs:?} vs {sealed_ptr:#x}"
        );
        assert_eq!(
            servers[0]
                .store()
                .read(fid, 0, expected.len() as u32)
                .unwrap(),
            expected
        );
    }

    /// Regression: `submit`'s send-failure path used to decrement
    /// `in_flight` without notifying, so a `flush_all` waiting on that
    /// last in-flight job slept forever. The test stands in for the
    /// writer thread so it controls exactly when the channel dies.
    #[test]
    fn failed_submit_wakes_waiting_flush() {
        use std::time::{Duration, Instant};

        let (transport, _servers) = cluster(1);
        let mut pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        // Detach the real writer; the test plays its part.
        let (tx, rx) = bounded::<Job>(1);
        pool.test_replace_sender(ServerId::new(0), tx);
        let pool = Arc::new(pool);

        // Job A fills the queue; nothing consumes it.
        pool.submit(ServerId::new(0), fragment(0, b"parked"))
            .unwrap();
        // Job B blocks in send() on the full queue.
        let p = pool.clone();
        let blocked =
            std::thread::spawn(move || p.submit(ServerId::new(0), fragment(1, b"doomed")));
        std::thread::sleep(Duration::from_millis(50));
        // The flusher goes to sleep waiting for both in-flight jobs.
        let p = pool.clone();
        let flusher = std::thread::spawn(move || p.flush_all());
        std::thread::sleep(Duration::from_millis(50));

        // Job A "completes"...
        pool.test_complete_one();
        // ...and the channel dies under job B's blocked send. That
        // failure path's decrement is the last one — without its notify,
        // the flusher never wakes.
        drop(rx);
        let err = blocked.join().unwrap().unwrap_err();
        assert!(matches!(err, SwarmError::Closed(_)), "{err}");

        let deadline = Instant::now() + Duration::from_secs(10);
        while !flusher.is_finished() {
            assert!(
                Instant::now() < deadline,
                "flush_all slept through the failed submit's decrement"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        flusher.join().unwrap().expect("no store ever failed");
    }

    /// The writer genuinely overlaps stores: with a pipelined transport,
    /// all four submitted fragments are on the wire before any ack is
    /// consumed. (Completions are gated on all four having started, so a
    /// serial regression hangs rather than passes — a watchdog turns that
    /// into a failure.)
    #[test]
    fn window_overlaps_stores_on_a_pipelined_transport() {
        use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
        use std::time::{Duration, Instant};
        use swarm_net::PendingCall;

        const FRAGS: usize = 4;

        struct PipeShared {
            started: AtomicUsize,
            dial_open: AtomicBool,
        }

        struct PipeTransport {
            inner: Arc<MemTransport>,
            shared: Arc<PipeShared>,
        }

        struct PipeConn {
            inner: Box<dyn Connection>,
            mem: Arc<MemTransport>,
            shared: Arc<PipeShared>,
        }

        impl Connection for PipeConn {
            fn call(&mut self, request: &Request) -> swarm_types::Result<swarm_net::Response> {
                self.inner.call(request)
            }

            fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
                self.shared.started.fetch_add(1, Ordering::SeqCst);
                let shared = self.shared.clone();
                let mem = self.mem.clone();
                let server = self.inner.server();
                let request = prepared.request().clone();
                PendingCall::deferred(move || {
                    // No ack completes until every fragment is in flight.
                    while shared.started.load(Ordering::SeqCst) < FRAGS {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    mem.connect(server, ClientId::new(1))?.call(&request)
                })
            }

            fn pipeline_width(&self) -> usize {
                8
            }

            fn server(&self) -> ServerId {
                self.inner.server()
            }
        }

        impl Transport for PipeTransport {
            fn connect(
                &self,
                server: ServerId,
                client: ClientId,
            ) -> swarm_types::Result<Box<dyn Connection>> {
                // Hold the writer's first dial until the test has queued
                // every fragment, so the fill loop sees them all at once.
                while !self.shared.dial_open.load(Ordering::SeqCst) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                Ok(Box::new(PipeConn {
                    inner: self.inner.connect(server, client)?,
                    mem: self.inner.clone(),
                    shared: self.shared.clone(),
                }))
            }

            fn servers(&self) -> Vec<ServerId> {
                self.inner.servers()
            }
        }

        let (mem, servers) = cluster(1);
        let shared = Arc::new(PipeShared {
            started: AtomicUsize::new(0),
            dial_open: AtomicBool::new(false),
        });
        let transport = Arc::new(PipeTransport {
            inner: mem,
            shared: shared.clone(),
        });
        let pool = Arc::new(WritePool::new(
            transport,
            ClientId::new(1),
            &[ServerId::new(0)],
            FRAGS,
        ));
        for seq in 0..FRAGS as u64 {
            pool.submit(ServerId::new(0), fragment(seq, &[seq as u8; 64]))
                .unwrap();
        }
        shared.dial_open.store(true, Ordering::SeqCst);

        let p = pool.clone();
        let flusher = std::thread::spawn(move || p.flush());
        let deadline = Instant::now() + Duration::from_secs(30);
        while !flusher.is_finished() {
            assert!(
                Instant::now() < deadline,
                "writer never reached {FRAGS} concurrent stores (started {})",
                shared.started.load(Ordering::SeqCst)
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        flusher.join().unwrap().unwrap();
        assert_eq!(shared.started.load(Ordering::SeqCst), FRAGS);
        assert_eq!(servers[0].store().fragment_count(), FRAGS as u64);
    }

    #[test]
    fn shutdown_completes_queued_work() {
        let (transport, servers) = cluster(1);
        let mut pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 4);
        for seq in 0..8 {
            pool.submit(ServerId::new(0), fragment(seq, b"payload"))
                .unwrap();
        }
        pool.shutdown();
        assert_eq!(servers[0].store().fragment_count(), 8);
    }
}
