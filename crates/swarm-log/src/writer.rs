//! The pipelined fragment writer (§2.1.2).
//!
//! "The log layer software in the client is multi-threaded, and performs
//! several operations concurrently … fragments are written to the servers
//! asynchronously, so that several may be written simultaneously … the log
//! layer transfers a fragment to a server while the previous fragment is
//! being written to disk."
//!
//! [`WritePool`] keeps one writer thread per server with a small bounded
//! queue (the paper's "rudimentary form of flow control"): the appending
//! thread seals fragments and hands them off without blocking until a
//! server's queue is full, keeping both network and disk busy.

use std::collections::HashMap;
use std::sync::Arc;

use crossbeam::channel::{bounded, Sender};
use parking_lot::{Condvar, Mutex};
use swarm_net::{Connection, PreparedRequest, Request, Transport};
use swarm_types::{ClientId, Result, ServerId, SwarmError};

use crate::fragment::SealedFragment;

/// How many times a writer retries a failed store before reporting the
/// server lost (default; see [`WritePool::with_retry`]).
pub const STORE_RETRIES: usize = 5;

/// Pause between retries: long enough for a rebooting server process to
/// come back, short enough not to stall the pipeline noticeably
/// (default; see [`WritePool::with_retry`]).
pub const RETRY_BACKOFF: std::time::Duration = std::time::Duration::from_millis(20);

pub(crate) struct WriterMetrics {
    pub(crate) store_us: swarm_metrics::Histogram,
    pub(crate) store_retries: swarm_metrics::Counter,
    pub(crate) reconnects: swarm_metrics::Counter,
    pub(crate) write_errors: swarm_metrics::Counter,
    pub(crate) flush_dropped_errors: swarm_metrics::Counter,
    pub(crate) store_requeues: swarm_metrics::Counter,
}

pub(crate) fn metrics() -> &'static WriterMetrics {
    static M: std::sync::OnceLock<WriterMetrics> = std::sync::OnceLock::new();
    M.get_or_init(|| WriterMetrics {
        store_us: swarm_metrics::histogram("log.store_us"),
        store_retries: swarm_metrics::counter("log.store_retries"),
        reconnects: swarm_metrics::counter("log.reconnects"),
        write_errors: swarm_metrics::counter("log.write_errors"),
        flush_dropped_errors: swarm_metrics::counter("log.flush_dropped_errors"),
        store_requeues: swarm_metrics::counter("log.store_requeues"),
    })
}

struct Job {
    fragment: SealedFragment,
}

#[derive(Default)]
struct PoolState {
    in_flight: usize,
    errors: Vec<(ServerId, SwarmError)>,
    /// Sealed fragments whose store failed. They are *not* abandoned:
    /// the next flush re-queues them, so a stripe that lost a member to
    /// a down server heals once the server is back, and a flush that
    /// returns `Ok` really means every sealed fragment is durable.
    failed: Vec<(ServerId, SealedFragment)>,
}

struct Shared {
    state: Mutex<PoolState>,
    done: Condvar,
}

/// A pool of per-server writer threads with bounded queues.
pub struct WritePool {
    senders: HashMap<ServerId, Sender<Job>>,
    shared: Arc<Shared>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for WritePool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WritePool")
            .field("servers", &self.senders.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl WritePool {
    /// Spawns one writer thread per server with queues of `depth`
    /// fragments each.
    ///
    /// `depth = 1` serializes each server's pipeline (transfer overlaps
    /// the *previous* disk write, the paper's scheme); larger depths
    /// admit more outstanding fragments per server.
    pub fn new(
        transport: Arc<dyn Transport>,
        client: ClientId,
        servers: &[ServerId],
        depth: usize,
    ) -> WritePool {
        Self::with_retry(
            transport,
            client,
            servers,
            depth,
            STORE_RETRIES,
            RETRY_BACKOFF,
        )
    }

    /// Like [`WritePool::new`], with an explicit retry policy: each failed
    /// store is retried up to `retries` times total, sleeping `backoff`
    /// between attempts. Chaos runs shorten the backoff so injected
    /// kill/restart cycles resolve quickly; production callers keep the
    /// defaults.
    pub fn with_retry(
        transport: Arc<dyn Transport>,
        client: ClientId,
        servers: &[ServerId],
        depth: usize,
        retries: usize,
        backoff: std::time::Duration,
    ) -> WritePool {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            done: Condvar::new(),
        });
        let mut senders = HashMap::new();
        let mut threads = Vec::new();
        for &server in servers {
            let (tx, rx) = bounded::<Job>(depth.max(1));
            let transport = transport.clone();
            let shared = shared.clone();
            let handle = std::thread::Builder::new()
                .name(format!("swarm-writer-{}", server.raw()))
                .spawn(move || {
                    let mut conn: Option<Box<dyn Connection>> = None;
                    while let Ok(job) = rx.recv() {
                        let result = store_with_retry(
                            &*transport,
                            client,
                            server,
                            &mut conn,
                            &job,
                            retries,
                            backoff,
                        );
                        let mut state = shared.state.lock();
                        state.in_flight -= 1;
                        if let Err(e) = result {
                            metrics().write_errors.inc();
                            swarm_metrics::trace!(
                                "log.write",
                                "store of {} on server {server} failed: {e}",
                                job.fragment.fid()
                            );
                            state.errors.push((server, e));
                            state.failed.push((server, job.fragment));
                        }
                        shared.done.notify_all();
                    }
                })
                .expect("spawn writer thread");
            senders.insert(server, tx);
            threads.push(handle);
        }
        WritePool {
            senders,
            shared,
            threads,
        }
    }

    /// Queues a sealed fragment for storage on `server`. Blocks only when
    /// that server's queue is full (flow control).
    ///
    /// # Errors
    ///
    /// Returns [`SwarmError::InvalidArgument`] if `server` is not part of
    /// this pool, or [`SwarmError::Closed`] if the pool has shut down.
    pub fn submit(&self, server: ServerId, fragment: SealedFragment) -> Result<()> {
        let sender = self.senders.get(&server).ok_or_else(|| {
            SwarmError::invalid(format!("server {server} is not in the write pool"))
        })?;
        {
            let mut state = self.shared.state.lock();
            state.in_flight += 1;
        }
        sender.send(Job { fragment }).map_err(|_| {
            let mut state = self.shared.state.lock();
            state.in_flight -= 1;
            SwarmError::Closed("write pool")
        })
    }

    /// Waits for every queued fragment to be durably stored.
    ///
    /// # Errors
    ///
    /// Returns the first error any writer hit since the last `flush`. The
    /// remaining errors are no longer silently dropped: each one is traced
    /// with its server id and counted in `log.flush_dropped_errors` before
    /// being discarded (the log treats any store failure as fatal for the
    /// affected stripe, so one error is enough to fail the flush). Use
    /// [`WritePool::flush_all`] to receive every per-server error.
    pub fn flush(&self) -> Result<()> {
        self.flush_all().map_err(|mut errors| {
            let (_, first) = errors.remove(0);
            for (server, e) in errors {
                metrics().flush_dropped_errors.inc();
                swarm_metrics::trace!(
                    "log.flush",
                    "additional flush error on server {server}: {e}"
                );
            }
            first
        })
    }

    /// Waits for every queued fragment to be durably stored, reporting
    /// *all* errors accumulated since the last flush, each with the server
    /// that produced it.
    ///
    /// Fragments whose store failed earlier are re-queued here first: a
    /// flush only returns `Ok` once every sealed fragment — including ones
    /// a previous flush reported as failed — is actually on its server.
    /// (Duplicate stores after a lost ack are absorbed by the servers'
    /// idempotent `FragmentExists` reply.)
    ///
    /// # Errors
    ///
    /// The error value is the non-empty list of `(server, error)` pairs.
    /// Fragments that failed again stay queued for the next flush.
    pub fn flush_all(&self) -> std::result::Result<(), Vec<(ServerId, SwarmError)>> {
        loop {
            let retry = {
                let mut state = self.shared.state.lock();
                while state.in_flight > 0 {
                    self.shared.done.wait(&mut state);
                }
                if !state.errors.is_empty() {
                    return Err(state.errors.drain(..).collect());
                }
                std::mem::take(&mut state.failed)
            };
            if retry.is_empty() {
                return Ok(());
            }
            // Re-queue outside the lock: submit blocks on a full queue,
            // and the writer threads need the lock to drain it.
            for (server, fragment) in retry {
                metrics().store_requeues.inc();
                swarm_metrics::trace!(
                    "log.write",
                    "re-queueing {} for server {server} after earlier store failure",
                    fragment.fid()
                );
                if let Err(e) = self.submit(server, fragment) {
                    let mut state = self.shared.state.lock();
                    state.errors.push((server, e));
                }
            }
        }
    }

    /// Shuts the pool down, joining all writer threads. Queued work is
    /// completed first; fragments whose store already failed are dropped
    /// (flush never reported them durable, so nothing acknowledged is
    /// lost).
    pub fn shutdown(&mut self) {
        self.senders.clear(); // closes channels; threads drain and exit
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for WritePool {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn store_with_retry(
    transport: &dyn Transport,
    client: ClientId,
    server: ServerId,
    conn: &mut Option<Box<dyn Connection>>,
    job: &Job,
    retries: usize,
    backoff: std::time::Duration,
) -> Result<()> {
    // Encode the request once up front. `share()` hands the prepared
    // request a view of the sealed fragment's buffer (no byte copy), and
    // every retry below replays the same header + payload.
    let prepared = PreparedRequest::new(Request::Store {
        fid: job.fragment.fid(),
        marked: job.fragment.marked,
        ranges: vec![],
        data: job.fragment.bytes.share(),
    });
    let m = metrics();
    let _span = m.store_us.span("log.store");
    let mut last_err = SwarmError::ServerUnavailable(server);
    for attempt in 0..retries.max(1) {
        if attempt > 0 {
            m.store_retries.inc();
            std::thread::sleep(backoff);
        }
        if conn.is_none() {
            if attempt > 0 {
                m.reconnects.inc();
                swarm_metrics::trace!(
                    "log.reconnect",
                    "reconnecting to server {server} (attempt {attempt})"
                );
            }
            match transport.connect(server, client) {
                Ok(c) => *conn = Some(c),
                Err(e) => {
                    last_err = e;
                    continue;
                }
            }
        }
        let c = conn.as_mut().expect("connection present");
        match c.call_prepared(&prepared) {
            Ok(resp) => {
                return match resp.into_result() {
                    Ok(_) => Ok(()),
                    // A duplicate store after a retried-but-actually-
                    // successful attempt is fine: the fragment is there.
                    Err(SwarmError::FragmentExists(_)) => Ok(()),
                    Err(e) => Err(e),
                };
            }
            Err(e) => {
                *conn = None; // force reconnect
                last_err = e;
            }
        }
    }
    Err(last_err)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fragment::{FragmentBuilder, FragmentHeader};
    use swarm_net::MemTransport;
    use swarm_server::{FragmentStore, MemStore, StorageServer};
    use swarm_types::{FragmentId, ServiceId, StripeSeq};

    fn cluster(n: u32) -> (Arc<MemTransport>, Vec<Arc<StorageServer<MemStore>>>) {
        let transport = Arc::new(MemTransport::new());
        let mut servers = Vec::new();
        for i in 0..n {
            let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
            transport.register(ServerId::new(i), srv.clone());
            servers.push(srv);
        }
        (transport, servers)
    }

    fn fragment(seq: u64, payload: &[u8]) -> SealedFragment {
        let header = FragmentHeader {
            flags: 0,
            fid: FragmentId::new(ClientId::new(1), seq),
            stripe: StripeSeq::new(0),
            stripe_first_seq: 0,
            member_count: 2,
            my_index: 0,
            parity_index: 1,
            body_len: 0,
            body_crc: 0,
            group: vec![ServerId::new(0), ServerId::new(1)],
            member_lens: vec![],
        };
        let mut b = FragmentBuilder::new(header, 1 << 16);
        b.append_block(ServiceId::new(1), b"", payload);
        b.seal()
    }

    #[test]
    fn fragments_arrive_on_their_servers() {
        let (transport, servers) = cluster(2);
        let pool = WritePool::new(
            transport.clone(),
            ClientId::new(1),
            &[ServerId::new(0), ServerId::new(1)],
            2,
        );
        for seq in 0..10 {
            let target = ServerId::new((seq % 2) as u32);
            pool.submit(target, fragment(seq, format!("frag{seq}").as_bytes()))
                .unwrap();
        }
        pool.flush().unwrap();
        assert_eq!(servers[0].store().fragment_count(), 5);
        assert_eq!(servers[1].store().fragment_count(), 5);
    }

    #[test]
    fn flush_reports_down_server() {
        let (transport, servers) = cluster(2);
        let pool = WritePool::new(
            transport.clone(),
            ClientId::new(1),
            &[ServerId::new(0), ServerId::new(1)],
            2,
        );
        transport.set_down(ServerId::new(1), true);
        pool.submit(ServerId::new(0), fragment(0, b"ok")).unwrap();
        pool.submit(ServerId::new(1), fragment(1, b"delayed"))
            .unwrap();
        let err = pool.flush().unwrap_err();
        assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
        // The failed fragment is not abandoned: once the server is back,
        // the next flush re-queues it and only then reports clean.
        transport.set_down(ServerId::new(1), false);
        pool.submit(ServerId::new(0), fragment(2, b"ok2")).unwrap();
        pool.flush().unwrap();
        assert_eq!(servers[1].store().fragment_count(), 1);
    }

    /// While the server stays down, every flush keeps failing — the
    /// fragment is never silently dropped just because its error was
    /// reported once.
    #[test]
    fn flush_keeps_failing_until_the_fragment_lands() {
        let (transport, servers) = cluster(2);
        let pool = WritePool::new(
            transport.clone(),
            ClientId::new(1),
            &[ServerId::new(0), ServerId::new(1)],
            2,
        );
        transport.set_down(ServerId::new(1), true);
        pool.submit(ServerId::new(1), fragment(0, b"stuck"))
            .unwrap();
        pool.flush().unwrap_err();
        pool.flush().unwrap_err(); // re-queued and failed again
        transport.set_down(ServerId::new(1), false);
        pool.flush().unwrap(); // healed
        assert_eq!(servers[1].store().fragment_count(), 1);
    }

    /// Regression test: flush used to drop all but the first error on the
    /// floor with no record of which server failed. `flush_all` reports
    /// one error per failing server, and the pool stays usable afterward.
    #[test]
    fn flush_all_reports_every_failing_server_and_pool_recovers() {
        let (transport, servers) = cluster(3);
        let ids = [ServerId::new(0), ServerId::new(1), ServerId::new(2)];
        let pool = WritePool::new(transport.clone(), ClientId::new(1), &ids, 2);
        transport.set_down(ServerId::new(1), true);
        transport.set_down(ServerId::new(2), true);
        pool.submit(ServerId::new(0), fragment(0, b"ok")).unwrap();
        pool.submit(ServerId::new(1), fragment(1, b"doomed"))
            .unwrap();
        pool.submit(ServerId::new(2), fragment(2, b"doomed"))
            .unwrap();
        let errors = pool.flush_all().unwrap_err();
        let mut failed: Vec<u32> = errors.iter().map(|(s, _)| s.raw()).collect();
        failed.sort_unstable();
        assert_eq!(failed, vec![1, 2]);
        for (_, e) in &errors {
            assert!(matches!(e, SwarmError::ServerUnavailable(_)), "{e}");
        }
        // The errors were taken; once the servers come back the next
        // flush stores the new fragments *and* heals the failed ones.
        transport.set_down(ServerId::new(1), false);
        transport.set_down(ServerId::new(2), false);
        pool.submit(ServerId::new(1), fragment(3, b"retry"))
            .unwrap();
        pool.submit(ServerId::new(2), fragment(4, b"retry"))
            .unwrap();
        pool.flush().unwrap();
        assert_eq!(servers[1].store().fragment_count(), 2);
        assert_eq!(servers[2].store().fragment_count(), 2);
    }

    #[test]
    fn submit_to_foreign_server_rejected() {
        let (transport, _servers) = cluster(1);
        let pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        let err = pool
            .submit(ServerId::new(7), fragment(0, b"x"))
            .unwrap_err();
        assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    }

    #[test]
    fn flush_on_idle_pool_is_ok() {
        let (transport, _servers) = cluster(1);
        let pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        pool.flush().unwrap();
        pool.flush().unwrap();
    }

    #[test]
    fn many_fragments_through_narrow_queue() {
        // Queue depth 1 forces the submitter to block — exercising flow
        // control — but everything must still arrive.
        let (transport, servers) = cluster(1);
        let pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 1);
        for seq in 0..50 {
            pool.submit(ServerId::new(0), fragment(seq, &[seq as u8; 128]))
                .unwrap();
        }
        pool.flush().unwrap();
        assert_eq!(servers[0].store().fragment_count(), 50);
    }

    /// A store that fails and is retried must replay the *same* prepared
    /// buffers — no re-encode, no payload clone — and still land intact.
    #[test]
    fn retried_store_reuses_prepared_payload_without_copying() {
        use std::sync::atomic::{AtomicUsize, Ordering};

        struct FlakyShared {
            fail_remaining: AtomicUsize,
            payload_ptrs: Mutex<Vec<usize>>,
        }

        struct Flaky {
            inner: Arc<MemTransport>,
            shared: Arc<FlakyShared>,
        }

        struct FlakyConn {
            shared: Arc<FlakyShared>,
            inner: Box<dyn Connection>,
        }

        impl Connection for FlakyConn {
            fn call(&mut self, request: &Request) -> swarm_types::Result<swarm_net::Response> {
                self.inner.call(request)
            }

            fn call_prepared(
                &mut self,
                prepared: &PreparedRequest,
            ) -> swarm_types::Result<swarm_net::Response> {
                self.shared
                    .payload_ptrs
                    .lock()
                    .push(prepared.payload().as_ptr() as usize);
                if self
                    .shared
                    .fail_remaining
                    .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1))
                    .is_ok()
                {
                    return Err(SwarmError::ServerUnavailable(self.inner.server()));
                }
                self.inner.call_prepared(prepared)
            }

            fn server(&self) -> ServerId {
                self.inner.server()
            }
        }

        impl Transport for Flaky {
            fn connect(
                &self,
                server: ServerId,
                client: ClientId,
            ) -> swarm_types::Result<Box<dyn Connection>> {
                Ok(Box::new(FlakyConn {
                    shared: self.shared.clone(),
                    inner: self.inner.connect(server, client)?,
                }))
            }

            fn servers(&self) -> Vec<ServerId> {
                self.inner.servers()
            }
        }

        let (mem, servers) = cluster(1);
        let shared = Arc::new(FlakyShared {
            fail_remaining: AtomicUsize::new(2),
            payload_ptrs: Mutex::new(Vec::new()),
        });
        let flaky = Flaky {
            inner: mem,
            shared: shared.clone(),
        };
        let pool = WritePool::new(Arc::new(flaky), ClientId::new(1), &[ServerId::new(0)], 1);
        let sealed = fragment(0, b"retry me without copying");
        let fid = sealed.fid();
        let expected = sealed.bytes.to_vec();
        let sealed_ptr = sealed.bytes.as_ptr() as usize;
        pool.submit(ServerId::new(0), sealed).unwrap();
        pool.flush().unwrap();

        // Two failures + the success: three attempts, every one carrying
        // the sealed fragment's own buffer (pointer identity ⇒ the payload
        // was neither re-encoded nor cloned between attempts).
        let ptrs = shared.payload_ptrs.lock().clone();
        assert_eq!(ptrs.len(), 3, "expected 2 failed attempts + 1 success");
        assert!(
            ptrs.iter().all(|&p| p == sealed_ptr),
            "payload buffer changed across retries: {ptrs:?} vs {sealed_ptr:#x}"
        );
        assert_eq!(
            servers[0]
                .store()
                .read(fid, 0, expected.len() as u32)
                .unwrap(),
            expected
        );
    }

    #[test]
    fn shutdown_completes_queued_work() {
        let (transport, servers) = cluster(1);
        let mut pool = WritePool::new(transport, ClientId::new(1), &[ServerId::new(0)], 4);
        for seq in 0..8 {
            pool.submit(ServerId::new(0), fragment(seq, b"payload"))
                .unwrap();
        }
        pool.shutdown();
        assert_eq!(servers[0].store().fragment_count(), 8);
    }
}
