//! Fault injection: transient server outages, torn log tails, and the
//! paper-named prefetch extension.

use std::sync::Arc;
use std::time::Duration;

use swarm_log::{recover, Entry, Log, LogConfig};
use swarm_net::{MemTransport, Request, Transport};
use swarm_server::{FragmentStore, MemStore, StorageServer};
use swarm_types::{ClientId, Geometry, ServerId, ServiceId, SwarmError};

const SVC: ServiceId = ServiceId::new(1);

fn cluster(n: u32) -> (Arc<MemTransport>, Vec<Arc<StorageServer<MemStore>>>) {
    let transport = Arc::new(MemTransport::new());
    let mut servers = Vec::new();
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv.clone());
        servers.push(srv);
    }
    (transport, servers)
}

fn config(servers: u32) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(4096)
}

fn rs_config(geometry: &str) -> LogConfig {
    let g: Geometry = geometry.parse().unwrap();
    LogConfig::new(
        ClientId::new(1),
        (0..g.width() as u32).map(ServerId::new).collect(),
    )
    .unwrap()
    .geometry(g)
    .unwrap()
    .fragment_size(4096)
}

#[test]
fn rs_stripes_survive_m_concurrent_server_losses() {
    // The tentpole guarantee: k+m Reed–Solomon stripes serve byte-exact
    // reads with any m servers down — one more than XOR can absorb.
    for geometry in ["4+2", "8+3", "2+2"] {
        let g: Geometry = geometry.parse().unwrap();
        let width = g.width() as u32;
        let m = g.parity() as usize;
        let (transport, _servers) = cluster(width);
        let log = Log::create(transport.clone(), rs_config(geometry).cache_fragments(0)).unwrap();
        let mut addrs = Vec::new();
        for i in 0..48u32 {
            let payload = vec![(i % 251) as u8; 200 + (i as usize * 53) % 2500];
            addrs.push((log.append_block(SVC, b"", &payload).unwrap(), payload));
        }
        log.flush().unwrap();

        // Every m-subset of servers down, all acked blocks still read
        // byte-exact (width is small enough to sweep exhaustively).
        let mut patterns = 0;
        for pattern in 0u32..(1 << width) {
            if pattern.count_ones() as usize != m {
                continue;
            }
            patterns += 1;
            for s in 0..width {
                transport.set_down(ServerId::new(s), pattern & (1 << s) != 0);
            }
            // Spot-check a rotating handful per pattern (the full sweep
            // across all patterns covers every block many times over).
            for (j, (addr, payload)) in addrs.iter().enumerate() {
                if (j as u32 + pattern).is_multiple_of(7) {
                    assert_eq!(
                        &log.read(*addr).unwrap(),
                        payload,
                        "geometry {geometry} pattern {pattern:b} block {j}"
                    );
                }
            }
        }
        assert!(patterns > 1, "sweep actually ran");
        for s in 0..width {
            transport.set_down(ServerId::new(s), false);
        }
    }
}

#[test]
fn rs_recovery_with_m_servers_down() {
    // Checkpoint + records written at 4+2, then recovery runs with two
    // servers dead: rollforward must decode everything it replays.
    let (transport, _servers) = cluster(6);
    {
        let log = Log::create(transport.clone(), rs_config("4+2")).unwrap();
        log.checkpoint(SVC, b"anchored state").unwrap();
        for k in 0..10u16 {
            log.append_record(SVC, k, &[k as u8; 900]).unwrap();
        }
        log.flush().unwrap();
    }
    transport.set_down(ServerId::new(2), true);
    transport.set_down(ServerId::new(5), true);
    let (_log, replay) = recover(transport, rs_config("4+2"), &[SVC]).unwrap();
    assert_eq!(replay.checkpoint_data(SVC).unwrap(), b"anchored state");
    let kinds: Vec<u16> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, (0..10u16).collect::<Vec<_>>());
}

#[test]
fn recovery_with_wrong_geometry_is_rejected() {
    // Same width, different k/m split: recovery must refuse rather than
    // mis-stripe new data (5+1 and 4+2 both occupy 6 servers).
    let (transport, _servers) = cluster(6);
    {
        let log = Log::create(transport.clone(), rs_config("4+2")).unwrap();
        log.append_record(SVC, 1, &[0u8; 600]).unwrap();
        log.flush().unwrap();
    }
    let err = recover(transport, rs_config("5+1"), &[SVC]).unwrap_err();
    assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    assert!(err.to_string().contains("geometry"), "{err}");
}

#[test]
fn rs_geometry_must_match_group_width() {
    let err = LogConfig::new(ClientId::new(1), (0..5).map(ServerId::new).collect())
        .unwrap()
        .geometry("4+2".parse().unwrap())
        .unwrap_err();
    assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
}

#[test]
fn transient_server_outage_is_absorbed_by_retry() {
    let (transport, servers) = cluster(2);
    let log = Log::create(transport.clone(), config(2)).unwrap();
    for i in 0..20u32 {
        log.append_block(SVC, b"", &vec![i as u8; 600]).unwrap();
    }
    // Take server 1 down briefly while the flush is in flight; the write
    // pool's retry/backoff should ride it out.
    transport.set_down(ServerId::new(1), true);
    let t2 = transport.clone();
    let reviver = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(40));
        t2.set_down(ServerId::new(1), false);
    });
    log.flush()
        .expect("transient outage should be retried away");
    reviver.join().unwrap();
    let total: u64 = servers.iter().map(|s| s.store().fragment_count()).sum();
    assert!(total > 0);
    // Everything is readable afterwards.
    let addr = log.append_block(SVC, b"", b"post-outage").unwrap();
    log.flush().unwrap();
    assert_eq!(log.read(addr).unwrap(), b"post-outage");
}

#[test]
fn permanent_outage_still_fails_the_flush() {
    let (transport, _servers) = cluster(2);
    let log = Log::create(transport.clone(), config(2)).unwrap();
    log.append_block(SVC, b"", &[1u8; 600]).unwrap();
    transport.set_down(ServerId::new(1), true);
    let err = log.flush().unwrap_err();
    assert!(matches!(err, SwarmError::ServerUnavailable(_)), "{err}");
}

#[test]
fn torn_tail_is_discarded_but_durable_prefix_survives() {
    let (transport, _servers) = cluster(3);
    let mut early_records = 0u32;
    {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        log.checkpoint(SVC, b"anchor").unwrap();
        for k in 0..12u16 {
            log.append_record(SVC, k, &[k as u8; 500]).unwrap();
            early_records += 1;
        }
        log.flush().unwrap();
        // More records that are flushed…
        for k in 100..104u16 {
            log.append_record(SVC, k, &[0u8; 500]).unwrap();
        }
        log.flush().unwrap();
    }

    // Simulate a mid-write crash: the newest stripe lost two members
    // (e.g. the client died before parity and one data member shipped).
    let width = 3u64;
    let mut max_seq = 0;
    for s in 0..3u32 {
        let mut conn = transport
            .connect(ServerId::new(s), ClientId::new(1))
            .unwrap();
        // Find this server's fragments through the protocol.
        for seq in 0..100u64 {
            let fid = swarm_types::FragmentId::new(ClientId::new(1), seq);
            if let Ok(swarm_net::Response::Located(Some(_))) =
                conn.call(&Request::Locate { fid, header_len: 8 }).map(|r| {
                    r.into_result()
                        .unwrap_or(swarm_net::Response::Located(None))
                })
            {
                max_seq = max_seq.max(seq);
            }
        }
    }
    let last_stripe_first = (max_seq / width) * width;
    // Delete two members of the last stripe.
    let mut deleted = 0;
    for seq in last_stripe_first..last_stripe_first + width {
        if deleted == 2 {
            break;
        }
        for s in 0..3u32 {
            let mut conn = transport
                .connect(ServerId::new(s), ClientId::new(1))
                .unwrap();
            let fid = swarm_types::FragmentId::new(ClientId::new(1), seq);
            if conn
                .call(&Request::Delete { fid })
                .unwrap()
                .into_result()
                .is_ok()
            {
                deleted += 1;
                break;
            }
        }
    }
    assert_eq!(deleted, 2, "need a genuinely torn stripe");

    // Recovery: earlier stripes replay; the torn stripe's unreachable
    // entries are gone; new appends never collide with surviving fids.
    let (log, replay) = recover(transport, config(3), &[SVC]).unwrap();
    let kinds: Vec<u16> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    // The fully-stored early records must all be there, in order.
    assert!(kinds.len() >= early_records as usize, "kinds: {kinds:?}");
    assert_eq!(
        &kinds[..early_records as usize],
        &(0..12u16).collect::<Vec<_>>()[..],
        "durable prefix intact"
    );
    // The log keeps working with no fid collisions.
    for i in 0..10u32 {
        log.append_block(SVC, b"", &vec![i as u8; 700]).unwrap();
    }
    log.flush().expect("no collisions with surviving fragments");
}

#[test]
fn double_crash_after_torn_tail_loses_no_acknowledged_writes() {
    // Crash #1 leaves a torn stripe; recovery discards it and resumes
    // appending past the gap, so the gap is permanent. Recovery must
    // re-anchor past the hole — otherwise the *next* recovery's
    // rollforward scan stops at the gap and every write acknowledged
    // after crash #1 silently vanishes.
    let (transport, _servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        log.checkpoint(SVC, b"anchor").unwrap();
        log.append_record(SVC, 1, &[0u8; 500]).unwrap();
        log.flush().unwrap(); // acknowledged

        // Torn stripe: one member seals and ships as the appends roll
        // fragments, then the client dies before the rest.
        log.append_record(SVC, 2, &[0u8; 2000]).unwrap();
        log.append_record(SVC, 3, &[0u8; 2000]).unwrap();
        for i in 0..3 {
            transport.set_down(ServerId::new(i), true);
        }
        let _ = log.flush(); // fails — crash #1
    }
    for i in 0..3 {
        transport.set_down(ServerId::new(i), false);
    }

    // Recovery #1 discards the torn stripe; the client writes on and the
    // new data is acknowledged.
    {
        let (log, _replay) = recover(transport.clone(), config(3), &[SVC]).unwrap();
        log.append_record(SVC, 4, b"after first crash").unwrap();
        log.flush().unwrap(); // acknowledged
    } // crash #2: drop without a checkpoint

    // Recovery #2 must reach the live head across the discarded stripe.
    let (log, replay) = recover(transport, config(3), &[SVC]).unwrap();
    let kinds: Vec<u16> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(
        kinds,
        vec![1, 4],
        "acknowledged writes from both sides of the gap survive"
    );
    // And appends keep working with no fid collisions.
    log.append_record(SVC, 9, b"after second crash").unwrap();
    log.flush().unwrap();
}

#[test]
fn prefetch_turns_sequential_reads_into_one_fetch_per_fragment() {
    let (transport, servers) = cluster(3);
    // ~64 KiB fragments, 4 KiB blocks → many blocks per fragment.
    let base = LogConfig::new(ClientId::new(1), (0..3).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(64 * 1024);

    let run = |prefetch: bool| -> u64 {
        // Fresh servers per run for clean counters.
        let (transport, servers) = cluster(3);
        // Capacity 1: enough for sequential prefetch, small enough that
        // write-time caching doesn't mask the server traffic.
        let cfg = base.clone().prefetch(prefetch).cache_fragments(1);
        let log = Log::create(transport, cfg).unwrap();
        let mut addrs = Vec::new();
        for i in 0..128u32 {
            addrs.push(log.append_block(SVC, b"", &vec![i as u8; 4096]).unwrap());
        }
        log.flush().unwrap();
        for (i, addr) in addrs.iter().enumerate() {
            assert_eq!(log.read(*addr).unwrap(), vec![i as u8; 4096]);
        }
        servers.iter().map(|s| s.stats().reads).sum()
    };

    let without = run(false);
    let with = run(true);
    assert!(
        with * 4 < without,
        "prefetch should collapse server reads: {with} (prefetch) vs {without}"
    );
    let _ = (transport, servers);
}

#[test]
fn recovery_with_wrong_stripe_width_is_rejected() {
    let (transport, _servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        log.append_block(SVC, b"", b"written at width 3").unwrap();
        log.flush().unwrap();
    }
    // Recovering with only 2 of the 3 servers configured (width 2) must
    // fail loudly instead of silently mis-striping new data.
    let narrow = LogConfig::new(ClientId::new(1), vec![ServerId::new(0), ServerId::new(1)])
        .unwrap()
        .fragment_size(4096);
    let err = recover(transport, narrow, &[SVC]).unwrap_err();
    assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    assert!(err.to_string().contains("stripe width"), "{err}");
}

#[test]
fn recovery_when_the_anchor_servers_are_down() {
    // The newest marked fragment (the checkpoint anchor) may live on a
    // dead server: LastMarked then misses it, and recovery must still
    // find the checkpoint by scanning/reconstruction.
    let (transport, servers) = cluster(3);
    let ckpt_pos;
    {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        log.append_record(SVC, 1, b"before").unwrap();
        ckpt_pos = log.checkpoint(SVC, b"anchored state").unwrap();
        log.append_record(SVC, 2, b"after").unwrap();
        log.flush().unwrap();
    }
    // Find which server holds the marked fragment and kill it.
    let marked_holder = servers
        .iter()
        .position(|s| {
            s.store().last_marked(ClientId::new(1))
                == Some(swarm_types::FragmentId::new(ClientId::new(1), ckpt_pos.seq))
        })
        .expect("someone holds the anchor");
    transport.set_down(ServerId::new(marked_holder as u32), true);

    let (_log, replay) = recover(transport, config(3), &[SVC]).unwrap();
    assert_eq!(
        replay.checkpoint_data(SVC).unwrap(),
        b"anchored state",
        "checkpoint recovered despite its server being down"
    );
    let kinds: Vec<u16> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![2], "only the post-checkpoint record replays");
}

#[test]
fn unacknowledged_mid_stripe_writes_are_discarded_at_recovery() {
    // A crash between fragment stores leaves a stripe without parity.
    // Strict durability: only flush()-acknowledged (complete-stripe) data
    // survives recovery; the torn stripe is discarded entirely.
    let (transport, servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(3)).unwrap();
        log.append_record(SVC, 1, &[0u8; 500]).unwrap();
        log.flush().unwrap(); // acknowledged: stripe 0 complete

        // Second stripe: first data member seals and ships, then the
        // client "crashes" with the rest unwritten (kill the remaining
        // servers so the writer can't finish, then drop the log).
        log.append_record(SVC, 2, &[0u8; 2000]).unwrap(); // fills frag 3
        log.append_record(SVC, 3, &[0u8; 2000]).unwrap(); // rolls to frag 4
        transport.set_down(ServerId::new(0), true);
        transport.set_down(ServerId::new(1), true);
        transport.set_down(ServerId::new(2), true);
        let _ = log.flush(); // fails — crash
    }
    for i in 0..3 {
        transport.set_down(ServerId::new(i), false);
    }
    // Whatever partial fragments landed, recovery must deliver exactly
    // the acknowledged prefix.
    let (log, replay) = recover(transport, config(3), &[SVC]).unwrap();
    let kinds: Vec<u16> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![1], "only flushed records survive: {kinds:?}");
    // No unprotected fragments linger on the servers.
    let total: u64 = servers.iter().map(|s| s.store().fragment_count()).sum();
    assert_eq!(total, 3, "exactly the complete stripe remains, got {total}");
    // And the recovered log writes cleanly past the discarded region.
    log.append_record(SVC, 9, b"new era").unwrap();
    log.flush().unwrap();
}
