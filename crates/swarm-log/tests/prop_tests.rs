//! Property-based tests of the log layer's core invariants (DESIGN.md §6):
//! read-back fidelity, record replay order, recovery equivalence, and
//! reconstruction under arbitrary single-server failure.

use std::sync::Arc;

use proptest::prelude::*;
use swarm_log::{recover, Entry, Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, ServerId, ServiceId};

const SVC: ServiceId = ServiceId::new(1);

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

fn config(servers: u32) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(2048)
        .cache_fragments(2)
}

/// One step of a random log workload.
#[derive(Debug, Clone)]
enum Op {
    Block(Vec<u8>),
    Record(u16, Vec<u8>),
    Checkpoint(Vec<u8>),
    Flush,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => proptest::collection::vec(any::<u8>(), 1..900).prop_map(Op::Block),
        3 => (any::<u16>(), proptest::collection::vec(any::<u8>(), 0..200))
            .prop_map(|(k, d)| Op::Record(k, d)),
        1 => proptest::collection::vec(any::<u8>(), 0..100).prop_map(Op::Checkpoint),
        1 => Just(Op::Flush),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every block written is read back byte-identical, regardless of the
    /// interleaving of blocks, records, checkpoints, and flushes — and
    /// regardless of which single server is down at read time.
    #[test]
    fn prop_blocks_read_back_even_with_a_dead_server(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        servers in 2u32..5,
        dead in 0u32..5,
    ) {
        let transport = cluster(servers);
        let log = Log::create(transport.clone(), config(servers)).unwrap();
        let mut written = Vec::new();
        for op in &ops {
            match op {
                Op::Block(data) => {
                    let addr = log.append_block(SVC, b"", data).unwrap();
                    written.push((addr, data.clone()));
                }
                Op::Record(k, d) => {
                    log.append_record(SVC, *k, d).unwrap();
                }
                Op::Checkpoint(d) => {
                    log.checkpoint(SVC, d).unwrap();
                }
                Op::Flush => log.flush().unwrap(),
            }
        }
        log.flush().unwrap();
        let dead = dead % servers;
        transport.set_down(ServerId::new(dead), true);
        for (addr, data) in &written {
            let got = log.read(*addr).unwrap();
            prop_assert_eq!(&got, data);
        }
    }

    /// After a crash, replayed records for a service appear in exactly
    /// the order they were appended, starting right after the newest
    /// checkpoint.
    #[test]
    fn prop_recovery_preserves_record_order(
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let transport = cluster(3);
        let mut expected: Vec<(u16, Vec<u8>)> = Vec::new();
        {
            let log = Log::create(transport.clone(), config(3)).unwrap();
            for op in &ops {
                match op {
                    Op::Block(data) => {
                        log.append_block(SVC, b"", data).unwrap();
                    }
                    Op::Record(k, d) => {
                        log.append_record(SVC, *k, d).unwrap();
                        expected.push((*k, d.clone()));
                    }
                    Op::Checkpoint(d) => {
                        log.checkpoint(SVC, d).unwrap();
                        expected.clear(); // older records become obsolete
                    }
                    Op::Flush => log.flush().unwrap(),
                }
            }
            log.flush().unwrap();
        }
        let (_log, replay) = recover(transport, config(3), &[SVC]).unwrap();
        let got: Vec<(u16, Vec<u8>)> = replay
            .records_for(SVC)
            .iter()
            .filter_map(|e| match &e.entry {
                Entry::Record { kind, data, .. } => Some((*kind, data.clone())),
                _ => None,
            })
            .collect();
        prop_assert_eq!(got, expected);
    }

    /// Recovery after a crash yields the same blocks a live reader saw:
    /// every block whose creation reached the servers is readable at the
    /// same address with the same bytes.
    #[test]
    fn prop_recovered_blocks_match_prewritten(
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..700), 1..25),
    ) {
        let transport = cluster(3);
        let mut written = Vec::new();
        {
            let log = Log::create(transport.clone(), config(3)).unwrap();
            for p in &payloads {
                written.push((log.append_block(SVC, b"", p).unwrap(), p.clone()));
            }
            log.flush().unwrap();
        }
        let (log, replay) = recover(transport, config(3), &[SVC]).unwrap();
        // Every written block appears in the replay with its address…
        let replayed: Vec<_> = replay
            .records_for(SVC)
            .iter()
            .filter_map(|e| e.block_addr)
            .collect();
        prop_assert_eq!(replayed.len(), written.len());
        // …and reads back identically through the recovered log.
        for (addr, data) in &written {
            prop_assert_eq!(&log.read(*addr).unwrap(), data);
        }
    }
}

proptest! {
    /// The fragment parser never panics on arbitrary bytes (corrupt
    /// server replies, tampered fragments).
    #[test]
    fn prop_fragment_parser_never_panics(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
        let _ = swarm_log::FragmentView::parse(&data);
        let _ = swarm_log::fragment::parse_header(&data);
    }

    /// Flipping any single bit of a valid fragment is always detected
    /// (header CRC, body CRC, or structural validation).
    #[test]
    fn prop_fragment_bit_flips_detected(
        payload in proptest::collection::vec(any::<u8>(), 1..600),
        flip_at in any::<prop::sample::Index>(),
        flip_bit in 0u8..8,
    ) {
        use swarm_log::{FragmentBuilder, StripeGroup};
        use swarm_types::{ServiceId, StripeSeq};
        let group = StripeGroup::new((0..3).map(ServerId::new).collect()).unwrap();
        let plan = group.plan(ClientId::new(1), StripeSeq::new(0));
        let mut b = FragmentBuilder::new(plan.header(0), 1 << 16);
        b.append_block(ServiceId::new(1), b"tag", &payload);
        let sealed = b.seal();
        let mut bytes = sealed.bytes.to_vec();
        let i = flip_at.index(bytes.len());
        bytes[i] ^= 1 << flip_bit;
        match swarm_log::FragmentView::parse(&bytes) {
            Err(_) => {} // detected — good
            Ok(view) => {
                // The only acceptable "success" would be a parse that
                // still yields the original content, which a bit flip
                // cannot (CRC32 catches all single-bit errors). Fail.
                prop_assert!(
                    false,
                    "single-bit flip at byte {i} bit {flip_bit} went undetected: {:?}",
                    view.header
                );
            }
        }
    }
}
