//! End-to-end tests of the log layer over an in-process cluster.

use std::sync::Arc;

use swarm_log::{recover, Entry, Log, LogConfig};
use swarm_net::MemTransport;
use swarm_server::{FragmentStore, MemStore, StorageServer};
use swarm_types::{ClientId, ServerId, ServiceId, SwarmError};

const SVC: ServiceId = ServiceId::new(1);

fn cluster(n: u32) -> (Arc<MemTransport>, Vec<Arc<StorageServer<MemStore>>>) {
    let transport = Arc::new(MemTransport::new());
    let mut servers = Vec::new();
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv.clone());
        servers.push(srv);
    }
    (transport, servers)
}

fn small_log(transport: Arc<MemTransport>, client: u32, servers: u32) -> Log {
    let config = LogConfig::new(
        ClientId::new(client),
        (0..servers).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(4096) // small fragments force frequent sealing
    .cache_fragments(4);
    Log::create(transport, config).unwrap()
}

#[test]
fn write_flush_read_roundtrip() {
    let (transport, _servers) = cluster(3);
    let log = small_log(transport, 1, 3);
    let mut addrs = Vec::new();
    for i in 0..100u32 {
        let data = vec![i as u8; 512];
        addrs.push((
            log.append_block(SVC, &i.to_le_bytes(), &data).unwrap(),
            data,
        ));
    }
    log.flush().unwrap();
    for (addr, data) in &addrs {
        assert_eq!(&log.read(*addr).unwrap(), data);
    }
}

#[test]
fn blocks_span_many_fragments_and_stripes() {
    let (transport, servers) = cluster(3);
    let log = small_log(transport, 1, 3);
    for i in 0..200u32 {
        log.append_block(SVC, b"", &vec![(i % 251) as u8; 700])
            .unwrap();
    }
    log.flush().unwrap();
    // 200 * ~700B blocks in 4 KiB fragments: many stripes; every server
    // must hold roughly a third of the fragments.
    let counts: Vec<u64> = servers.iter().map(|s| s.store().fragment_count()).collect();
    let total: u64 = counts.iter().sum();
    assert!(total >= 30, "expected many fragments, got {total}");
    for (i, c) in counts.iter().enumerate() {
        assert!(
            *c >= total / 3 - 3 && *c <= total / 3 + 3,
            "server {i} holds {c} of {total} fragments — striping is unbalanced: {counts:?}"
        );
    }
}

#[test]
fn parity_overhead_matches_stripe_width() {
    // With width w, servers store w/(w-1) × the data bytes (plus headers
    // and padding) — Figure 4's "parity amortized over more fragments".
    for width in [2u32, 4, 8] {
        let (transport, servers) = cluster(width);
        let log = small_log(transport, 1, width);
        let payload = 100 * 1024u64;
        for _ in 0..100 {
            log.append_block(SVC, b"", &[7u8; 1024]).unwrap();
        }
        log.flush().unwrap();
        let stored: u64 = servers.iter().map(|s| s.store().byte_count()).sum();
        let ratio = stored as f64 / payload as f64;
        let ideal = width as f64 / (width as f64 - 1.0);
        assert!(
            ratio > ideal && ratio < ideal * 1.25,
            "width {width}: stored/payload = {ratio:.3}, ideal {ideal:.3}"
        );
    }
}

#[test]
fn read_with_one_server_down_reconstructs() {
    let (transport, _servers) = cluster(4);
    let log = small_log(transport.clone(), 1, 4);
    let mut addrs = Vec::new();
    for i in 0..60u32 {
        addrs.push((
            log.append_block(SVC, b"", &vec![i as u8; 600]).unwrap(),
            vec![i as u8; 600],
        ));
    }
    log.flush().unwrap();
    // Kill each server in turn; every block must stay readable.
    for down in 0..4u32 {
        transport.set_down(ServerId::new(down), true);
        for (addr, data) in &addrs {
            let got = log
                .read(*addr)
                .unwrap_or_else(|e| panic!("read {addr} with server {down} down: {e}"));
            assert_eq!(&got, data);
        }
        transport.set_down(ServerId::new(down), false);
    }
}

#[test]
fn two_failures_in_a_stripe_group_are_fatal() {
    let (transport, _servers) = cluster(3);
    // No client cache: force the read to go to the (dead) servers.
    let config = LogConfig::new(ClientId::new(1), (0..3).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(4096)
        .cache_fragments(0);
    let log = Log::create(transport.clone(), config).unwrap();
    let addr = log.append_block(SVC, b"", &[1u8; 512]).unwrap();
    log.flush().unwrap();
    transport.set_down(ServerId::new(0), true);
    transport.set_down(ServerId::new(1), true);
    transport.set_down(ServerId::new(2), true);
    // All three down: certainly unreadable. (The fragment plus its stripe
    // mates span all 3 servers; with ≥2 of the *relevant* ones down the
    // read must fail.)
    let err = log.read(addr).unwrap_err();
    assert!(
        matches!(
            err,
            SwarmError::ReconstructionFailed { .. } | SwarmError::ServerUnavailable(_)
        ),
        "{err}"
    );
}

#[test]
fn flush_mid_stripe_pads_and_protects() {
    let (transport, servers) = cluster(4);
    let log = small_log(transport.clone(), 1, 4);
    // One small block: stripe is 1 data + 2 padding + 1 parity.
    let addr = log.append_block(SVC, b"", b"lonely block").unwrap();
    log.flush().unwrap();
    let total: u64 = servers.iter().map(|s| s.store().fragment_count()).sum();
    assert_eq!(total, 4, "flush must complete the stripe");
    // And the lone block survives its server's death.
    for down in 0..4u32 {
        transport.set_down(ServerId::new(down), true);
        assert_eq!(log.read(addr).unwrap(), b"lonely block");
        transport.set_down(ServerId::new(down), false);
    }
}

#[test]
fn reads_of_unflushed_data_come_from_the_write_buffer() {
    let (transport, servers) = cluster(2);
    let log = small_log(transport, 1, 2);
    let addr = log.append_block(SVC, b"", b"pending").unwrap();
    // Nothing has reached the servers yet…
    let stored: u64 = servers.iter().map(|s| s.store().fragment_count()).sum();
    assert_eq!(stored, 0);
    // …but the block is already readable from the open fragment.
    assert_eq!(log.read(addr).unwrap(), b"pending");
    log.flush().unwrap();
    assert_eq!(log.read(addr).unwrap(), b"pending");
}

#[test]
fn oversized_block_rejected() {
    let (transport, _servers) = cluster(2);
    let log = small_log(transport, 1, 2);
    let too_big = vec![0u8; 8192];
    let err = log.append_block(SVC, b"", &too_big).unwrap_err();
    assert!(matches!(err, SwarmError::InvalidArgument(_)), "{err}");
    // max_block_size fits exactly.
    let fits = vec![0u8; log.max_block_size()];
    log.append_block(SVC, b"", &fits).unwrap();
    log.flush().unwrap();
}

#[test]
fn independent_clients_share_servers_without_interference() {
    let (transport, _servers) = cluster(3);
    let log_a = small_log(transport.clone(), 1, 3);
    let log_b = small_log(transport.clone(), 2, 3);
    let a = log_a.append_block(SVC, b"", b"from client 1").unwrap();
    let b = log_b.append_block(SVC, b"", b"from client 2").unwrap();
    log_a.flush().unwrap();
    log_b.flush().unwrap();
    assert_eq!(log_a.read(a).unwrap(), b"from client 1");
    assert_eq!(log_b.read(b).unwrap(), b"from client 2");
    assert_ne!(a.fid.client(), b.fid.client());
}

#[test]
fn close_rejects_further_appends() {
    let (transport, _servers) = cluster(2);
    let log = small_log(transport, 1, 2);
    log.append_block(SVC, b"", b"x").unwrap();
    log.close().unwrap();
    let err = log.append_block(SVC, b"", b"y").unwrap_err();
    assert!(matches!(err, SwarmError::Closed(_)), "{err}");
}

// ---------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------

fn config(client: u32, servers: u32) -> LogConfig {
    LogConfig::new(
        ClientId::new(client),
        (0..servers).map(ServerId::new).collect(),
    )
    .unwrap()
    .fragment_size(4096)
}

#[test]
fn recovery_of_empty_cluster_is_empty() {
    let (transport, _servers) = cluster(2);
    let (log, replay) = recover(transport, config(1, 2), &[SVC]).unwrap();
    assert!(replay.entries.is_empty());
    assert!(replay.checkpoints.is_empty());
    assert_eq!(log.next_seq(), 0);
}

#[test]
fn recovery_refuses_an_unreachable_cluster() {
    // A real log exists on a 3-server (2+1) cluster...
    let (transport, servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(1, 3)).unwrap();
        log.append_record(SVC, 1, b"durable and acked").unwrap();
        log.flush().unwrap();
    }
    // ...but the recovering client can only reach one server. One
    // survivor is below the data width k=2, so "no more fragments" can
    // mean either end-of-log or unreachable data — recovery must refuse
    // rather than hand back a silently truncated (here: empty) log.
    let partitioned = Arc::new(MemTransport::new());
    partitioned.register(ServerId::new(0), servers[0].clone());
    let err = recover(partitioned, config(1, 3), &[SVC]).unwrap_err();
    assert!(
        err.to_string().contains("refusing to recover"),
        "want the reachability refusal, got: {err}"
    );
    // With k servers answering, the same recovery succeeds (third server
    // still down — within the parity budget).
    let degraded = Arc::new(MemTransport::new());
    degraded.register(ServerId::new(0), servers[0].clone());
    degraded.register(ServerId::new(1), servers[1].clone());
    let (_log, replay) = recover(degraded, config(1, 3), &[SVC]).unwrap();
    assert_eq!(replay.records_for(SVC).len(), 1);
}

#[test]
fn checkpoint_and_rollforward() {
    let (transport, _servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(1, 3)).unwrap();
        log.append_record(SVC, 1, b"before ckpt").unwrap();
        log.checkpoint(SVC, b"state@ckpt").unwrap();
        log.append_record(SVC, 2, b"after ckpt 1").unwrap();
        log.append_block(SVC, b"blk", b"data after ckpt").unwrap();
        log.append_record(SVC, 3, b"after ckpt 2").unwrap();
        log.flush().unwrap();
        // Client "crashes" here: log dropped without close.
    }
    let (log, replay) = recover(transport, config(1, 3), &[SVC]).unwrap();
    assert_eq!(replay.checkpoint_data(SVC).unwrap(), b"state@ckpt");
    let records = replay.records_for(SVC);
    // Only entries after the checkpoint, in order, without the checkpoint
    // itself or pre-checkpoint records.
    let kinds: Vec<_> = records
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![2, 3]);
    let blocks: Vec<_> = records
        .iter()
        .filter(|e| matches!(e.entry, Entry::Block { .. }))
        .collect();
    assert_eq!(blocks.len(), 1);
    let addr = blocks[0].block_addr.unwrap();
    assert_eq!(log.read(addr).unwrap(), b"data after ckpt");
    // New appends continue after the old log.
    assert!(log.next_seq() > 0);
    let addr2 = log.append_block(SVC, b"", b"new era").unwrap();
    log.flush().unwrap();
    assert_eq!(log.read(addr2).unwrap(), b"new era");
}

#[test]
fn recovery_without_checkpoint_replays_everything() {
    let (transport, _servers) = cluster(2);
    {
        let log = Log::create(transport.clone(), config(1, 2)).unwrap();
        for k in 0..5u16 {
            log.append_record(SVC, k, format!("r{k}").as_bytes())
                .unwrap();
        }
        log.flush().unwrap();
    }
    let (_log, replay) = recover(transport, config(1, 2), &[SVC]).unwrap();
    let kinds: Vec<_> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(kinds, vec![0, 1, 2, 3, 4]);
}

#[test]
fn recovery_finds_older_checkpoints_of_other_services() {
    let svc_a = ServiceId::new(1);
    let svc_b = ServiceId::new(2);
    let (transport, _servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(1, 3)).unwrap();
        log.checkpoint(svc_b, b"b-state").unwrap();
        log.append_record(svc_b, 10, b"b after").unwrap();
        // Several stripes of traffic, then A checkpoints much later.
        for i in 0..50u32 {
            log.append_block(svc_a, b"", &vec![i as u8; 800]).unwrap();
        }
        log.checkpoint(svc_a, b"a-state").unwrap();
        log.append_record(svc_a, 20, b"a after").unwrap();
        log.flush().unwrap();
    }
    let (_log, replay) = recover(transport, config(1, 3), &[svc_a, svc_b]).unwrap();
    assert_eq!(replay.checkpoint_data(svc_a).unwrap(), b"a-state");
    assert_eq!(replay.checkpoint_data(svc_b).unwrap(), b"b-state");
    let b_records = replay.records_for(svc_b);
    assert_eq!(b_records.len(), 1);
    match &b_records[0].entry {
        Entry::Record { kind, data, .. } => {
            assert_eq!(*kind, 10);
            assert_eq!(data, b"b after");
        }
        e => panic!("{e:?}"),
    }
}

#[test]
fn recovery_with_one_server_down_reconstructs_the_log() {
    let (transport, _servers) = cluster(3);
    {
        let log = Log::create(transport.clone(), config(1, 3)).unwrap();
        log.checkpoint(SVC, b"ckpt").unwrap();
        for k in 0..20u16 {
            log.append_record(SVC, k, &k.to_le_bytes()).unwrap();
        }
        log.flush().unwrap();
    }
    transport.set_down(ServerId::new(1), true);
    let (_log, replay) = recover(transport, config(1, 3), &[SVC]).unwrap();
    assert_eq!(replay.checkpoint_data(SVC).unwrap(), b"ckpt");
    assert_eq!(replay.records_for(SVC).len(), 20);
}

#[test]
fn recovered_log_appends_do_not_collide_with_old_fragments() {
    let (transport, servers) = cluster(2);
    {
        let log = Log::create(transport.clone(), config(1, 2)).unwrap();
        log.append_block(SVC, b"", b"old").unwrap();
        log.flush().unwrap();
    }
    let before = servers[0].store().fragment_count() + servers[1].store().fragment_count();
    let (log, _replay) = recover(transport, config(1, 2), &[SVC]).unwrap();
    log.append_block(SVC, b"", b"new").unwrap();
    log.flush().unwrap();
    let after = servers[0].store().fragment_count() + servers[1].store().fragment_count();
    assert_eq!(after, before + 2, "new stripe, no overwrites");
}

#[test]
fn multiple_checkpoints_newest_wins() {
    let (transport, _servers) = cluster(2);
    {
        let log = Log::create(transport.clone(), config(1, 2)).unwrap();
        log.checkpoint(SVC, b"v1").unwrap();
        log.append_record(SVC, 1, b"between").unwrap();
        log.checkpoint(SVC, b"v2").unwrap();
        log.append_record(SVC, 2, b"tail").unwrap();
        log.flush().unwrap();
    }
    let (_log, replay) = recover(transport, config(1, 2), &[SVC]).unwrap();
    assert_eq!(replay.checkpoint_data(SVC).unwrap(), b"v2");
    let kinds: Vec<_> = replay
        .records_for(SVC)
        .iter()
        .filter_map(|e| match &e.entry {
            Entry::Record { kind, .. } => Some(*kind),
            _ => None,
        })
        .collect();
    assert_eq!(
        kinds,
        vec![2],
        "records before the newest checkpoint are obsolete"
    );
}

#[test]
fn delete_records_replay() {
    let (transport, _servers) = cluster(2);
    let addr;
    {
        let log = Log::create(transport.clone(), config(1, 2)).unwrap();
        addr = log.append_block(SVC, b"", b"doomed").unwrap();
        log.delete_block(SVC, addr).unwrap();
        log.flush().unwrap();
    }
    let (_log, replay) = recover(transport, config(1, 2), &[SVC]).unwrap();
    let deletes: Vec<_> = replay
        .records_for(SVC)
        .into_iter()
        .filter(|e| matches!(e.entry, Entry::Delete { .. }))
        .collect();
    assert_eq!(deletes.len(), 1);
    match &deletes[0].entry {
        Entry::Delete { addr: got, .. } => assert_eq!(*got, addr),
        e => panic!("{e:?}"),
    }
}

#[test]
fn log_stats_track_the_pipeline() {
    let (transport, _servers) = cluster(3);
    let log = small_log(transport.clone(), 1, 3);
    for i in 0..50u32 {
        log.append_block(SVC, b"", &vec![i as u8; 700]).unwrap();
    }
    log.append_record(SVC, 1, b"rec").unwrap();
    let addr = log.append_block(SVC, b"", b"probe").unwrap();
    log.checkpoint(SVC, b"ckpt").unwrap();

    let s = log.stats();
    assert_eq!(s.blocks_appended, 51);
    assert_eq!(s.records_appended, 1);
    assert_eq!(s.checkpoints, 1);
    assert!(s.data_fragments > 5, "{s:?}");
    // One parity per stripe of width 3 → parity ≈ data/2.
    assert!(s.parity_fragments >= s.data_fragments / 2, "{s:?}");
    assert!(s.bytes_shipped > 35_000, "{s:?}");

    // Cached read.
    log.read(addr).unwrap();
    let s = log.stats();
    assert_eq!(s.reads, 1);
    assert_eq!(s.cache_hits, 1);
    assert_eq!(s.reconstructions, 0);

    // Force a reconstruction.
    log.forget_fragment(addr.fid);
    transport.set_down(ServerId::new(0), true);
    transport.set_down(ServerId::new(1), true);
    transport.set_down(ServerId::new(2), true);
    let _ = log.read(addr); // fails, but counts the read
    transport.set_down(ServerId::new(0), false);
    transport.set_down(ServerId::new(1), false);
    transport.set_down(ServerId::new(2), false);
    // Kill just the holder so reconstruction succeeds.
    let (holder, _) = swarm_log::reconstruct::locate_fragment(log.engine(), addr.fid).unwrap();
    log.forget_fragment(addr.fid);
    transport.set_down(holder, true);
    assert_eq!(log.read(addr).unwrap(), b"probe");
    assert_eq!(log.stats().reconstructions, 1);
}

#[test]
fn reconstruction_with_member_dying_mid_fetch_falls_back_to_locate() {
    use swarm_net::Request;

    // Stripe group = servers 0..3; server 3 is outside the group and acts
    // as the "re-homed copy" target the locate fallback must discover.
    let (transport, _servers) = cluster(4);
    let log = small_log(transport.clone(), 1, 3);
    let mut addrs = Vec::new();
    for i in 0..30u32 {
        addrs.push(
            log.append_block(SVC, b"", &vec![(i % 251) as u8; 700])
                .unwrap(),
        );
    }
    log.flush().unwrap();
    let addr = addrs[5];
    let expected = vec![5u8; 700];
    let engine = log.engine().clone();

    // Mirror every fragment EXCEPT the victim's own onto server 3, so the
    // victim can only come back via reconstruction, but every stripe
    // member survives somewhere even after two group servers fail.
    let extra = ServerId::new(3);
    for seq in 0..1000u64 {
        let fid = swarm_types::FragmentId::new(ClientId::new(1), seq);
        let Some((holder, _)) = swarm_log::reconstruct::locate_fragment(&engine, fid) else {
            break;
        };
        if fid == addr.fid {
            continue;
        }
        let bytes = swarm_log::reconstruct::fetch_fragment(&engine, holder, fid).unwrap();
        engine
            .call(
                extra,
                &Request::Store {
                    fid,
                    marked: false,
                    ranges: vec![],
                    data: bytes,
                },
            )
            .unwrap()
            .into_result()
            .unwrap();
    }

    // Kill the victim's home outright, and arm a surviving member's home
    // to die a couple of RPCs into the reconstruction — i.e. mid-fetch,
    // while the parallel member fan-out is in flight.
    let (home, _) = swarm_log::reconstruct::locate_fragment(&engine, addr.fid).unwrap();
    log.forget_fragment(addr.fid);
    transport.set_down(home, true);
    let dying = ServerId::new((0..3).find(|i| ServerId::new(*i) != home).unwrap());
    transport.faults(dying).unwrap().fail_after(2);

    // The fan-out must notice the mid-fetch death, fall back to a locate
    // broadcast, find the mirror on server 3, and finish — not deadlock.
    assert_eq!(log.read(addr).unwrap(), expected);
    assert!(log.stats().reconstructions >= 1);
}
