//! Property tests for the windowed, batched read path (DESIGN.md §16):
//! random read windows, random scan lengths (exercising `ReadBatch`
//! chunking), genuinely out-of-order completions (each RPC finishes on
//! its own thread after a random delay, like responses on a mux channel),
//! injected transient per-call failures, and a dead server must all
//! preserve byte-exact readback — single reads and `read_many` scans
//! alike, through the reconstruction fallback when the home is gone.
//!
//! Also pins the YCSB-B head-of-line fix at the log layer: reads complete
//! while a full window of store RPCs is stalled in flight.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;
use swarm_log::{Log, LogConfig};
use swarm_net::{Connection, MemTransport, PendingCall, PreparedRequest, Request, Transport};
use swarm_server::{MemStore, StorageServer};
use swarm_types::{BlockAddr, ClientId, Result, ServerId, ServiceId, SwarmError};

const SVC: ServiceId = ServiceId::new(1);

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

/// Shared schedule for the decorated transport: transient failure budget
/// (any pipelined call, reads included) and the completion delay sequence.
struct ChaosState {
    /// Pipelined calls left to fail, cluster-wide. Transient: the read
    /// engine replays a failed call on a fresh dial, which bypasses
    /// injection, so every failure heals on retry.
    fail_budget: Mutex<usize>,
    /// Completion delays in microseconds, consumed round-robin.
    delays: Vec<u64>,
    next_delay: AtomicUsize,
}

/// Wraps `MemTransport` with a pipelining `start_prepared`: every RPC is
/// dispatched on a detached thread and completes after a drawn delay, so
/// completions land out of order exactly as they do on a multiplexed
/// socket.
struct ReorderTransport {
    inner: Arc<MemTransport>,
    state: Arc<ChaosState>,
}

struct ReorderConn {
    inner: Box<dyn Connection>,
    mem: Arc<MemTransport>,
    client: ClientId,
    state: Arc<ChaosState>,
}

impl Connection for ReorderConn {
    fn call(&mut self, request: &Request) -> Result<swarm_net::Response> {
        self.inner.call(request)
    }

    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        let server = self.inner.server();
        let fail = {
            let mut budget = self.state.fail_budget.lock();
            if *budget > 0 {
                *budget -= 1;
                true
            } else {
                false
            }
        };
        let idx = self.state.next_delay.fetch_add(1, Ordering::Relaxed);
        let delay = self.state.delays[idx % self.state.delays.len()];
        let mem = self.mem.clone();
        let client = self.client;
        let request = prepared.request().clone();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay));
            let result = if fail {
                Err(SwarmError::ServerUnavailable(server))
            } else {
                mem.connect(server, client)
                    .and_then(|mut c| c.call(&request))
            };
            let _ = tx.send(result);
        });
        PendingCall::deferred(move || {
            rx.recv()
                .unwrap_or(Err(SwarmError::ServerUnavailable(server)))
        })
    }

    fn pipeline_width(&self) -> usize {
        64
    }

    fn server(&self) -> ServerId {
        self.inner.server()
    }
}

impl Transport for ReorderTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        Ok(Box::new(ReorderConn {
            inner: self.inner.connect(server, client)?,
            mem: self.inner.clone(),
            client,
            state: self.state.clone(),
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

fn read_config(servers: u32, read_window: usize, write_window: usize) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(2048)
        .cache_fragments(0) // force reads through the servers
        .read_window(read_window)
        .write_window(write_window)
        .store_retries(4)
        .retry_backoff(Duration::from_millis(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Windowed, batched reads under reordered completions and transient
    /// call failures: single reads and scans of every chunk length return
    /// byte-exact data, in order — then again with a random server dead,
    /// through locate + reconstruction.
    #[test]
    fn prop_windowed_batched_reads_are_byte_exact(
        read_window in 1usize..12,
        write_window in 1usize..6,
        servers in 2u32..5,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..700), 8..32),
        delays in proptest::collection::vec(0u64..2_000, 16..17),
        read_failures in 0usize..4,
        scan in 1usize..20,
        dead in 0u32..5,
    ) {
        let mem = cluster(servers);
        let state = Arc::new(ChaosState {
            // Writes land before the budget applies to the read phase:
            // stores also draw from it, which only adds coverage (their
            // retry path heals transient failures the same way).
            fail_budget: Mutex::new(0),
            delays,
            next_delay: AtomicUsize::new(0),
        });
        let transport = Arc::new(ReorderTransport { inner: mem.clone(), state: state.clone() });
        let log = Log::create(transport, read_config(servers, read_window, write_window)).unwrap();
        let mut written: Vec<(BlockAddr, Vec<u8>)> = Vec::new();
        for p in &payloads {
            written.push((log.append_block(SVC, b"", p).unwrap(), p.clone()));
        }
        log.flush().unwrap();
        *state.fail_budget.lock() = read_failures;

        // Single-read path.
        for (addr, data) in &written {
            prop_assert_eq!(&log.read(*addr).unwrap(), data);
        }
        // Scan path: every chunk length, so requests to one server span
        // the single-Read case, partial batches, and multi-chunk batches.
        for chunk in written.chunks(scan) {
            let addrs: Vec<BlockAddr> = chunk.iter().map(|(a, _)| *a).collect();
            let results = log.read_many(&addrs).unwrap();
            prop_assert_eq!(results.len(), chunk.len());
            for ((_, data), got) in chunk.iter().zip(&results) {
                prop_assert_eq!(got, data);
            }
        }
        // One dead server: scatter failures fall back to locate +
        // reconstruction, still byte-exact, still in order.
        mem.set_down(ServerId::new(dead % servers), true);
        for chunk in written.chunks(scan) {
            let addrs: Vec<BlockAddr> = chunk.iter().map(|(a, _)| *a).collect();
            let results = log.read_many(&addrs).unwrap();
            for ((_, data), got) in chunk.iter().zip(&results) {
                prop_assert_eq!(got, data);
            }
        }
    }
}

/// Gate for the head-of-line test: `Store` RPCs stall until released,
/// everything else passes straight through.
struct GatedState {
    gate: Mutex<Option<Vec<mpsc::Sender<()>>>>,
}

struct GatedTransport {
    inner: Arc<MemTransport>,
    state: Arc<GatedState>,
}

struct GatedConn {
    inner: Box<dyn Connection>,
    mem: Arc<MemTransport>,
    client: ClientId,
    state: Arc<GatedState>,
}

impl Connection for GatedConn {
    fn call(&mut self, request: &Request) -> Result<swarm_net::Response> {
        self.inner.call(request)
    }

    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        let gated = matches!(prepared.request(), Request::Store { .. });
        if gated {
            let mut gate = self.state.gate.lock();
            if let Some(waiters) = gate.as_mut() {
                let server = self.inner.server();
                let mem = self.mem.clone();
                let client = self.client;
                let request = prepared.request().clone();
                let (tx, rx) = mpsc::channel();
                waiters.push(tx);
                return PendingCall::deferred(move || {
                    rx.recv()
                        .map_err(|_| SwarmError::ServerUnavailable(server))?;
                    mem.connect(server, client)
                        .and_then(|mut c| c.call(&request))
                });
            }
        }
        let result = self.inner.call(prepared.request());
        PendingCall::ready(result)
    }

    fn pipeline_width(&self) -> usize {
        64
    }

    fn server(&self) -> ServerId {
        self.inner.server()
    }
}

impl Transport for GatedTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        Ok(Box::new(GatedConn {
            inner: self.inner.connect(server, client)?,
            mem: self.inner.clone(),
            client,
            state: self.state.clone(),
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

/// The YCSB-B regression pin (DESIGN.md §16): with a full window of store
/// RPCs stalled in flight, reads of durable data must still complete —
/// the read path may not queue behind the write window. If reads shared
/// the writers' in-order pipeline, this test would deadlock (the gate
/// only opens after the reads finish).
#[test]
fn reads_complete_while_store_window_is_stalled() {
    let servers = 3u32;
    let mem = cluster(servers);
    let state = Arc::new(GatedState {
        gate: Mutex::new(None),
    });
    let transport = Arc::new(GatedTransport {
        inner: mem.clone(),
        state: state.clone(),
    });
    let log = Log::create(transport, read_config(servers, 8, 8)).unwrap();

    // Phase 1: gate open — make some data durable.
    let mut written = Vec::new();
    for i in 0..6u8 {
        let payload = vec![i; 900];
        written.push((log.append_block(SVC, b"", &payload).unwrap(), payload));
    }
    log.flush().unwrap();

    // Phase 2: close the gate and queue a window of stores behind it.
    *state.gate.lock() = Some(Vec::new());
    for i in 0..6u8 {
        log.append_block(SVC, b"", &vec![0x40 + i; 1600]).unwrap();
    }
    // Sealed fragments are now stalled inside the writers' windows. Give
    // the writer threads a moment to start them.
    for _ in 0..200 {
        if state.gate.lock().as_ref().is_some_and(|w| !w.is_empty()) {
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    assert!(
        state.gate.lock().as_ref().is_some_and(|w| !w.is_empty()),
        "no store reached the gate"
    );

    // The reads must complete while the stores are still stalled. (The
    // sealed-fragment cache is disabled, so these cross the wire.)
    for (addr, data) in &written {
        assert_eq!(&log.read(*addr).unwrap(), data);
    }
    let scan: Vec<BlockAddr> = written.iter().map(|(a, _)| *a).collect();
    for (got, (_, data)) in log.read_many(&scan).unwrap().iter().zip(&written) {
        assert_eq!(got, data);
    }

    // Release the gate; the stalled stores land and flush completes.
    let waiters = state.gate.lock().take().expect("gate installed");
    for tx in waiters {
        let _ = tx.send(());
    }
    // Any store that arrives at the gate from here on passes through.
    log.flush().unwrap();
}
