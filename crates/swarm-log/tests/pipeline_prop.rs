//! Property tests for the windowed, pipelined write path (DESIGN.md §15):
//! random window sizes, genuinely out-of-order acks (each store completes
//! on its own thread after a random delay, like responses on a mux
//! channel), and injected per-server store failures must preserve the
//! flush contract — `flush` returns `Ok` ⇔ every sealed fragment is
//! durable — and byte-exact readback, including reconstruction with any
//! single server dead.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Duration;

use parking_lot::Mutex;
use proptest::prelude::*;
use swarm_log::{Log, LogConfig};
use swarm_net::{Connection, MemTransport, PendingCall, PreparedRequest, Request, Transport};
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, Result, ServerId, ServiceId, SwarmError};

const SVC: ServiceId = ServiceId::new(1);

fn cluster(n: u32) -> Arc<MemTransport> {
    let transport = Arc::new(MemTransport::new());
    for i in 0..n {
        let srv = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        transport.register(ServerId::new(i), srv);
    }
    transport
}

/// Shared schedule for the decorated transport: per-server transient
/// failure budgets and the ack delay sequence.
struct ChaosState {
    /// Stores left to fail per server. Transient: the writer's retry path
    /// issues plain calls that bypass injection, so a failed store heals
    /// on retry.
    fail_budget: Mutex<HashMap<ServerId, usize>>,
    /// Ack delays in microseconds, consumed round-robin.
    delays: Vec<u64>,
    next_delay: AtomicUsize,
}

/// Wraps `MemTransport` with a pipelining `start_prepared`: every store
/// is dispatched on a detached thread and completes after a drawn delay,
/// so acks land out of order exactly as they do on a multiplexed socket.
struct ReorderTransport {
    inner: Arc<MemTransport>,
    state: Arc<ChaosState>,
}

struct ReorderConn {
    inner: Box<dyn Connection>,
    mem: Arc<MemTransport>,
    client: ClientId,
    state: Arc<ChaosState>,
}

impl Connection for ReorderConn {
    fn call(&mut self, request: &Request) -> Result<swarm_net::Response> {
        self.inner.call(request)
    }

    fn start_prepared(&mut self, prepared: &PreparedRequest) -> PendingCall {
        let server = self.inner.server();
        let fail = {
            let mut budget = self.state.fail_budget.lock();
            match budget.get_mut(&server) {
                Some(n) if *n > 0 => {
                    *n -= 1;
                    true
                }
                _ => false,
            }
        };
        let idx = self.state.next_delay.fetch_add(1, Ordering::Relaxed);
        let delay = self.state.delays[idx % self.state.delays.len()];
        let mem = self.mem.clone();
        let client = self.client;
        let request = prepared.request().clone();
        let (tx, rx) = mpsc::channel();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(delay));
            let result = if fail {
                Err(SwarmError::ServerUnavailable(server))
            } else {
                mem.connect(server, client)
                    .and_then(|mut c| c.call(&request))
            };
            let _ = tx.send(result);
        });
        PendingCall::deferred(move || {
            rx.recv()
                .unwrap_or(Err(SwarmError::ServerUnavailable(server)))
        })
    }

    fn pipeline_width(&self) -> usize {
        64
    }

    fn server(&self) -> ServerId {
        self.inner.server()
    }
}

impl Transport for ReorderTransport {
    fn connect(&self, server: ServerId, client: ClientId) -> Result<Box<dyn Connection>> {
        Ok(Box::new(ReorderConn {
            inner: self.inner.connect(server, client)?,
            mem: self.inner.clone(),
            client,
            state: self.state.clone(),
        }))
    }

    fn servers(&self) -> Vec<ServerId> {
        self.inner.servers()
    }
}

fn pipelined_config(servers: u32, window: usize, depth: usize) -> LogConfig {
    LogConfig::new(ClientId::new(1), (0..servers).map(ServerId::new).collect())
        .unwrap()
        .fragment_size(2048)
        .cache_fragments(0) // force reads through the servers
        .write_window(window)
        .queue_depth(depth)
        .store_retries(4)
        .retry_backoff(Duration::from_millis(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Pipelined writes under reordered acks and transient per-server
    /// store failures: every flush succeeds (retries absorb the injected
    /// failures), and every block reads back byte-exact — even through
    /// reconstruction with a random server dead.
    #[test]
    fn prop_pipelined_stores_flush_clean_and_read_back(
        window in 1usize..10,
        depth in 1usize..4,
        servers in 2u32..5,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..900), 4..28),
        delays in proptest::collection::vec(0u64..2_500, 16..17),
        failures in proptest::collection::vec(0usize..3, 4..5),
        flush_every in 3usize..8,
        dead in 0u32..5,
    ) {
        let mem = cluster(servers);
        let state = Arc::new(ChaosState {
            fail_budget: Mutex::new(
                (0..servers)
                    .map(|i| (ServerId::new(i), failures[i as usize % failures.len()]))
                    .collect(),
            ),
            delays,
            next_delay: AtomicUsize::new(0),
        });
        let transport = Arc::new(ReorderTransport { inner: mem.clone(), state });
        let log = Log::create(transport, pipelined_config(servers, window, depth)).unwrap();
        let mut written = Vec::new();
        for (i, p) in payloads.iter().enumerate() {
            written.push((log.append_block(SVC, b"", p).unwrap(), p.clone()));
            if i % flush_every == flush_every - 1 {
                // Injected failures are transient, so the contract demands
                // a clean flush: the writer retried until durable.
                log.flush().unwrap();
            }
        }
        log.flush().unwrap();
        // Flush Ok promises every member durable: readback must survive
        // any single server dying, via parity reconstruction.
        mem.set_down(ServerId::new(dead % servers), true);
        for (addr, data) in &written {
            prop_assert_eq!(&log.read(*addr).unwrap(), data);
        }
    }

    /// The failure half of the contract: while a server is down, flushes
    /// keep failing (the sealed fragments are re-queued, never silently
    /// dropped); once it heals, one flush lands everything, after which
    /// readback survives any single server dying.
    #[test]
    fn prop_flush_fails_honestly_then_heals(
        window in 1usize..10,
        payloads in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 1..600), 6..20),
        delays in proptest::collection::vec(0u64..1_500, 8..9),
        down in 0u32..3,
    ) {
        let servers = 3u32;
        let down = ServerId::new(down % servers);
        let mem = cluster(servers);
        let state = Arc::new(ChaosState {
            fail_budget: Mutex::new(HashMap::new()),
            delays,
            next_delay: AtomicUsize::new(0),
        });
        let transport = Arc::new(ReorderTransport { inner: mem.clone(), state });
        let log = Log::create(transport, pipelined_config(servers, window, 2)).unwrap();
        mem.set_down(down, true);
        let mut written = Vec::new();
        for p in &payloads {
            written.push((log.append_block(SVC, b"", p).unwrap(), p.clone()));
        }
        // Enough data is in flight that some fragment is homed on the
        // down server (every flushed stripe touches all three members):
        // the flush must refuse to report it durable.
        log.flush().unwrap_err();
        mem.set_down(down, false);
        // One flush heals: flush_all loops re-queueing failed fragments
        // until everything (including parity) is on its server.
        log.flush().unwrap();
        for kill in 0..servers {
            mem.set_down(ServerId::new(kill), true);
            for (addr, data) in &written {
                prop_assert_eq!(&log.read(*addr).unwrap(), data);
            }
            mem.set_down(ServerId::new(kill), false);
        }
    }
}
