//! A tour of Sting, the Swarm-backed local file system (§3.1 of the
//! paper): directories, files, rename, hard links, crash recovery.
//!
//! Run with: `cargo run --example sting_tour`

use std::sync::Arc;

use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_log::{recover, Log};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(3)?;
    let log = Arc::new(Log::create(cluster.transport(), cluster.log_config(1)?)?);
    let fs = StingFs::format(log, StingConfig::default())?;

    // Build a little project tree.
    fs.mkdir("/src")?;
    fs.mkdir("/docs")?;
    fs.write_file("/src/main.rs", 0, b"fn main() { println!(\"swarm\"); }\n")?;
    fs.write_file("/docs/README.md", 0, b"# My project\n")?;
    fs.link("/docs/README.md", "/README.md")?;
    fs.rename("/src/main.rs", "/src/app.rs")?;

    println!("tree after setup:");
    print_tree(&fs, "/", 1)?;

    // Big file spanning many blocks and fragments.
    let big: Vec<u8> = (0..200_000u32).map(|i| (i % 251) as u8).collect();
    fs.write_file("/data.bin", 0, &big)?;
    let st = fs.stat("/data.bin")?;
    println!(
        "\n/data.bin: {} bytes in {} blocks (4 KB each)",
        st.size, st.blocks
    );

    // Crash without unmounting — but after a checkpoint + some extra ops.
    fs.checkpoint()?;
    fs.write_file("/after-ckpt.txt", 0, b"this survives via record replay")?;
    fs.unlink("/README.md")?;
    fs.flush()?;
    let service_id = fs.service();
    drop(fs); // crash!

    // Recover on a fresh "boot".
    let (log, replay) = recover(cluster.transport(), cluster.log_config(1)?, &[service_id])?;
    let fs = StingFs::bare(Arc::new(log), StingConfig::default());
    let mut svc = StingService::new(fs.clone());
    {
        use swarm_services::Service;
        if let Some(ckpt) = replay.checkpoint_data(service_id) {
            svc.restore_checkpoint(ckpt)?;
        }
        for entry in replay.records_for(service_id) {
            svc.replay(entry)?;
        }
    }
    println!("\nrecovered after crash:");
    print_tree(&fs, "/", 1)?;
    assert_eq!(
        fs.read_to_end("/after-ckpt.txt")?,
        b"this survives via record replay"
    );
    assert!(!fs.exists("/README.md"), "unlink replayed");
    assert_eq!(fs.read_to_end("/data.bin")?, big, "big file intact");
    println!("\nall post-checkpoint operations replayed correctly");
    Ok(())
}

fn print_tree(fs: &StingFs, path: &str, depth: usize) -> Result<(), Box<dyn std::error::Error>> {
    for entry in fs.readdir(path)? {
        let full = if path == "/" {
            format!("/{}", entry.name)
        } else {
            format!("{path}/{}", entry.name)
        };
        let st = fs.stat(&full)?;
        println!(
            "{:indent$}{}{} ({} bytes, nlink {})",
            "",
            entry.name,
            if entry.is_dir { "/" } else { "" },
            st.size,
            st.nlink,
            indent = depth * 2
        );
        if entry.is_dir {
            print_tree(fs, &full, depth + 1)?;
        }
    }
    Ok(())
}
