//! Parallel ingest over real TCP: the paper's scalability story on your
//! machine.
//!
//! Starts 8 storage servers as real TCP endpoints on localhost, then runs
//! 4 client threads, each writing its own striped log concurrently —
//! clients never coordinate (§2's design goal). Prints aggregate
//! throughput and the per-server fragment balance that rotated parity
//! produces.
//!
//! Run with: `cargo run --release --example parallel_ingest`

use std::sync::Arc;
use std::time::Instant;

use swarm_log::{Log, LogConfig};
use swarm_net::tcp::{TcpServer, TcpTransport};
use swarm_server::{MemStore, StorageServer};
use swarm_types::{ClientId, ServerId, ServiceId};

const SERVERS: u32 = 8;
const CLIENTS: u32 = 4;
const BLOCKS_PER_CLIENT: u32 = 2_000;
const BLOCK_SIZE: usize = 4096;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Real TCP storage servers --------------------------------------
    let mut tcp_servers = Vec::new();
    let mut handlers = Vec::new();
    let transport = Arc::new(TcpTransport::new());
    for i in 0..SERVERS {
        let handler = StorageServer::new(ServerId::new(i), MemStore::new()).into_shared();
        let server = TcpServer::spawn(ServerId::new(i), "127.0.0.1:0", handler.clone())?;
        transport.add_server(ServerId::new(i), server.addr());
        println!("server {i} listening on {}", server.addr());
        tcp_servers.push(server);
        handlers.push(handler);
    }

    // --- Independent clients -------------------------------------------
    let start = Instant::now();
    let mut threads = Vec::new();
    for c in 0..CLIENTS {
        let transport = transport.clone();
        threads.push(std::thread::spawn(
            move || -> Result<u64, swarm_types::SwarmError> {
                let config = LogConfig::new(
                    ClientId::new(c + 1),
                    (0..SERVERS).map(ServerId::new).collect(),
                )?;
                let log = Log::create(transport, config)?;
                let svc = ServiceId::new(1);
                let block = vec![c as u8; BLOCK_SIZE];
                for i in 0..BLOCKS_PER_CLIENT {
                    log.append_block(svc, &i.to_le_bytes(), &block)?;
                }
                log.flush()?;
                Ok(BLOCKS_PER_CLIENT as u64 * BLOCK_SIZE as u64)
            },
        ));
    }
    let mut useful_bytes = 0u64;
    for t in threads {
        useful_bytes += t.join().expect("client thread")?;
    }
    let elapsed = start.elapsed();

    // --- Report ---------------------------------------------------------
    let raw_bytes: u64 = handlers.iter().map(|h| h.store().byte_count()).sum();
    println!("\n{CLIENTS} clients × {BLOCKS_PER_CLIENT} × {BLOCK_SIZE} B blocks over real TCP:");
    println!(
        "  useful: {:.1} MB in {:.2?}  →  {:.1} MB/s aggregate",
        useful_bytes as f64 / 1e6,
        elapsed,
        useful_bytes as f64 / 1e6 / elapsed.as_secs_f64()
    );
    println!(
        "  raw (with parity + metadata): {:.1} MB  →  overhead {:.0}%",
        raw_bytes as f64 / 1e6,
        (raw_bytes as f64 / useful_bytes as f64 - 1.0) * 100.0
    );
    println!("\nper-server balance (rotated parity spreads load):");
    for (i, h) in handlers.iter().enumerate() {
        let s = h.stats();
        println!(
            "  server {i}: {:>4} fragments  {:>8.2} MB",
            s.fragments,
            s.bytes as f64 / 1e6
        );
    }
    for mut s in tcp_servers {
        s.shutdown();
    }
    Ok(())
}

// Bring FragmentStore trait methods (byte_count) into scope.
use swarm_server::FragmentStore as _;
