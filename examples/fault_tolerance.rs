//! Fault tolerance walkthrough: parity reconstruction, recovery with a
//! dead server, and cleaning — the full lifecycle of §2.3.3 and §2.1.4.
//!
//! Run with: `cargo run --example fault_tolerance`

use std::sync::Arc;

use parking_lot::Mutex;
use sting::{StingConfig, StingFs, StingService};
use swarm::local::LocalCluster;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log};
use swarm_services::{Service, ServiceStack};
use swarm_types::ServiceId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(5)?;
    let sting_svc = ServiceId::new(2);
    let config = StingConfig::default();

    // --- Populate a file system ----------------------------------------
    let log = Arc::new(Log::create(cluster.transport(), cluster.log_config(1)?)?);
    let fs = StingFs::format(log.clone(), config.clone())?;
    for i in 0..40 {
        fs.write_file(&format!("/archive/file{i}"), 0, &vec![i as u8; 16_000])
            .or_else(|_| {
                fs.mkdir("/archive")?;
                fs.write_file(&format!("/archive/file{i}"), 0, &vec![i as u8; 16_000])
            })?;
    }
    fs.unmount()?;
    println!("wrote 40 files (640 KB) across 5 servers");

    // --- Tolerate each single-server failure ---------------------------
    for down in 0..5u32 {
        cluster.set_down(down, true);
        let sample = fs.read_to_end("/archive/file7")?;
        assert_eq!(sample, vec![7u8; 16_000]);
        cluster.set_down(down, false);
    }
    println!("killed each of the 5 servers in turn: every read succeeded via XOR reconstruction");

    // --- Recover the whole FS while a server is dead -------------------
    drop(fs);
    drop(log);
    cluster.set_down(3, true);
    let (log, replay) = recover(cluster.transport(), cluster.log_config(1)?, &[sting_svc])?;
    let log = Arc::new(log);
    let fs = StingFs::bare(log.clone(), config.clone());
    let mut adapter = StingService::new(fs.clone());
    if let Some(ckpt) = replay.checkpoint_data(sting_svc) {
        adapter.restore_checkpoint(ckpt)?;
    }
    for e in replay.records_for(sting_svc) {
        adapter.replay(e)?;
    }
    for i in 0..40 {
        assert_eq!(
            fs.read_to_end(&format!("/archive/file{i}"))?,
            vec![i as u8; 16_000]
        );
    }
    println!("client crash + server 3 dead: full recovery, all 40 files verified");
    cluster.set_down(3, false);

    // --- Churn, then clean ----------------------------------------------
    for i in 0..40 {
        if i % 2 == 0 {
            fs.unlink(&format!("/archive/file{i}"))?;
        } else {
            fs.truncate(&format!("/archive/file{i}"), 0)?;
            fs.write_file(&format!("/archive/file{i}"), 0, &vec![0xee; 8_000])?;
        }
    }
    fs.unmount()?;
    let before: u64 = (0..5).map(|i| cluster.server_stats(i).bytes).sum();

    let mut stack = ServiceStack::new();
    let svc: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(StingService::new(fs.clone())));
    stack.register(svc)?;
    let cleaner = Cleaner::new(log, Arc::new(stack), CleanPolicy::CostBenefit);
    let stats = cleaner.clean_pass(100)?;
    let after: u64 = (0..5).map(|i| cluster.server_stats(i).bytes).sum();
    println!(
        "cleaner: {} stripes reclaimed, {} live blocks moved, {:.0} KB → {:.0} KB on servers",
        stats.stripes_cleaned,
        stats.blocks_moved,
        before as f64 / 1e3,
        after as f64 / 1e3
    );

    // Everything still reads correctly after cleaning.
    for i in (1..40).step_by(2) {
        assert_eq!(
            fs.read_to_end(&format!("/archive/file{i}"))?,
            vec![0xee; 8_000]
        );
    }
    println!("all surviving files verified after cleaning");
    Ok(())
}
