//! Quickstart: a Swarm cluster in one process.
//!
//! Spins up four storage servers, writes a striped log with parity, kills
//! a server to show client-side reconstruction, then crashes the client
//! and recovers its state via checkpoint + rollforward.
//!
//! Run with: `cargo run --example quickstart`

use swarm::local::LocalCluster;
use swarm_log::recover;
use swarm_types::ServiceId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let svc = ServiceId::new(1);
    let cluster = LocalCluster::new(4)?;
    println!(
        "cluster: {} storage servers, stripe width 4 (3 data + 1 parity)",
        cluster.len()
    );

    // --- Write a striped log ------------------------------------------
    let log = cluster.create_log(1)?;
    let mut addrs = Vec::new();
    for i in 0..256u32 {
        let block = vec![i as u8; 4096];
        addrs.push(log.append_block(svc, &i.to_le_bytes(), &block)?);
    }
    log.checkpoint(svc, b"application state v1")?;
    println!("wrote 1 MiB of blocks + a checkpoint; log flushed to the servers");
    for i in 0..4 {
        let s = cluster.server_stats(i);
        println!(
            "  server {i}: {} fragments, {} KiB",
            s.fragments,
            s.bytes / 1024
        );
    }

    // --- Survive a server failure -------------------------------------
    cluster.set_down(2, true);
    println!("\nserver 2 is DOWN — reading everything back anyway:");
    for (i, addr) in addrs.iter().enumerate() {
        let data = log.read(*addr)?;
        assert_eq!(data, vec![i as u8; 4096]);
    }
    println!("  all 256 blocks reconstructed from parity, transparently");
    cluster.set_down(2, false);

    // --- Survive a client crash ---------------------------------------
    log.append_record(svc, 7, b"work after the checkpoint")?;
    log.flush()?;
    drop(log); // the client "crashes"

    let (recovered, replay) = recover(cluster.transport(), cluster.log_config(1)?, &[svc])?;
    println!("\nclient recovered:");
    println!(
        "  checkpoint payload: {:?}",
        String::from_utf8_lossy(replay.checkpoint_data(svc).unwrap())
    );
    for entry in replay.records_for(svc) {
        if let swarm_log::Entry::Record { kind, data, .. } = &entry.entry {
            println!(
                "  replayed record kind={kind}: {:?}",
                String::from_utf8_lossy(data)
            );
        }
    }
    // And the recovered log continues where the old one stopped.
    let addr = recovered.append_block(svc, b"", b"life goes on")?;
    recovered.flush()?;
    assert_eq!(recovered.read(addr)?, b"life goes on");
    println!(
        "  new appends continue at fragment seq {}",
        recovered.next_seq()
    );
    Ok(())
}
