//! A tour of the service stack (§2.2): "applications pick and choose the
//! exact services needed". One shared log hosts atomic recovery units, an
//! overwritable logical disk with a compression+encryption+checksum
//! transform stack, cooperative caching between two clients, and a
//! background cleaner — then everything recovers from a crash together.
//!
//! Run with: `cargo run --example services_tour`

use std::sync::Arc;

use parking_lot::Mutex;
use swarm::local::LocalCluster;
use swarm_cleaner::{CleanPolicy, Cleaner};
use swarm_log::{recover, Log};
use swarm_services::{
    AruService, AruServiceAdapter, ChecksumTransform, CompressTransform, CoopCache, CoopCacheGroup,
    EncryptTransform, LogicalDisk, LogicalDiskService, Service, ServiceStack, TransformStack,
};
use swarm_types::{ClientId, ServiceId};

const DISK_SVC: ServiceId = ServiceId::new(3);
const ARU_SVC: ServiceId = ServiceId::new(5);

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = LocalCluster::new(3)?;

    // ------------------------------------------------------------------
    // Logical disk + transform stack
    // ------------------------------------------------------------------
    // Small fragments so the churn below spans many stripes (visible cleaning).
    let config = cluster.log_config(1)?.fragment_size(8 * 1024);
    let log = Arc::new(Log::create(cluster.transport(), config.clone())?);
    let disk = Arc::new(LogicalDisk::new(DISK_SVC, log.clone()));
    let transforms = TransformStack::new()
        .push(CompressTransform)
        .push(EncryptTransform::new(b"tour secret"))
        .push(ChecksumTransform);

    let plaintext = b"block 7: redundant redundant redundant redundant data".to_vec();
    disk.write(7, &transforms.encode(plaintext.clone(), 7))?;
    disk.flush()?;
    let stored = disk.read(7)?.expect("written");
    println!(
        "logical disk block 7: {} plaintext bytes stored as {} transformed bytes (compressed+encrypted+checksummed)",
        plaintext.len(),
        stored.len()
    );
    assert_eq!(transforms.decode(stored.to_vec(), 7)?, plaintext);

    // ------------------------------------------------------------------
    // Atomic recovery units
    // ------------------------------------------------------------------
    let aru = AruService::new(ARU_SVC, log.clone());
    let committed = aru.begin()?;
    aru.append(committed, b"debit alice 100")?;
    aru.append(committed, b"credit bob 100")?;
    aru.commit(committed)?;
    let doomed = aru.begin()?;
    aru.append(doomed, b"debit carol 999")?; // never commits
    log.flush()?;
    println!("ARU: committed one transfer, left one half-done (it must vanish at recovery)");

    // ------------------------------------------------------------------
    // Crash! Recover both services through one stack.
    // ------------------------------------------------------------------
    drop((aru, disk, log));
    let (log, replay) = recover(cluster.transport(), config, &[DISK_SVC, ARU_SVC])?;
    let log = Arc::new(log);
    let disk = Arc::new(LogicalDisk::new(DISK_SVC, log.clone()));
    let aru = AruService::new(ARU_SVC, log.clone());
    let mut stack = ServiceStack::new();
    let s1: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(LogicalDiskService::new(disk.clone())));
    let s2: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(AruServiceAdapter::new(aru.clone())));
    stack.register(s1)?;
    stack.register(s2)?;
    stack.recover(&replay)?;

    let recovered = disk.read(7)?.expect("block survived");
    assert_eq!(transforms.decode(recovered.to_vec(), 7)?, plaintext);
    let units = aru.committed_units();
    assert_eq!(units.len(), 1, "only the committed unit survives");
    println!(
        "recovered: logical block intact; {} ARU unit(s) committed — payloads: {:?}",
        units.len(),
        units[0]
            .1
            .iter()
            .map(|p| String::from_utf8_lossy(p).into_owned())
            .collect::<Vec<_>>()
    );

    // ------------------------------------------------------------------
    // Cooperative caching between two clients
    // ------------------------------------------------------------------
    let log2 = Arc::new(Log::create(cluster.transport(), cluster.log_config(2)?)?);
    let addr = log2.append_block(ServiceId::new(9), b"", b"hot shared block")?;
    log2.flush()?;
    let group = CoopCacheGroup::new();
    let c1 = CoopCache::join(
        group.clone(),
        ClientId::new(1),
        log.clone(),
        64,
        cluster.transport(),
    )?;
    let c2 = CoopCache::join(
        group.clone(),
        ClientId::new(2),
        log2,
        64,
        cluster.transport(),
    )?;
    c2.read(addr)?; // fetches from the servers, announces a hint
    c1.read(addr)?; // served from client 2's memory
    println!(
        "cooperative cache: client 1 stats {:?} (peer_hits=1 means client 2's memory served it)",
        c1.stats()
    );

    // ------------------------------------------------------------------
    // Background cleaner over the whole stack
    // ------------------------------------------------------------------
    for lba in 0..20 {
        disk.write(lba, &vec![lba as u8; 3000])?;
        disk.write(lba, &vec![lba as u8; 3000])?; // churn: each block twice
    }
    disk.checkpoint()?;
    let mut stack2 = ServiceStack::new();
    let s: Arc<Mutex<dyn Service>> = Arc::new(Mutex::new(LogicalDiskService::new(disk.clone())));
    stack2.register(s)?;
    let cleaner = Arc::new(Cleaner::new(
        log,
        Arc::new(stack2),
        CleanPolicy::CostBenefit,
    ));
    let mut handle = cleaner.spawn_periodic(std::time::Duration::from_millis(10), 16);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
    while handle.totals().stripes_cleaned == 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    handle.stop();
    println!("background cleaner totals: {:?}", handle.totals());
    for lba in 0..20 {
        assert_eq!(disk.read(lba)?.unwrap(), vec![lba as u8; 3000]);
    }
    println!("all logical blocks verified after background cleaning");
    Ok(())
}
